"""Closed-loop adaptive defense (accounting → detection → containment,
but *online*).

The static policies in :mod:`repro.policy` are tuned up front: fixed SYN
caps, fixed runtime limits, fixed quotas.  This package closes the loop —
an :class:`~repro.defense.signals.AccountingMonitor` samples the counters
the accounting mechanism already maintains into EWMA baselines, and a
:class:`~repro.defense.controller.DefenseController` maps the anomaly
scores through an escalating mitigation ladder with hysteresis and
cooldowns:

1. adaptive per-source token-bucket rate limiting at demux time;
2. SYN-cookie stateless fallback once the half-open table passes a
   watermark;
3. dynamic quota tightening (non-lethal throttle before kill) via the
   :class:`~repro.kernel.quota.QuotaEnforcer`;
4. webserver graceful degradation (shed CGI first, then shrink static
   responses).

Everything is engine-tick-driven and seeded, so recorded runs replay
bit-for-bit.
"""

from repro.defense.controller import DefenseAction, DefenseController
from repro.defense.ratelimit import TokenBucket
from repro.defense.run import DefenseRun, DefenseRunResult
from repro.defense.signals import (
    AccountingMonitor,
    DefenseSignals,
    EwmaBaseline,
)

__all__ = ["AccountingMonitor", "DefenseAction", "DefenseController",
           "DefenseRun", "DefenseRunResult", "DefenseSignals",
           "EwmaBaseline", "TokenBucket"]
