"""The defense experiment as a replayable spec.

One :class:`DefenseRun` is one cell of the static-vs-adaptive comparison:
a seeded client population plus one attack profile, measured with or
without the closed-loop controller.  The attack profiles are chosen to be
exactly the loads a *static* configuration cannot be pre-tuned for:

* ``synflood`` — a ramping SYN flood spoofing addresses **inside the
  trusted subnet**, where the static policy applies no cap (capping the
  trusted subnet would throttle the real clients too);
* ``runaway-cgi`` — runaway CGI requests burning CPU until killed;
* ``mixed`` — both at once.

Everything derives from the spec and the seed: client RNGs are reseeded
per ``(ip, seed)``, the flood ramp is tick-driven, and the controller
scans on the simulated clock — so a recorded run replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import seconds_to_ticks
from repro.snapshot.runs import SETTLE_S, ReplayableRun

ATTACKS = ("none", "synflood", "runaway-cgi", "mixed")

#: The trusted-subnet corner the flood spoofs from: inside 10.1.0.0/16
#: (so the static trusted path accepts it) but disjoint from the real
#: client addresses (10.1.0.x / 10.1.1.x) and CGI attackers (10.1.2.x).
SPOOF_SUBNET_CIDR = "10.1.64.0/18"


@dataclass
class DefenseRunResult:
    """What one defense cell measured."""

    attack: str
    adaptive: bool
    seed: int
    window_start: int
    window_end: int
    goodput_cps: float
    completions: int
    aborted: int
    refused: int
    degraded: int
    syn_sent: int
    demux_drops: Dict[str, int]
    syncookies_sent: int
    syncookies_accepted: int
    half_open_end: int
    runaway_traps: int
    throttled: int
    escalations: int
    deescalations: int
    absorbed: int
    degrade_level_end: int
    ladder: List[str] = field(default_factory=list)


class DefenseRun(ReplayableRun):
    """One static-vs-adaptive defense cell as fixed-tick milestones."""

    KIND = "defense"

    def __init__(self, attack: str = "synflood", *,
                 adaptive: bool = True, seed: int = 1,
                 config: str = "accounting",
                 clients: int = 12, document: str = "/doc-1k",
                 syn_rate: int = 200, syn_ramp_to: int = 4000,
                 syn_ramp_s: float = 1.5, spoof_hosts: int = 500,
                 cgi_attackers: int = 8,
                 untrusted_cap: int = 16,
                 warmup_s: float = 0.5, measure_s: float = 2.0):
        if attack not in ATTACKS:
            raise ValueError(f"unknown attack {attack!r} "
                             f"(known: {', '.join(ATTACKS)})")
        self.attack = attack
        self.adaptive = adaptive
        self.seed = seed
        self.config = config
        self.clients = clients
        self.document = document
        self.syn_rate = syn_rate
        self.syn_ramp_to = syn_ramp_to
        self.syn_ramp_s = syn_ramp_s
        self.spoof_hosts = spoof_hosts
        self.cgi_attackers = cgi_attackers
        self.untrusted_cap = untrusted_cap
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.run_result: Optional[DefenseRunResult] = None
        self._window_start = None
        self._outcomes_at_start = (0, 0, 0)

    # ------------------------------------------------------------------
    def spec(self) -> Dict:
        return {
            "run": self.KIND,
            "attack": self.attack,
            "adaptive": self.adaptive,
            "seed": self.seed,
            "config": self.config,
            "clients": self.clients,
            "document": self.document,
            "syn_rate": self.syn_rate,
            "syn_ramp_to": self.syn_ramp_to,
            "syn_ramp_s": self.syn_ramp_s,
            "spoof_hosts": self.spoof_hosts,
            "cgi_attackers": self.cgi_attackers,
            "untrusted_cap": self.untrusted_cap,
            "warmup_s": self.warmup_s,
            "measure_s": self.measure_s,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "DefenseRun":
        fields_ = {k: v for k, v in spec.items() if k != "run"}
        return cls(fields_.pop("attack"), **fields_)

    # ------------------------------------------------------------------
    def build(self) -> None:
        from repro.experiments.harness import TRUSTED_SUBNET, Testbed
        from repro.net.addressing import Subnet
        from repro.policy import AdaptivePolicy, RunawayPolicy, SynFloodPolicy

        static = [
            SynFloodPolicy(TRUSTED_SUBNET, untrusted_cap=self.untrusted_cap),
            RunawayPolicy(2.0),
        ]
        if self.adaptive:
            policies = [AdaptivePolicy(*static)]
        else:
            policies = static
        self.bed = Testbed.by_name(self.config, policies=policies)
        self.bed.add_clients(self.clients, document=self.document)
        # Per-seed determinism: the client RNGs (request jitter) are the
        # only stochastic element, reseeded from (ip, seed).
        for client in self.bed.clients:
            client.rng.seed(f"{client.ip}/{self.seed}")
        if self.attack in ("synflood", "mixed"):
            self.bed.add_syn_attacker(
                self.syn_rate,
                spoof_subnet=Subnet(SPOOF_SUBNET_CIDR),
                ramp_to=self.syn_ramp_to,
                ramp_seconds=self.syn_ramp_s,
                spoof_hosts=self.spoof_hosts)
        if self.attack in ("runaway-cgi", "mixed"):
            self.bed.add_cgi_attackers(self.cgi_attackers)

    def milestones(self) -> List[Tuple[int, str]]:
        settle = seconds_to_ticks(SETTLE_S)
        warm_end = settle + seconds_to_ticks(self.warmup_s)
        measure_end = warm_end + seconds_to_ticks(self.measure_s)
        return [
            (0, "boot"),
            (settle, "start_load"),
            (warm_end, "begin_window"),
            (measure_end, "end_window"),
        ]

    def result(self) -> Optional[DefenseRunResult]:
        return self.run_result

    # -- timeline actions ----------------------------------------------
    def ms_boot(self) -> None:
        self.bed.server.boot()

    def ms_start_load(self) -> None:
        self.bed.start_load()

    def ms_begin_window(self) -> None:
        self._window_start = self.bed.begin_window()
        stats = self.bed.stats
        self._outcomes_at_start = tuple(
            stats.outcome_total("client", k)
            for k in ("aborted", "refused", "degraded"))

    def ms_end_window(self) -> None:
        bed = self.bed
        start = self._window_start
        end = bed.sim.now
        bed.end_window(start)
        server = bed.server
        stats = bed.stats
        controller = server.defense
        a0, r0, d0 = self._outcomes_at_start
        self.run_result = DefenseRunResult(
            attack=self.attack,
            adaptive=self.adaptive,
            seed=self.seed,
            window_start=start,
            window_end=end,
            goodput_cps=stats.rate_per_second("client", start, end),
            completions=stats.completions_in("client", start, end),
            aborted=stats.outcome_total("client", "aborted") - a0,
            refused=stats.outcome_total("client", "refused") - r0,
            degraded=stats.outcome_total("client", "degraded") - d0,
            syn_sent=(bed.syn_attacker.sent if bed.syn_attacker else 0),
            demux_drops=dict(sorted(server.tcp.demux_drops.items())),
            syncookies_sent=server.tcp.syncookies_sent,
            syncookies_accepted=server.tcp.syncookies_accepted,
            half_open_end=server.tcp.half_open(),
            runaway_traps=server.kernel.runaway_traps,
            throttled=len(server.kernel.quotas.throttles),
            escalations=(len(controller.escalations())
                         if controller else 0),
            deescalations=(len(controller.deescalations())
                           if controller else 0),
            absorbed=(controller.absorbed if controller else 0),
            degrade_level_end=server.http.degrade_level,
            ladder=(controller.ladder_trace() if controller else []),
        )

    def extra_summary(self) -> Dict:
        return {"window_start": self._window_start or 0,
                "seed": self.seed}
