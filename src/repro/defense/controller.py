"""The defense controller: an escalating, de-escalating mitigation ladder.

Each scan (engine-tick periodic, like the watchdog) the controller reads
one :class:`~repro.defense.signals.DefenseSignals` sample and drives four
rungs, each with its own trigger, hysteresis watermarks and release
cooldown:

1. **ratelimit** — per-source token buckets installed on suspect /24
   prefixes (anomaly score over its own baseline), enforced in TCP demux;
2. **syncookies** — stateless SYN handling past a half-open watermark;
3. **quota** — :class:`~repro.kernel.quota.QuotaEnforcer` flips to
   throttle-first mode and connection quotas/runtime limits tighten;
4. **degrade** — the webserver sheds CGI, then shrinks static responses.

Escalation is per-rung (a SYN flood never sheds CGI; a runaway CGI never
arms cookies) and every transition is logged as a :class:`DefenseAction`
so experiments can show the ladder climbing and climbing back down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.clock import seconds_to_ticks, ticks_to_seconds
from repro.sim.cpu import Interrupt
from repro.kernel.quota import ResourceQuota
from repro.defense.ratelimit import TokenBucket
from repro.defense.signals import AccountingMonitor, DefenseSignals

RUNGS = ("ratelimit", "syncookies", "quota", "degrade")


@dataclass
class DefenseAction:
    """One ladder transition (or absorb) in the controller's log."""

    at_s: float
    kind: str       # escalate | deescalate | absorb
    rung: str       # one of RUNGS, or "watchdog" for absorbs
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.at_s:.6f}s] {self.kind} {self.rung}: {self.detail}"


class DefenseController:
    """Closed-loop controller over one :class:`ScoutWebServer`."""

    def __init__(self, server,
                 monitor: Optional[AccountingMonitor] = None,
                 period_s: float = 0.05,
                 scan_cost_cycles: int = 1_500,
                 # rung 1: adaptive rate limiting
                 score_on: float = 4.0,
                 prefix_rate_floor: float = 300.0,
                 allow_rate_floor: int = 50,
                 limit_release_scans: int = 8,
                 # rung 2: SYN cookies
                 halfopen_on: int = 48,
                 halfopen_off: int = 8,
                 cookie_release_scans: int = 6,
                 # rung 3: quota tightening
                 quota_release_scans: int = 8,
                 tight_quota: Optional[ResourceQuota] = None,
                 # rung 4: graceful degradation
                 pages_on: int = 128,
                 pages_off: int = 512,
                 degrade_after_scans: int = 3,
                 degrade_release_scans: int = 8):
        self.server = server
        self.monitor = monitor or AccountingMonitor(server)
        self.period_s = period_s
        self.scan_cost_cycles = scan_cost_cycles

        self.score_on = score_on
        self.prefix_rate_floor = prefix_rate_floor
        self.allow_rate_floor = allow_rate_floor
        self.limit_release_scans = limit_release_scans
        self.halfopen_on = halfopen_on
        self.halfopen_off = halfopen_off
        self.cookie_release_scans = cookie_release_scans
        self.quota_release_scans = quota_release_scans
        self.tight_quota = tight_quota or ResourceQuota(
            max_pages=16, max_heap_bytes=16 * 1024, max_events=8)
        self.pages_on = pages_on
        self.pages_off = pages_off
        self.degrade_after_scans = degrade_after_scans
        self.degrade_release_scans = degrade_release_scans

        self.log: List[DefenseAction] = []
        self.scans = 0
        self.absorbed = 0
        self.rung_active: Dict[str, bool] = {r: False for r in RUNGS}
        self.last_signals: Optional[DefenseSignals] = None

        #: prefix -> TokenBucket currently limiting it.
        self.buckets: Dict[str, TokenBucket] = {}
        self._bucket_quiet: Dict[str, int] = {}
        self._cookie_quiet = 0
        self._quota_quiet = 0
        self._quota_pressure = 0
        self._degrade_pressure = 0
        self._degrade_quiet = 0
        self._saved_quota = None
        self._saved_runtime_limit = None
        self._running = False
        #: Attached :class:`~repro.obs.session.ObsSession`, if any.  The
        #: session is a pure observer: notified after each scan (with the
        #: signals sample already taken — never re-sampled, which would
        #: double-update the EWMA baselines) and after each transition.
        self.obs = None

        server.defense = self
        server.tcp.syn_gate = self._gate

    # ------------------------------------------------------------------
    # The demux gate (rung 1 enforcement point)
    # ------------------------------------------------------------------
    def _gate(self, prefix: str) -> bool:
        bucket = self.buckets.get(prefix)
        if bucket is None:
            return True
        return bucket.allow(self.server.kernel.sim.now)

    # ------------------------------------------------------------------
    # Scan loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.server.kernel.sim.schedule(
            seconds_to_ticks(self.period_s), self._scan)

    def stop(self) -> None:
        self._running = False

    def _scan(self) -> None:
        if not self._running:
            return
        self.scans += 1
        sig = self.monitor.sample()
        self.last_signals = sig

        self._drive_ratelimit(sig)
        self._drive_syncookies(sig)
        self._drive_quota(sig)
        self._drive_degrade(sig)

        if self.obs is not None:
            self.obs.on_defense_scan(self, sig)

        kernel = self.server.kernel
        kernel.cpu.post_interrupt(Interrupt(
            [(kernel.kernel_owner, self.scan_cost_cycles)],
            label="defense-scan"))
        kernel.sim.schedule(seconds_to_ticks(self.period_s), self._scan)

    # -- rung 1: adaptive per-source rate limiting ----------------------
    def _drive_ratelimit(self, sig: DefenseSignals) -> None:
        now = sig.at
        for prefix in sig.hot_prefixes(self.score_on,
                                       self.prefix_rate_floor):
            if prefix in self.buckets:
                continue
            # By the time a prefix scores hot its own EWMA baseline has
            # been dragged up by the anomaly, so the baseline cannot size
            # the limit — clamp a flagged source to the flat floor (a
            # legitimate steady source never gets flagged at all).
            allow = self.allow_rate_floor
            burst = max(8, allow // 4)
            self.buckets[prefix] = TokenBucket(allow, burst, now=now)
            self._bucket_quiet[prefix] = 0
            self._transition("escalate", "ratelimit",
                             f"{prefix}.0/24 limited to {allow}/s "
                             f"(offered {sig.syn_rates.get(prefix, 0):.0f}/s,"
                             f" score {sig.syn_scores.get(prefix, 0):.1f})")
        # Release buckets whose offered load has stayed under the limit.
        for prefix in sorted(self.buckets):
            bucket = self.buckets[prefix]
            offered = sig.syn_rates.get(prefix, 0.0)
            if offered <= bucket.rate:
                self._bucket_quiet[prefix] += 1
            else:
                self._bucket_quiet[prefix] = 0
            if self._bucket_quiet[prefix] >= self.limit_release_scans:
                del self.buckets[prefix]
                del self._bucket_quiet[prefix]
                self._transition("deescalate", "ratelimit",
                                 f"{prefix}.0/24 released "
                                 f"(offered {offered:.0f}/s)")
        self.rung_active["ratelimit"] = bool(self.buckets)

    # -- rung 2: SYN-cookie fallback ------------------------------------
    def _drive_syncookies(self, sig: DefenseSignals) -> None:
        tcp = self.server.tcp
        if not tcp.syncookies:
            if sig.half_open >= self.halfopen_on:
                tcp.set_syncookies(True)
                self._cookie_quiet = 0
                self.rung_active["syncookies"] = True
                self._transition("escalate", "syncookies",
                                 f"half-open {sig.half_open} >= "
                                 f"{self.halfopen_on}: stateless fallback on")
            return
        if sig.half_open <= self.halfopen_off:
            self._cookie_quiet += 1
        else:
            self._cookie_quiet = 0
        if self._cookie_quiet >= self.cookie_release_scans:
            tcp.set_syncookies(False)
            self.rung_active["syncookies"] = False
            self._transition("deescalate", "syncookies",
                             f"half-open down to {sig.half_open}: "
                             "stateful handshakes resume")

    # -- rung 3: quota tightening ---------------------------------------
    def _drive_quota(self, sig: DefenseSignals) -> None:
        if sig.trap_delta > 0:
            self._quota_pressure += 1
            self._quota_quiet = 0
        else:
            self._quota_quiet += 1
        if not self.rung_active["quota"]:
            if sig.trap_delta > 0:
                self._tighten_quota(sig)
            return
        # Throttled owners that keep violating fall through to the kill
        # rung inside the enforcer; sweep so tightened quotas bite paths
        # that existed before this scan.
        self.server.kernel.quotas.sweep(
            [p for p in self.server.tcp.conn_table.values()
             if not p.destroyed])
        if self._quota_quiet >= self.quota_release_scans:
            self._relax_quota()

    def _tighten_quota(self, sig: DefenseSignals) -> None:
        tcp = self.server.tcp
        quotas = self.server.kernel.quotas
        self._saved_quota = tcp.active_path_quota
        self._saved_runtime_limit = tcp.active_path_runtime_limit
        quotas.set_mode("throttle")
        tcp.active_path_quota = self.tight_quota
        if tcp.active_path_runtime_limit is not None:
            tcp.active_path_runtime_limit = max(
                1, tcp.active_path_runtime_limit // 2)
        self.rung_active["quota"] = True
        self._quota_quiet = 0
        self._transition("escalate", "quota",
                         f"{sig.trap_delta} runaway trap(s) this window: "
                         "throttle-first enforcement, quotas tightened")

    def _relax_quota(self) -> None:
        tcp = self.server.tcp
        quotas = self.server.kernel.quotas
        quotas.set_mode("kill")
        tcp.active_path_quota = self._saved_quota
        tcp.active_path_runtime_limit = self._saved_runtime_limit
        self.rung_active["quota"] = False
        self._quota_pressure = 0
        self._transition("deescalate", "quota",
                         "no runaway traps for "
                         f"{self.quota_release_scans} scans: quotas restored")

    # -- rung 4: graceful degradation -----------------------------------
    def _drive_degrade(self, sig: DefenseSignals) -> None:
        http = self.server.http
        level = http.degrade_level
        pressured = (sig.trap_delta > 0
                     or sig.free_pages <= self.pages_on
                     or (level >= 1 and sig.free_pages < self.pages_off
                         and self._quota_pressure > 0))
        if pressured:
            self._degrade_pressure += 1
            self._degrade_quiet = 0
        else:
            self._degrade_pressure = 0
            self._degrade_quiet += 1

        if self._degrade_pressure >= self.degrade_after_scans and level < 2:
            # Sustained pressure the earlier rungs did not relieve: shed.
            http.degrade_level = level + 1
            self._degrade_pressure = 0
            self.rung_active["degrade"] = True
            what = ("shedding CGI" if level == 0
                    else "shrinking static responses")
            self._transition("escalate", "degrade",
                             f"tier {level + 1}: {what} "
                             f"(traps {sig.trap_delta}, "
                             f"free pages {sig.free_pages})")
        elif (self._degrade_quiet >= self.degrade_release_scans
              and level > 0 and sig.free_pages >= self.pages_off):
            http.degrade_level = level - 1
            self._degrade_quiet = 0
            self.rung_active["degrade"] = http.degrade_level > 0
            self._transition("deescalate", "degrade",
                             f"tier {level - 1}: pressure cleared "
                             f"(free pages {sig.free_pages})")

    # ------------------------------------------------------------------
    # Watchdog integration: the rung between rollback and pathKill
    # ------------------------------------------------------------------
    def absorb(self, owner) -> bool:
        """Contain a watchdog-flagged offender non-lethally.

        Throttles the owner's scheduler share via the quota enforcer and
        registers the event as quota pressure so the ladder's quota and
        degradation rungs see it.  Returns False when the owner was
        already throttled (repeat offense) — the watchdog then proceeds
        to the kill rung.
        """
        quotas = self.server.kernel.quotas
        if not quotas.throttle(owner, "watchdog-defense"):
            return False
        self.absorbed += 1
        self._quota_pressure += 1
        self._quota_quiet = 0
        action = DefenseAction(
            at_s=ticks_to_seconds(self.server.kernel.sim.now),
            kind="absorb", rung="watchdog",
            detail=f"{owner.name} throttled instead of killed")
        self.log.append(action)
        if self.obs is not None:
            self.obs.on_defense_transition(self, action)
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _transition(self, kind: str, rung: str, detail: str) -> None:
        action = DefenseAction(
            at_s=ticks_to_seconds(self.server.kernel.sim.now),
            kind=kind, rung=rung, detail=detail)
        self.log.append(action)
        if self.obs is not None:
            self.obs.on_defense_transition(self, action)

    def actions(self, kind: Optional[str] = None) -> List[DefenseAction]:
        if kind is None:
            return list(self.log)
        return [a for a in self.log if a.kind == kind]

    def escalations(self) -> List[DefenseAction]:
        return self.actions("escalate")

    def deescalations(self) -> List[DefenseAction]:
        return self.actions("deescalate")

    def ladder_trace(self) -> List[str]:
        return [str(a) for a in self.log]

    def summary(self) -> str:
        up = sum(1 for a in self.log if a.kind == "escalate")
        down = sum(1 for a in self.log if a.kind == "deescalate")
        active = [r for r in RUNGS if self.rung_active[r]]
        return (f"defense: {self.scans} scans, {up} escalations, "
                f"{down} de-escalations, {self.absorbed} absorbed, "
                f"active rungs: {', '.join(active) or 'none'}")
