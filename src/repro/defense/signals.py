"""Defense signals: sliding-window baselines over the accounting counters.

The accounting mechanism (paper section 2) already charges every cycle,
page and packet to an owner; this module only *reads* those counters.
Each scan window the monitor computes per-window deltas — SYN arrivals per
source /24 prefix, runaway traps, half-open connections, free pages — and
folds them into exponentially-weighted baselines.  The anomaly score of a
source is how far its current rate sits above its own learned baseline,
measured in mean-absolute-deviations, so a prefix that has always been
busy is not flagged while a previously-quiet prefix that starts spraying
SYNs is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.clock import TICKS_PER_SECOND


class EwmaBaseline:
    """An EWMA mean with an EWMA mean-absolute-deviation.

    ``score(x)`` is the positive deviation of ``x`` above the mean in
    deviation units — a robust, cheap anomaly score.  The deviation floor
    keeps a perfectly steady signal (dev → 0) from scoring minor noise as
    infinitely anomalous.
    """

    __slots__ = ("alpha", "mean", "dev", "dev_floor", "samples")

    def __init__(self, alpha: float = 0.25, dev_floor: float = 1.0):
        self.alpha = alpha
        self.mean: Optional[float] = None
        self.dev = 0.0
        self.dev_floor = dev_floor
        self.samples = 0

    def update(self, x: float) -> None:
        self.samples += 1
        if self.mean is None:
            self.mean = x
            return
        err = x - self.mean
        self.dev = (1 - self.alpha) * self.dev + self.alpha * abs(err)
        self.mean = self.mean + self.alpha * err

    def score(self, x: float) -> float:
        """Positive deviations above baseline; 0 for at-or-below."""
        if self.mean is None:
            return 0.0
        denom = max(self.dev, self.dev_floor)
        return max(0.0, (x - self.mean) / denom)


@dataclass
class DefenseSignals:
    """One scan window's worth of observations."""

    at: int                                  # sim tick of the sample
    window_ticks: int
    syn_rates: Dict[str, float] = field(default_factory=dict)
    syn_scores: Dict[str, float] = field(default_factory=dict)
    half_open: int = 0
    trap_delta: int = 0
    free_pages: int = 0
    active_paths: int = 0

    def hot_prefixes(self, score_on: float, rate_floor: float) -> List[str]:
        """Prefixes that are both anomalous and materially loud, sorted
        for deterministic iteration."""
        return sorted(p for p, s in self.syn_scores.items()
                      if s >= score_on
                      and self.syn_rates.get(p, 0.0) >= rate_floor)


class AccountingMonitor:
    """Samples the server's accounting counters into baselines.

    Driven by the controller's engine-tick scan (never wall clock); all
    state is plain counters and EWMAs, so a checkpointed run resumes with
    identical behavior.
    """

    def __init__(self, server, alpha: float = 0.25,
                 dev_floor: float = 5.0):
        self.server = server
        self.alpha = alpha
        self.dev_floor = dev_floor
        #: prefix -> EWMA of its per-second SYN arrival rate.
        self.baselines: Dict[str, EwmaBaseline] = {}
        self._last_arrivals: Dict[str, int] = {}
        self._last_traps = 0
        self._last_at: Optional[int] = None
        self.samples_taken = 0

    def sample(self) -> DefenseSignals:
        kernel = self.server.kernel
        tcp = self.server.tcp
        now = kernel.sim.now
        window = (now - self._last_at) if self._last_at is not None else 0
        self._last_at = now
        self.samples_taken += 1

        sig = DefenseSignals(at=now, window_ticks=window)
        sig.half_open = tcp.half_open()
        sig.free_pages = kernel.allocator.free_pages
        sig.active_paths = sum(1 for p in tcp.conn_table.values()
                               if not p.destroyed)

        traps = kernel.runaway_traps
        sig.trap_delta = traps - self._last_traps
        self._last_traps = traps

        if window <= 0:
            return sig
        # Per-prefix SYN rates this window (offered load: the demux
        # counts arrivals before any gate/cap decision).
        for prefix in sorted(tcp.syn_arrivals):
            total = tcp.syn_arrivals[prefix]
            delta = total - self._last_arrivals.get(prefix, 0)
            self._last_arrivals[prefix] = total
            rate = delta * TICKS_PER_SECOND / window
            sig.syn_rates[prefix] = rate
            base = self.baselines.get(prefix)
            if base is None:
                base = self.baselines[prefix] = EwmaBaseline(
                    self.alpha, self.dev_floor)
            # Score against the baseline *before* folding the new sample
            # in, or a step attack would teach its own baseline first.
            sig.syn_scores[prefix] = base.score(rate)
            base.update(rate)
        return sig

    def baseline_rate(self, prefix: str) -> float:
        base = self.baselines.get(prefix)
        if base is None or base.mean is None:
            return 0.0
        return base.mean
