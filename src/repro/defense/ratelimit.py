"""Token buckets for demux-time rate limiting.

Pure integer arithmetic in a fixed-point representation (token fractions
of ``TICKS_PER_SECOND``), so refill is exact and a recorded run replays
bit-for-bit regardless of the platform's float rounding.
"""

from __future__ import annotations

from repro.sim.clock import TICKS_PER_SECOND

#: One whole token in the fixed-point representation.
_ONE = TICKS_PER_SECOND


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` deep."""

    __slots__ = ("rate", "burst", "_tokens_fp", "_last")

    def __init__(self, rate_per_second: int, burst: int, now: int = 0):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate_per_second
        self.burst = burst
        self._tokens_fp = burst * _ONE
        self._last = now

    @property
    def tokens(self) -> float:
        return self._tokens_fp / _ONE

    def allow(self, now: int) -> bool:
        """Spend one token if available; refills lazily from ``now``."""
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens_fp = min(self.burst * _ONE,
                                  self._tokens_fp + elapsed * self.rate)
            self._last = now
        if self._tokens_fp >= _ONE:
            self._tokens_fp -= _ONE
            return True
        return False
