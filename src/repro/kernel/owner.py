"""The Owner data structure — the paper's Figure 4.

Every resource in Escort is charged to an owner, which is either a *path* or
a *protection domain* (plus two kernel-internal pseudo-owners used for the
kernel itself and for idle time, so the cycle ledger always sums to the wall
clock).

Mirroring the paper, the structure has three parts:

* **Accounting** — counters of resources consumed (kernel memory, pages,
  stacks, CPU cycles, events, semaphores).  Policies read these to detect
  violations.
* **Tracking** — the actual kernel objects associated with the owner, kept
  in collections that support fast removal so the owner can be destroyed
  cheaply (Table 2 measures exactly this walk).
* **Scheduling** — per-owner scheduler state; its contents depend on the
  configured scheduler (priority / proportional share / EDF).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.kernel.errors import OwnerDestroyedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.memory import Page
    from repro.kernel.threads import EscortThread
    from repro.kernel.events import KernelEvent, Semaphore
    from repro.kernel.iobuffer import IOBufferLock


class OwnerType(enum.Enum):
    """What kind of principal an owner is."""

    PATH = "path"
    PROTECTION_DOMAIN = "pd"
    KERNEL = "kernel"
    IDLE = "idle"


@dataclass
class ResourceUsage:
    """The accounting half of the Owner structure (Figure 4, first part)."""

    kmem: int = 0          # bytes of kernel memory for tracked objects
    heap_bytes: int = 0    # bytes charged out of protection-domain heaps
    pages: int = 0         # whole memory pages
    stacks: int = 0        # thread stacks
    cycles: int = 0        # CPU cycles consumed
    events: int = 0        # live kernel events
    semaphores: int = 0    # live semaphores

    def snapshot(self) -> "ResourceUsage":
        return ResourceUsage(self.kmem, self.heap_bytes, self.pages,
                             self.stacks, self.cycles, self.events,
                             self.semaphores)


class SchedState:
    """Per-owner scheduler state (Figure 4, third part).

    Holds the union of the fields the three schedulers need; each scheduler
    uses only its own.
    """

    __slots__ = ("tickets", "stride_pass", "priority", "period_ticks",
                 "deadline", "remaining")

    def __init__(self) -> None:
        self.tickets = 1          # proportional share
        self.stride_pass = 0      # proportional share virtual time
        self.priority = 0         # priority scheduler (higher runs first)
        self.period_ticks = 0     # EDF
        self.deadline = 0         # EDF absolute deadline
        self.remaining = 0        # EDF budget bookkeeping


class Owner:
    """A principal that resources are charged to.

    Subclassed by :class:`~repro.core.path.Path` and
    :class:`~repro.kernel.domain.ProtectionDomain` — the paper makes Owner
    the first element of both structs; inheritance is the Python analogue.
    """

    _next_id = 1

    def __init__(self, otype: OwnerType, name: str = ""):
        self.oid = Owner._next_id
        Owner._next_id += 1
        self.type = otype
        self.name = name or f"{otype.value}-{self.oid}"

        # -- Accounting ------------------------------------------------
        self.usage = ResourceUsage()

        # -- Tracking (doubly-linked lists in the paper; Python sets and
        #    dicts give the same O(1) removal) ---------------------------
        self.page_list: Set["Page"] = set()
        self.thread_list: Set["EscortThread"] = set()
        self.iobuffer_locks: Set["IOBufferLock"] = set()
        self.event_list: Set["KernelEvent"] = set()
        self.semaphore_list: Set["Semaphore"] = set()
        self.heap_allocations: Set = set()   # HeapAllocation objects

        # -- Scheduling --------------------------------------------------
        self.sched = SchedState()

        #: Maximum thread runtime without a yield, in cycles (None =
        #: unlimited).  Enforced by the CPU; the CGI policy sets 2 ms.
        self.runtime_limit_cycles: Optional[int] = None

        self.destroyed = False
        self._destroy_callbacks: List[Callable[["Owner"], None]] = []

        #: Arbitrary per-owner policy state (e.g. SYN_RECVD counts live on
        #: the passive path because "this number is part of the path
        #: state").
        self.policy_state: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Accounting entry points
    # ------------------------------------------------------------------
    def charge_cycles(self, n: int) -> None:
        """Charge ``n`` CPU cycles to this owner (called by the CPU)."""
        self.usage.cycles += n

    def check_alive(self) -> None:
        if self.destroyed:
            raise OwnerDestroyedError(f"{self.name} has been destroyed")

    # ------------------------------------------------------------------
    # Destruction support
    # ------------------------------------------------------------------
    def on_destroy(self, fn: Callable[["Owner"], None]) -> None:
        """Register a callback to run when this owner is destroyed."""
        self._destroy_callbacks.append(fn)

    def run_destroy_callbacks(self) -> None:
        callbacks, self._destroy_callbacks = self._destroy_callbacks, []
        for fn in callbacks:
            fn(self)

    def tracked_object_count(self) -> int:
        """Total tracked kernel objects (used by Table 2's cost model)."""
        return (len(self.page_list) + len(self.thread_list)
                + len(self.iobuffer_locks) + len(self.event_list)
                + len(self.semaphore_list) + len(self.heap_allocations))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Owner {self.name} ({self.type.value})>"


def make_kernel_owner() -> Owner:
    """The pseudo-owner charged for kernel work (softclock ticks etc.)."""
    return Owner(OwnerType.KERNEL, name="kernel")


def make_idle_owner() -> Owner:
    """The pseudo-owner charged when the CPU has nothing to run."""
    return Owner(OwnerType.IDLE, name="idle")
