"""Role-based access control (policy enforcement level 1).

"A conventional role-based access control list is used to guard the kernel
against unauthorized access.  The role is determined by the owner of the
thread and the current protection domain" (paper section 2.5).

Roles are named capability sets; the ACL maps (owner type, protection
domain) to a role.  Kernel entry points consult :meth:`AccessControlList.check`
before performing privileged operations.  The default policy is permissive
for the privileged domain and grants ordinary domains the operations the
web-server configuration needs, which mirrors how Escort ships with a
representative (not bullet-proof) policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.kernel.domain import ProtectionDomain
from repro.kernel.errors import PermissionError_
from repro.kernel.owner import Owner, OwnerType

#: The kernel operations that can be guarded.
KERNEL_OPERATIONS = frozenset({
    "path_create", "path_destroy", "path_kill",
    "iobuf_alloc", "iobuf_lock", "iobuf_unlock", "iobuf_associate",
    "thread_spawn", "thread_handoff", "thread_stop", "thread_yield",
    "event_create", "event_cancel",
    "semaphore_create", "semaphore_destroy",
    "page_alloc", "page_free",
    "device_access", "console_write",
    "set_policy",
})


@dataclass(frozen=True)
class Role:
    """A named set of permitted kernel operations."""

    name: str
    operations: FrozenSet[str]

    def permits(self, op: str) -> bool:
        return op in self.operations

    @staticmethod
    def privileged() -> "Role":
        return Role("privileged", KERNEL_OPERATIONS)

    @staticmethod
    def module() -> "Role":
        """What an ordinary (untrusted) module domain may do."""
        return Role("module", frozenset(KERNEL_OPERATIONS - {
            "set_policy", "path_kill", "device_access"}))

    @staticmethod
    def driver() -> "Role":
        """A device-driver domain: module rights plus device access."""
        return Role("driver", frozenset(
            (KERNEL_OPERATIONS - {"set_policy", "path_kill"})))


class AccessControlList:
    """Maps (owner, current protection domain) to a role and checks ops."""

    def __init__(self) -> None:
        self._domain_roles: Dict[ProtectionDomain, Role] = {}
        self._default = Role.module()
        self.denials = 0

    def assign(self, domain: ProtectionDomain, role: Role) -> None:
        self._domain_roles[domain] = role

    def role_for(self, owner: Optional[Owner],
                 domain: Optional[ProtectionDomain]) -> Role:
        """Resolve the effective role.

        The kernel pseudo-owner and privileged domains get the privileged
        role; otherwise the domain's assigned role (or the module default).
        """
        if owner is not None and owner.type == OwnerType.KERNEL:
            return Role.privileged()
        if domain is not None:
            if domain.privileged:
                return Role.privileged()
            assigned = self._domain_roles.get(domain)
            if assigned is not None:
                return assigned
        return self._default

    def check(self, op: str, owner: Optional[Owner],
              domain: Optional[ProtectionDomain]) -> None:
        """Raise :class:`PermissionError_` unless the role permits ``op``."""
        if op not in KERNEL_OPERATIONS:
            raise ValueError(f"unknown kernel operation: {op}")
        role = self.role_for(owner, domain)
        if not role.permits(op):
            self.denials += 1
            who = owner.name if owner else "?"
            where = domain.name if domain else "?"
            raise PermissionError_(
                f"ACL: role {role.name} denies {op} "
                f"(owner={who}, domain={where})")
