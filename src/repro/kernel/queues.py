"""Bounded queues (one of Escort's trusted libraries).

Paths have source and sink queues; data is enqueued at one end of the path
and a thread is scheduled to execute the path.  The queue here is the
blocking primitive those threads use.  It is deliberately simple: bounded
FIFO, blocking ``get``, non-blocking ``put`` that reports overflow (a
dropped packet) instead of blocking the producer — device drivers must
never block in interrupt context.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional, TYPE_CHECKING

from repro.sim.cpu import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class BoundedQueue:
    """Bounded FIFO with a blocking generator-style ``get``."""

    def __init__(self, kernel: "Kernel", capacity: int = 64, name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name or "queue"
        self._items: Deque = deque()
        self._waiters: List = []
        self.closed = False
        self.drops = 0

    # -- waitable protocol ----------------------------------------------
    def add_waiter(self, thread) -> None:
        self._waiters.append(thread)

    # ------------------------------------------------------------------
    def put(self, item) -> bool:
        """Enqueue; returns False (and counts a drop) when full or closed."""
        if self.closed or len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        self._wake_one()
        return True

    def get(self) -> Generator:
        """Thread-body helper: ``item = yield from q.get()``.

        Returns ``None`` if the queue is closed while waiting.
        """
        while not self._items:
            if self.closed:
                return None
            yield Block(self)
        return self._items.popleft()

    def get_nowait(self):
        """Pop without blocking; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def close(self) -> None:
        """Close the queue and wake all waiters (they observe None)."""
        self.closed = True
        waiters, self._waiters = self._waiters, []
        for t in waiters:
            if t.alive:
                self.kernel.cpu.make_runnable(t)

    def _wake_one(self) -> None:
        while self._waiters:
            t = self._waiters.pop(0)
            if t.alive:
                self.kernel.cpu.make_runnable(t)
                return

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BoundedQueue {self.name} {len(self._items)}/{self.capacity}>"
