"""Kernel error types.

The paper's kernel returns error codes from its 52 system calls; we raise
exceptions instead, which is the Pythonic equivalent.  All kernel errors
derive from :class:`EscortError` so callers can catch the whole family.
"""

from __future__ import annotations


class EscortError(Exception):
    """Base class for all kernel errors."""


class PermissionError_(EscortError):
    """An operation was denied by the ACL or ownership rules.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ResourceLimitError(EscortError):
    """An allocation exceeded the owner's or the system's resource limit."""


class OwnerDestroyedError(EscortError):
    """An operation referenced an owner that has already been destroyed."""


class InvalidOperationError(EscortError):
    """An operation violated a kernel invariant (e.g. unlocking an unlocked
    IOBuffer, or crossing into a protection domain not on the path)."""
