"""Fixed-priority scheduler.

Owners carry an integer priority (``owner.sched.priority``, higher wins);
ties break round-robin by recency of activation so equal-priority owners
share the CPU.  This is the scheduler the paper's "very low priority
passive path" remark (section 4.4.4) assumes: a suspicious client's
connection requests can be demultiplexed to a passive path that only runs
when nothing better is runnable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.kernel.owner import Owner
from repro.kernel.sched.base import OwnerScheduler


class PriorityScheduler(OwnerScheduler):
    """Strict priority across owners, round-robin within a priority."""

    def __init__(self) -> None:
        super().__init__()
        self._levels: Dict[int, Deque[Owner]] = {}

    def on_owner_active(self, owner: Owner) -> None:
        level = owner.sched.priority
        self._levels.setdefault(level, deque()).append(owner)

    def on_owner_idle(self, owner: Owner) -> None:
        level = owner.sched.priority
        queue = self._levels.get(level)
        if not queue:
            return
        try:
            queue.remove(owner)
        except ValueError:
            pass
        if not queue:
            del self._levels[level]

    def pick_owner(self) -> Optional[Owner]:
        if not self._levels:
            return None
        best = max(self._levels)
        queue = self._levels[best]
        owner = queue.popleft()
        queue.append(owner)  # round-robin within the level
        return owner
