"""Escort's thread schedulers.

The paper: "Escort currently supports a priority-based scheduler, a
proportional share scheduler, and an EDF scheduler" — the scheduler is
picked at configuration time.  All three implement the same four-method
interface the CPU drives (``enqueue``, ``dequeue``, ``pick``,
``on_charge``), and all schedule *owners* (paths / protection domains),
round-robining among an owner's runnable threads; per-owner scheduling is
what makes QoS guarantees per path possible.
"""

from repro.kernel.sched.base import OwnerScheduler
from repro.kernel.sched.priority import PriorityScheduler
from repro.kernel.sched.proportional import ProportionalShareScheduler
from repro.kernel.sched.edf import EDFScheduler

__all__ = [
    "OwnerScheduler",
    "PriorityScheduler",
    "ProportionalShareScheduler",
    "EDFScheduler",
]
