"""Proportional-share scheduler (stride scheduling).

This is the scheduler the QoS experiments use: "a proportional share
scheduler is used to ensure that the path responsible for this connection
receives this bandwidth" (paper section 4.1.2).  Owners hold *tickets*
(``owner.sched.tickets``); over any interval in which an owner stays
runnable it receives CPU in proportion to its tickets.

Implementation is classic stride scheduling: each owner advances a virtual
time ("pass") by ``cycles * STRIDE1 / tickets`` as it consumes cycles; the
runnable owner with the smallest pass runs next.  Owners waking from idle
are clamped to the current minimum pass so sleeping cannot bank credit —
that clamp is what makes the scheduler work-conserving while still
protecting reservations.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.cpu import SimThread
from repro.kernel.owner import Owner
from repro.kernel.sched.base import OwnerScheduler

#: Stride normalization constant (large so integer division keeps
#: precision even for big ticket counts).
STRIDE1 = 1 << 20


class ProportionalShareScheduler(OwnerScheduler):
    """Stride scheduling over owners."""

    def __init__(self) -> None:
        super().__init__()
        #: The owner whose thread the CPU is currently running.  It has
        #: left the runnable map, but its pass must still anchor the
        #: virtual-time floor — otherwise every yield would re-clamp it
        #: against the *other* owners and erase its ticket advantage.
        self._serving: Optional[Owner] = None

    def on_owner_active(self, owner: Owner) -> None:
        if owner is self._serving:
            # The owner is continuing (its thread yielded or re-blocked
            # mid-service); it never really left, so no wake clamp — this
            # is what preserves a reservation's advantage while it stays
            # busy.
            return
        floor = self._min_pass(exclude=owner)
        if floor is not None and owner.sched.stride_pass < floor:
            owner.sched.stride_pass = floor

    def _min_pass(self, exclude: Optional[Owner] = None) -> Optional[int]:
        best = None
        for owner in self._runnable:
            if owner is exclude:
                continue
            p = owner.sched.stride_pass
            if best is None or p < best:
                best = p
        serving = self._serving
        if serving is not None and serving is not exclude \
                and not serving.destroyed:
            p = serving.sched.stride_pass
            if best is None or p < best:
                best = p
        return best

    def pick_owner(self) -> Optional[Owner]:
        best = None
        best_key = None
        for owner in self._runnable:
            key = (owner.sched.stride_pass, owner.oid)
            if best_key is None or key < best_key:
                best = owner
                best_key = key
        self._serving = best
        return best

    def on_charge(self, thread: SimThread, cycles: int) -> None:
        sched = thread.owner.sched
        tickets = sched.tickets
        if tickets < 1:
            tickets = 1
        sched.stride_pass += cycles * STRIDE1 // tickets
