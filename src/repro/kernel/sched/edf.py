"""Earliest-deadline-first scheduler.

Owners declare a period (``owner.sched.period_ticks``); when an owner
becomes runnable after being idle it receives a deadline one period in the
future, and the runnable owner with the earliest deadline runs.  When an
owner's deadline passes while it remains runnable, the deadline advances by
its period (implicit-deadline periodic task model).

Owners with no period (``period_ticks == 0``) are background: they are
given an effectively infinite deadline and only run when no periodic owner
is runnable.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.owner import Owner
from repro.kernel.sched.base import OwnerScheduler

#: Deadline assigned to aperiodic (background) owners.
BACKGROUND_DEADLINE = 1 << 62


class EDFScheduler(OwnerScheduler):
    """Earliest deadline first across owners."""

    def __init__(self, now_fn=None) -> None:
        super().__init__()
        #: Clock source; injected so the scheduler stays engine-agnostic.
        self._now = now_fn or (lambda: 0)

    def on_owner_active(self, owner: Owner) -> None:
        sched = owner.sched
        if sched.period_ticks <= 0:
            sched.deadline = BACKGROUND_DEADLINE
            return
        now = self._now()
        if sched.deadline <= now:
            sched.deadline = now + sched.period_ticks

    def pick_owner(self) -> Optional[Owner]:
        now = self._now()
        best = None
        best_key = None
        for owner in self._runnable:
            sched = owner.sched
            # Roll forward deadlines that expired while runnable.
            if 0 < sched.period_ticks and sched.deadline < now:
                missed = (now - sched.deadline) // sched.period_ticks + 1
                sched.deadline += missed * sched.period_ticks
            key = (sched.deadline, owner.oid)
            if best_key is None or key < best_key:
                best = owner
                best_key = key
        return best
