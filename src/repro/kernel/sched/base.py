"""Common machinery for owner-based schedulers.

Each scheduler keeps, per owner, a FIFO of that owner's runnable threads,
and chooses *which owner* runs next by its own discipline.  Within an owner,
threads run round-robin.  The scheduler state stored on each owner
(``owner.sched``) is the third section of the paper's Owner structure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.sim.cpu import SimThread
from repro.kernel.owner import Owner


class OwnerScheduler:
    """Base class: owner FIFO bookkeeping; subclasses pick the next owner."""

    def __init__(self) -> None:
        self._runnable: Dict[Owner, Deque[SimThread]] = {}

    # ------------------------------------------------------------------
    # Interface driven by the CPU
    # ------------------------------------------------------------------
    def enqueue(self, thread: SimThread) -> None:
        owner = thread.owner
        queue = self._runnable.get(owner)
        if queue is None:
            queue = deque()
            self._runnable[owner] = queue
            self.on_owner_active(owner)
        queue.append(thread)

    def dequeue(self, thread: SimThread) -> None:
        owner = thread.owner
        queue = self._runnable.get(owner)
        if queue is None:
            return
        try:
            queue.remove(thread)
        except ValueError:
            return
        if not queue:
            del self._runnable[owner]
            self.on_owner_idle(owner)

    def pick(self) -> Optional[SimThread]:
        while self._runnable:
            owner = self.pick_owner()
            if owner is None:
                return None
            queue = self._runnable[owner]
            thread = queue.popleft()
            if not queue:
                del self._runnable[owner]
                self.on_owner_idle(owner)
            if thread.alive:
                return thread
        return None

    def on_charge(self, thread: SimThread, cycles: int) -> None:
        """Subclasses override to advance virtual time."""

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def pick_owner(self) -> Optional[Owner]:
        raise NotImplementedError

    def on_owner_active(self, owner: Owner) -> None:
        """An owner gained its first runnable thread."""

    def on_owner_idle(self, owner: Owner) -> None:
        """An owner's last runnable thread was removed."""

    # ------------------------------------------------------------------
    def runnable_owners(self) -> int:
        return len(self._runnable)

    def has_runnable(self, owner: Owner) -> bool:
        return owner in self._runnable
