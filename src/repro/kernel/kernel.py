"""The Escort kernel proper.

One :class:`Kernel` instance is the privileged core of a simulated Escort
machine: it owns the CPU, the page allocator, the IOBuffer manager, the
softclock, the ACL, and the registry of protection domains, and it provides
the owner-destruction machinery that ``pathKill`` and domain teardown use.

Configuration (:class:`KernelConfig`) selects the two dimensions the paper
evaluates: whether *accounting* is enabled (the ~8 % overhead of the
"Accounting" configuration) and whether *protection domains* are enforced
(the "Accounting_PD" configuration, where each inter-module call pays a
crossing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.clock import SERVER_TICKS_PER_CYCLE
from repro.sim.cpu import CPU, Interrupt, SimThread
from repro.sim.costs import CostModel, DemuxCostTable
from repro.sim.engine import Simulator
from repro.kernel.acl import AccessControlList, Role
from repro.kernel.domain import ProtectionDomain
from repro.kernel.errors import InvalidOperationError
from repro.kernel.events import KernelEvent, Semaphore, Softclock
from repro.kernel.iobuffer import IOBufferCache
from repro.kernel.memory import PageAllocator
from repro.kernel.owner import (
    Owner,
    OwnerType,
    make_idle_owner,
    make_kernel_owner,
)
from repro.kernel.queues import BoundedQueue
from repro.kernel.quota import QuotaEnforcer
from repro.kernel.sched import (
    EDFScheduler,
    PriorityScheduler,
    ProportionalShareScheduler,
)
from repro.kernel.threads import EscortThread


@dataclass
class KernelConfig:
    """Build-time configuration of an Escort kernel."""

    #: Account for all resource usage (the paper's "Accounting" configs).
    accounting: bool = True
    #: Enforce protection domains (the paper's "Accounting_PD" config).
    protection_domains: bool = False
    #: "priority" | "proportional" | "edf" — chosen at configuration time.
    scheduler: str = "proportional"
    total_pages: int = 8192
    costs: CostModel = field(default_factory=CostModel.default)
    #: Contain exceptions escaping thread bodies by destroying the faulting
    #: owner instead of crashing the simulation.  Off by default so that
    #: programming errors in tests still surface as tracebacks; the chaos
    #: harness turns it on (a real Escort kernel always contains faults).
    contain_thread_faults: bool = False


@dataclass
class KillReport:
    """What a ``kill_owner`` reclaimed, and what it cost (Table 2)."""

    owner_name: str
    cycles: int
    pages: int
    threads: int
    stacks: int
    iobuf_locks: int
    events: int
    semaphores: int
    heap_allocations: int
    domains_visited: int


class Kernel:
    """The privileged protection domain: kernel objects and system calls."""

    def __init__(self, sim: Simulator, config: Optional[KernelConfig] = None):
        self.sim = sim
        self.config = config or KernelConfig()
        self.costs = self.config.costs
        # Demux costs depend only on boot-time configuration; precompute
        # the per-classification table once (hot path: every packet).
        self.demux_table = DemuxCostTable(self.costs,
                                          self.config.protection_domains)
        # Accounting is likewise a boot-time decision: fold the enabled
        # check into a precomputed per-op cost so ``acct`` is one multiply.
        self.acct_unit = (self.costs.accounting_op
                          if self.config.accounting else 0)

        self.kernel_owner = make_kernel_owner()
        self.idle_owner = make_idle_owner()

        scheduler = self._make_scheduler(self.config.scheduler)
        self.cpu = CPU(sim, SERVER_TICKS_PER_CYCLE, scheduler=scheduler,
                       idle_owner=self.idle_owner)
        self.cpu.on_runaway = self._handle_runaway

        self.allocator = PageAllocator(self.config.total_pages)
        self.iobufs = IOBufferCache(self.allocator, self.kernel_owner)
        self.softclock = Softclock(self)
        self.acl = AccessControlList()

        self.quotas = QuotaEnforcer(self)
        self.privileged_domain = ProtectionDomain("privileged",
                                                  privileged=True)
        self.domains: List[ProtectionDomain] = [self.privileged_domain]

        #: Policy hook invoked when a thread exceeds its owner's runtime
        #: limit.  Default: destroy the owner (the paper's CGI defence).
        self.runaway_policy: Callable[[SimThread], None] = \
            self._default_runaway_policy
        self.kill_reports: List[KillReport] = []
        self.runaway_traps = 0

        # -- fault containment (chaos subsystem hooks) -------------------
        #: Exceptions that escaped a thread body and were contained by
        #: destroying the faulting owner.
        self.fault_traps = 0
        #: Faults whose owner could not be destroyed (kernel/idle pseudo-
        #: owners and the privileged domain are never killed).
        self.uncontained_faults = 0
        if self.config.contain_thread_faults:
            self.enable_fault_containment()

        #: Kernel watchdog (see :mod:`repro.chaos.watchdog`); attached by
        #: the chaos harness, notified of every owner destruction.
        self.watchdog = None
        #: Listeners notified after every ``kill_owner`` completes, with
        #: ``(owner, report)``.  The invariant checker hangs off this.
        self.kill_listeners: List[Callable[[Owner, "KillReport"], None]] = []

        # -- admission control (graceful degradation) --------------------
        #: While True, ``path_create`` rejects new non-listening paths
        #: cheaply instead of admitting work the kernel cannot finish.
        #: Toggled by the watchdog when the kernel is saturated.
        self.shedding = False
        #: Paths rejected by admission control.
        self.sheds = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_scheduler(self, name: str):
        if name == "proportional":
            return ProportionalShareScheduler()
        if name == "priority":
            return PriorityScheduler()
        if name == "edf":
            return EDFScheduler(now_fn=lambda: self.sim.now)
        raise ValueError(f"unknown scheduler: {name}")

    def create_domain(self, name: str, privileged: bool = False,
                      role: Optional[Role] = None) -> ProtectionDomain:
        """Create a protection domain (configuration-time operation).

        When protection domains are disabled, callers still get domain
        objects (modules need owners for their global state) — there is
        simply no crossing cost and no isolation, exactly like the paper's
        single-domain configurations.
        """
        pd = ProtectionDomain(name, privileged=privileged)
        self.domains.append(pd)
        if role is not None:
            self.acl.assign(pd, role)
        return pd

    def boot(self) -> None:
        """Start kernel services (the softclock)."""
        self.softclock.start()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def acct(self, ops: int = 1) -> int:
        """Cycle cost of ``ops`` accounting operations (0 when disabled).

        Module and kernel code adds this to the cycles it yields whenever
        it performs an accountable operation; this is the mechanism behind
        the paper's ~8 % accounting overhead.
        """
        return ops * self.acct_unit

    @property
    def pd_enabled(self) -> bool:
        return self.config.protection_domains

    def crossing_cost(self, from_pd: ProtectionDomain,
                      to_pd: ProtectionDomain) -> int:
        """Cycles for one inter-module call given the domain placement."""
        if not self.pd_enabled or from_pd is to_pd:
            return 0
        return self.costs.pd_crossing

    # ------------------------------------------------------------------
    # Kernel object factories (the syscall surface uses these)
    # ------------------------------------------------------------------
    def spawn_thread(self, owner: Owner, body: Generator, name: str = "",
                     stack_domains: int = 1) -> EscortThread:
        """Create a kernel thread owned by ``owner`` and schedule it."""
        thread = EscortThread(self, owner, body, name=name,
                              stack_domains=stack_domains)
        thread.sim_thread.escort = thread  # backref for kernel lookups
        self.cpu.make_runnable(thread.sim_thread)
        return thread

    def create_event(self, owner: Owner, fn: Callable[[], Generator],
                     delay_ticks: int, periodic: bool = False,
                     name: str = "") -> KernelEvent:
        """Arm a kernel event; ``fn()`` runs as a thread of ``owner``."""
        event = KernelEvent(self, owner, fn, delay_ticks,
                            periodic=periodic, name=name)
        self.softclock.add(event)
        return event

    def create_semaphore(self, owner: Owner, count: int = 0,
                         name: str = "") -> Semaphore:
        """Create a semaphore owned (and charged to) ``owner``."""
        return Semaphore(self, owner, count=count, name=name)

    def create_queue(self, capacity: int = 64, name: str = "") -> BoundedQueue:
        """Create a bounded FIFO for path input/output."""
        return BoundedQueue(self, capacity=capacity, name=name)

    @property
    def current_thread(self) -> Optional[SimThread]:
        return self.cpu.current

    # ------------------------------------------------------------------
    # Runaway handling
    # ------------------------------------------------------------------
    def _handle_runaway(self, thread: SimThread) -> None:
        self.runaway_traps += 1
        self.runaway_policy(thread)

    def _default_runaway_policy(self, thread: SimThread) -> None:
        """Threads cannot be preempted gracefully: preempting a thread
        requires destroying it, and a destroyed thread most likely leaves
        its owner inconsistent, so the owner is removed too."""
        owner = thread.owner
        if isinstance(owner, Owner) and not owner.destroyed:
            self.kill_owner(owner)

    # ------------------------------------------------------------------
    # Fault containment
    # ------------------------------------------------------------------
    def enable_fault_containment(self) -> None:
        """Route exceptions escaping thread bodies to the kill machinery.

        A module that raises mid-path leaves its owner in an unknown state;
        like a runaway, the owner is destroyed (``pathKill`` semantics: no
        destructor functions run).  Kernel- and idle-owned threads, and
        threads of the privileged domain, are never contained this way —
        such a fault is recorded and, when a watchdog is attached, logged.

        Only *simulated* faults are absorbed: the :class:`EscortError`
        family (every kernel error plus the chaos layer's injected
        :class:`~repro.chaos.inject.ChaosFault`) and
        :class:`~repro.sim.cpu.ThreadKilled`.  Anything else — a genuine
        bug in harness or module code — is recorded by the CPU and
        re-raised, so a resilience campaign cannot mistake a crashed
        simulator for a survived fault.
        """
        from repro.kernel.errors import EscortError
        from repro.sim.cpu import ThreadKilled

        self.cpu.containable_exceptions = (EscortError, ThreadKilled)
        self.cpu.on_thread_fault = self._handle_thread_fault

    def _handle_thread_fault(self, thread: SimThread, exc: BaseException) -> None:
        self.fault_traps += 1
        owner = thread.owner
        killable = (isinstance(owner, Owner) and not owner.destroyed
                    and owner.type not in (OwnerType.KERNEL, OwnerType.IDLE)
                    and not getattr(owner, "privileged", False))
        if self.watchdog is not None:
            self.watchdog.note_fault(thread, exc, contained=killable)
        if killable:
            self.kill_owner(owner)
        else:
            self.uncontained_faults += 1

    # ------------------------------------------------------------------
    # Watchdog / admission control
    # ------------------------------------------------------------------
    def attach_watchdog(self, watchdog) -> None:
        """Install the kernel watchdog (notified of kills and faults)."""
        self.watchdog = watchdog

    def set_shedding(self, on: bool) -> None:
        """Toggle admission-control shedding (graceful degradation)."""
        self.shedding = bool(on)

    def admit_path(self) -> bool:
        """Admission check consulted by ``path_create``; counts rejections."""
        if self.shedding:
            self.sheds += 1
            return False
        return True

    # ------------------------------------------------------------------
    # Owner destruction (the heart of containment)
    # ------------------------------------------------------------------
    def reclaim_cost(self, owner: Owner, domains_visited: int) -> int:
        """Table 2's cost model: walking the tracking lists."""
        c = self.costs
        usage = owner.usage
        return (c.kill_base
                + c.kill_per_page * len(owner.page_list)
                + c.kill_per_thread * len(owner.thread_list)
                + c.kill_per_stack * usage.stacks
                + c.kill_per_iobuf * len(owner.iobuffer_locks)
                + c.kill_per_event * len(owner.event_list)
                + c.kill_per_semaphore * len(owner.semaphore_list)
                + c.kill_per_heap_alloc * len(owner.heap_allocations)
                + c.kill_per_domain * domains_visited)

    def kill_owner(self, owner: Owner, charge: bool = True,
                   record: bool = True) -> KillReport:
        """Forcibly reclaim everything ``owner`` holds (``pathKill`` core).

        Does *not* run module destructor functions — that is ``pathDestroy``'s
        job.  Returns a :class:`KillReport` with the reclaimed object counts
        and the cycle cost, which is charged to the kernel as interrupt-level
        work when ``charge`` is True.
        """
        if owner.destroyed:
            raise InvalidOperationError(f"{owner.name} already destroyed")

        domains = []
        crossed = getattr(owner, "domains_crossed", None)
        if crossed is not None and self.pd_enabled:
            domains = list(crossed())
        cost = self.reclaim_cost(owner, len(domains))

        report = KillReport(
            owner_name=owner.name,
            cycles=cost,
            pages=len(owner.page_list),
            threads=len(owner.thread_list),
            stacks=owner.usage.stacks,
            iobuf_locks=len(owner.iobuffer_locks),
            events=len(owner.event_list),
            semaphores=len(owner.semaphore_list),
            heap_allocations=len(owner.heap_allocations),
            domains_visited=len(domains),
        )

        # 1. Threads first: a runaway thread must stop consuming cycles
        #    before anything else is reclaimed.
        for thread in list(owner.thread_list):
            thread.kill()
        # 2. Events and semaphores (semaphore destruction wakes foreign
        #    waiters, as the paper requires).
        for event in list(owner.event_list):
            event.cancel()
        for sema in list(owner.semaphore_list):
            sema.destroy()
        # 3. IOBuffer locks and owned buffers.
        self.iobufs.reclaim_owner(owner)
        # 4. Heap allocations in every domain the owner crossed.
        for alloc in list(owner.heap_allocations):
            alloc.domain.heap_free(alloc)
        # 5. Raw pages.
        self.allocator.reclaim_all(owner)
        # 6. Mark dead and notify kernel-internal cleanups (demux bindings,
        #    domain crossing sets, experiment stats).
        owner.destroyed = True
        owner.run_destroy_callbacks()

        if record:
            self.kill_reports.append(report)
        if charge:
            self.cpu.post_interrupt(Interrupt(
                [(self.kernel_owner, cost)], label=f"kill {owner.name}"))
        # The watchdog hears about *forcible* kills only — the final sweep
        # of a graceful pathDestroy (record=False) is bookkeeping, not
        # containment.  Invariant listeners hear about every kill.
        if record and self.watchdog is not None:
            self.watchdog.note_kill(owner, report)
        for fn in self.kill_listeners:
            fn(owner, report)
        # Dead paths sever their internal reference cycles so the whole
        # island is reclaimed by refcount instead of lingering for the
        # cyclic garbage collector (see Path.sever).
        sever = getattr(owner, "sever", None)
        if sever is not None:
            sever()
        return report

    def destroy_domain(self, pd: ProtectionDomain) -> List[KillReport]:
        """Destroy a protection domain and every path crossing it.

        "If a protection domain is destroyed, all paths crossing that
        protection domain are also destroyed" — the paths could otherwise
        reference module state that no longer exists.
        """
        reports = []
        # Sorted by name: crossing_paths is an identity-hashed set, and
        # teardown order must not depend on memory layout (chaos runs are
        # replayed from seeds and compared run-to-run).
        for path in sorted(pd.crossing_paths, key=lambda p: p.name):
            if not path.destroyed:
                reports.append(self.kill_owner(path))
        reports.append(self.kill_owner(pd))
        if pd in self.domains:
            self.domains.remove(pd)
        return reports
