"""Physical memory: the page allocator.

The Escort kernel "allows memory allocation at the page level only" (paper
section 2.4); protection domains build heaps on top of pages and hand out
smaller objects, optionally charging them to paths that cross the domain.

Pages are tracked in their owner's ``page_list`` so that destroying an owner
can reclaim them by walking the list — the operation Table 2 prices.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.kernel.errors import InvalidOperationError, ResourceLimitError
from repro.kernel.owner import Owner

#: Page size of the simulated Alpha (8 KB, the 21064's page size).
PAGE_SIZE = 8192


class Page:
    """One physical page, owned by exactly one owner at a time."""

    _next_id = 1

    __slots__ = ("page_id", "owner")

    def __init__(self, owner: Owner):
        self.page_id = Page._next_id
        Page._next_id += 1
        self.owner = owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Page {self.page_id} owner={self.owner.name}>"


class PageAllocator:
    """Fixed-size pool of physical pages.

    ``total_pages`` defaults to 8192 pages = 64 MB, the class of machine the
    paper used.
    """

    def __init__(self, total_pages: int = 8192):
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        self.total_pages = total_pages
        self.allocated: Set[Page] = set()

    @property
    def free_pages(self) -> int:
        return self.total_pages - len(self.allocated)

    def alloc(self, owner: Owner, count: int = 1) -> list:
        """Allocate ``count`` pages charged to ``owner``.

        Raises :class:`ResourceLimitError` when the pool is exhausted —
        which is itself a detectable denial-of-service signal.
        """
        owner.check_alive()
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_pages:
            raise ResourceLimitError(
                f"out of pages: requested {count}, free {self.free_pages}")
        pages = []
        for _ in range(count):
            page = Page(owner)
            self.allocated.add(page)
            owner.page_list.add(page)
            owner.usage.pages += 1
            pages.append(page)
        return pages

    def free(self, page: Page) -> None:
        """Return one page to the pool."""
        if page not in self.allocated:
            raise InvalidOperationError(f"double free of {page!r}")
        self.allocated.discard(page)
        page.owner.page_list.discard(page)
        page.owner.usage.pages -= 1

    def transfer(self, page: Page, new_owner: Owner) -> None:
        """Re-charge a page to a different owner (used by domain heaps)."""
        new_owner.check_alive()
        if page not in self.allocated:
            raise InvalidOperationError(f"transfer of unallocated {page!r}")
        old = page.owner
        old.page_list.discard(page)
        old.usage.pages -= 1
        page.owner = new_owner
        new_owner.page_list.add(page)
        new_owner.usage.pages += 1

    def usage_of(self, owner: Owner) -> int:
        """Pages currently charged to ``owner`` (validates the counter)."""
        return len(owner.page_list)

    def reclaim_all(self, owner: Owner) -> int:
        """Free every page owned by ``owner``; returns the count freed.

        This is the page-walk portion of ``pathKill``.
        """
        pages = list(owner.page_list)
        for page in pages:
            self.free(page)
        return len(pages)
