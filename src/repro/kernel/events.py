"""Kernel events, semaphores, and the softclock (paper section 3.2).

*Events* let modules fork a new thread that starts executing a function
after a specified delay; the thread belongs to the event's owner.  Events
are dispatched by the *softclock*, which increments the system timer every
millisecond — the tick itself is charged to the kernel ("it is constant per
clock interrupt"), while the work done by a fired event is charged to the
event's owner.  This split is exactly the one Table 1 reports for the TCP
master event vs. the softclock rows.

*Semaphores* block threads — not only threads of the semaphore's owner.  If
a semaphore is destroyed, all blocked threads that do not belong to the
semaphore's owner are unblocked (they observe failure); the owner's own
threads are going away with the owner anyway.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.cpu import Block, Cycles, Interrupt
from repro.kernel.errors import InvalidOperationError
from repro.kernel.owner import Owner

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

EVENT_KMEM = 96
SEMAPHORE_KMEM = 64


class KernelEvent:
    """A deferred function call, executed in a fresh thread of ``owner``.

    ``fn`` is a zero-argument callable returning a thread-body generator.
    Periodic events reschedule themselves until cancelled.
    """

    _next_id = 1

    def __init__(self, kernel: "Kernel", owner: Owner,
                 fn: Callable[[], Generator], delay_ticks: int,
                 periodic: bool = False, name: str = ""):
        if delay_ticks < 0:
            raise ValueError("delay must be non-negative")
        self.event_id = KernelEvent._next_id
        KernelEvent._next_id += 1
        self.kernel = kernel
        self.owner = owner
        self.fn = fn
        self.delay_ticks = delay_ticks
        self.periodic = periodic
        self.name = name or f"event-{self.event_id}"
        self.cancelled = False
        self.fired = 0

        owner.check_alive()
        owner.event_list.add(self)
        owner.usage.events += 1
        owner.usage.kmem += EVENT_KMEM

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self.owner.event_list.discard(self)
        self.owner.usage.events -= 1
        self.owner.usage.kmem -= EVENT_KMEM
        # Let the softclock track its dead weight (lazy purge); stub
        # kernels in unit tests may have no softclock.
        softclock = getattr(self.kernel, "softclock", None)
        if softclock is not None:
            softclock.note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelEvent {self.name} owner={self.owner.name}>"


#: Lazy-purge thresholds, mirroring the simulator's compaction policy: a
#: purge costs O(n), so it only runs when the wheel is non-trivial and at
#: least half of it is cancelled dead weight.
PURGE_MIN_WHEEL = 64
PURGE_RATIO = 0.5


class Softclock:
    """The millisecond system timer and the event wheel it drives."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._wheel: List[Tuple[int, int, KernelEvent]] = []
        self._seq = 0
        self._running = False
        self.ticks = 0
        #: Cancelled events still sitting in the wheel (lazy deletion).
        self._cancelled_pending = 0
        #: O(n) rebuilds performed to shed cancelled dead weight.
        self.purges = 0
        #: Timer-skew knob (chaos injection): the next tick is scheduled
        #: ``period * period_scale`` ticks out.  1.0 = nominal clock.
        self.period_scale = 1.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False

    def add(self, event: KernelEvent) -> None:
        """Arm an event: it fires at the first tick past its delay."""
        due = self.kernel.sim.now + event.delay_ticks
        self._seq += 1
        heapq.heappush(self._wheel, (due, self._seq, event))

    def entries(self) -> List[Tuple[int, int, str]]:
        """Canonical view of the armed (non-cancelled) wheel entries.

        Structure-independent: callers (snapshot digests, tests) see the
        same sorted ``(due, seq, name)`` list whether or not a lazy purge
        has run, so purging never perturbs replay fingerprints.
        """
        return sorted((due, seq, ev.name)
                      for due, seq, ev in self._wheel if not ev.cancelled)

    def note_cancel(self) -> None:
        """A kernel event was cancelled; purge when dead weight dominates.

        Mass cancellations (a path kill cancelling a flood of half-open
        TCP timers) would otherwise leave the wheel mostly tombstones that
        every tick pops one by one.
        """
        self._cancelled_pending += 1
        wheel = self._wheel
        if (len(wheel) >= PURGE_MIN_WHEEL
                and self._cancelled_pending >= len(wheel) * PURGE_RATIO):
            wheel[:] = [e for e in wheel if not e[2].cancelled]
            heapq.heapify(wheel)
            self._cancelled_pending = 0
            self.purges += 1

    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        period = self.kernel.costs.softclock_period_ticks
        if self.period_scale != 1.0:
            period = max(1, int(period * self.period_scale))
        self.kernel.sim.schedule(period, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        now = self.kernel.sim.now
        due: List[KernelEvent] = []
        while self._wheel and self._wheel[0][0] <= now:
            _, _, ev = heapq.heappop(self._wheel)
            if ev.cancelled:
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
            elif not ev.owner.destroyed:
                due.append(ev)

        costs = self.kernel.costs
        charges = [(self.kernel.kernel_owner, costs.softclock_tick)]
        for ev in due:
            # Scheduling the event's thread is work done on the owner's
            # behalf.
            charges.append((ev.owner, costs.event_schedule))

        def fire() -> None:
            for ev in due:
                if ev.cancelled or ev.owner.destroyed:
                    continue
                ev.fired += 1
                self.kernel.spawn_thread(ev.owner, ev.fn(),
                                         name=f"{ev.name}#{ev.fired}")
                if ev.periodic and not ev.cancelled:
                    self.add(ev)
                else:
                    ev.cancel()
            if self._running:
                self._schedule_tick()

        self.kernel.cpu.post_interrupt(
            Interrupt(charges, on_complete=fire, label="softclock"))


class Semaphore:
    """A counting semaphore owned by a path or protection domain."""

    _next_id = 1

    def __init__(self, kernel: "Kernel", owner: Owner, count: int = 0,
                 name: str = ""):
        if count < 0:
            raise ValueError("initial count must be non-negative")
        self.sema_id = Semaphore._next_id
        Semaphore._next_id += 1
        self.kernel = kernel
        self.owner = owner
        self.count = count
        self.name = name or f"sema-{self.sema_id}"
        self.destroyed = False
        self._waiters: List = []  # SimThreads

        owner.check_alive()
        owner.semaphore_list.add(self)
        owner.usage.semaphores += 1
        owner.usage.kmem += SEMAPHORE_KMEM

    # -- waitable protocol (used via ``yield Block(sema)``) -------------
    def add_waiter(self, thread) -> None:
        self._waiters.append(thread)

    # ------------------------------------------------------------------
    def acquire(self) -> Generator:
        """Thread-body helper: ``ok = yield from sema.acquire()``.

        Returns True on success, False if the semaphore was destroyed while
        waiting.
        """
        yield Cycles(self.kernel.costs.semaphore_op + self.kernel.acct(1))
        while self.count == 0:
            if self.destroyed:
                return False
            yield Block(self)
        self.count -= 1
        return True

    def try_acquire(self) -> bool:
        """Non-blocking acquire (no cycle cost; callers charge)."""
        if self.destroyed or self.count == 0:
            return False
        self.count -= 1
        return True

    def release(self) -> None:
        """V operation: bump the count and wake one waiter."""
        if self.destroyed:
            raise InvalidOperationError(f"release on destroyed {self.name}")
        self.count += 1
        self._wake_one()

    def _wake_one(self) -> None:
        while self._waiters:
            t = self._waiters.pop(0)
            if t.alive:
                self.kernel.cpu.make_runnable(t)
                return

    def destroy(self) -> None:
        """Destroy the semaphore, waking all foreign waiters."""
        if self.destroyed:
            return
        self.destroyed = True
        self.owner.semaphore_list.discard(self)
        self.owner.usage.semaphores -= 1
        self.owner.usage.kmem -= SEMAPHORE_KMEM
        waiters, self._waiters = self._waiters, []
        for t in waiters:
            if t.alive:
                self.kernel.cpu.make_runnable(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Semaphore {self.name} count={self.count}>"
