"""The Escort kernel.

Escort extends Scout with two mechanisms (paper sections 2.3-2.4): resource
*accounting* — every resource is charged to an :class:`~repro.kernel.owner.Owner`,
which is either a path or a protection domain — and hardware-enforced
*protection domains* around the modules configured into the system.

This package implements the kernel objects behind Escort's 52 system calls:
owners, protection domains, memory pages and heaps, IOBuffers, threads,
events, semaphores, the softclock, the three schedulers the paper lists
(priority, proportional share, EDF), and the role-based ACL guarding the
kernel itself.
"""

from repro.kernel.errors import (
    EscortError,
    PermissionError_,
    ResourceLimitError,
    OwnerDestroyedError,
    InvalidOperationError,
)
from repro.kernel.owner import Owner, OwnerType, ResourceUsage
from repro.kernel.memory import Page, PageAllocator, PAGE_SIZE
from repro.kernel.domain import ProtectionDomain, HeapAllocation
from repro.kernel.iobuffer import IOBuffer, IOBufferCache
from repro.kernel.events import KernelEvent, Semaphore, Softclock
from repro.kernel.threads import EscortThread, ThreadPool
from repro.kernel.acl import AccessControlList, Role
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.syscalls import SystemCalls

__all__ = [
    "EscortError",
    "PermissionError_",
    "ResourceLimitError",
    "OwnerDestroyedError",
    "InvalidOperationError",
    "Owner",
    "OwnerType",
    "ResourceUsage",
    "Page",
    "PageAllocator",
    "PAGE_SIZE",
    "ProtectionDomain",
    "HeapAllocation",
    "IOBuffer",
    "IOBufferCache",
    "KernelEvent",
    "Semaphore",
    "Softclock",
    "EscortThread",
    "ThreadPool",
    "AccessControlList",
    "Role",
    "Kernel",
    "KernelConfig",
    "SystemCalls",
]
