"""Escort threads (paper section 3.2).

Threads are owned by a path or a protection domain; their lifetime is bound
by their owner's, and they cannot migrate between owners.  A thread owned by
a path carries one stack per protection domain it can execute in plus a
kernel-resident stack, so crossing back into a domain it has visited before
reuses the stack (the ICMP echo example in the paper).

Threads cannot be preempted gracefully — they can only be preempted if they
are destroyed immediately afterwards, which removes their owner too.  The
``handoff`` operation is the sanctioned way to move an execution context to
another owner: it creates a *new* thread belonging to the target owner.
Threads waiting (joined) on a thread whose owner is destroyed are woken.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, TYPE_CHECKING

from repro.sim.cpu import Block, Cycles, SimThread, YieldCPU
from repro.kernel.errors import OwnerDestroyedError
from repro.kernel.owner import Owner, OwnerType
from repro.kernel.queues import BoundedQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

THREAD_KMEM = 512
STACK_KMEM = 4096  # one stack's kernel bookkeeping + wired pages


class EscortThread:
    """Kernel wrapper around a :class:`~repro.sim.cpu.SimThread`.

    Tracks ownership, per-domain stacks, and join support.  The underlying
    SimThread charges cycles to the owner and enforces the owner's runaway
    limit.
    """

    __slots__ = ("kernel", "owner", "stack_count", "_joiners", "sim_thread")

    def __init__(self, kernel: "Kernel", owner: Owner, body: Generator,
                 name: str = "", stack_domains: int = 1):
        owner.check_alive()
        self.kernel = kernel
        self.owner = owner
        #: Number of stacks: one per crossable domain plus the kernel stack
        #: for path threads; a single stack for domain threads.
        self.stack_count = max(1, stack_domains)
        if owner.type == OwnerType.PATH:
            self.stack_count += 1  # the kernel-resident crossing stack
        self._joiners: List[SimThread] = []
        self.sim_thread = SimThread(body, owner, name=name)
        self.sim_thread.on_exit(self._on_exit)

        owner.thread_list.add(self)
        owner.usage.kmem += THREAD_KMEM + STACK_KMEM * self.stack_count
        owner.usage.stacks += self.stack_count

    # -- waitable protocol (join) ----------------------------------------
    def add_waiter(self, thread: SimThread) -> None:
        if not self.alive:
            self.kernel.cpu.make_runnable(thread)
            return
        self._joiners.append(thread)

    @property
    def alive(self) -> bool:
        return self.sim_thread.alive

    @property
    def name(self) -> str:
        return self.sim_thread.name

    def join(self) -> Generator:
        """Thread-body helper: block until this thread exits or is killed."""
        while self.alive:
            yield Block(self)

    def _on_exit(self, _sim_thread: SimThread) -> None:
        owner = self.owner
        if self in owner.thread_list:
            owner.thread_list.discard(self)
            owner.usage.kmem -= THREAD_KMEM + STACK_KMEM * self.stack_count
            owner.usage.stacks -= self.stack_count
        joiners, self._joiners = self._joiners, []
        for t in joiners:
            if t.alive:
                self.kernel.cpu.make_runnable(t)

    def kill(self) -> None:
        """Destroy the thread immediately (see CPU.kill_thread)."""
        self.kernel.cpu.kill_thread(self.sim_thread)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EscortThread {self.name} owner={self.owner.name}>"


class ThreadPool:
    """A path's pool of worker threads.

    Each worker blocks on the path's input queue and runs the path handler
    over each item.  The pool is sized at path creation; the paper's Path
    struct carries exactly this (``ThreadPool t``).
    """

    def __init__(self, kernel: "Kernel", owner: Owner, queue: BoundedQueue,
                 handler: Callable[[object], Generator], size: int = 1,
                 stack_domains: int = 1, name: str = ""):
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.kernel = kernel
        self.owner = owner
        self.queue = queue
        self.handler = handler
        self.name = name or f"{owner.name}-pool"
        self.threads: List[EscortThread] = []
        for i in range(size):
            body = self._worker()
            thread = kernel.spawn_thread(owner, body,
                                         name=f"{self.name}-{i}",
                                         stack_domains=stack_domains)
            self.threads.append(thread)

    def _worker(self) -> Generator:
        switch_cost = self.kernel.costs.thread_switch
        while True:
            item = yield from self.queue.get()
            if item is None:
                return  # queue closed: path going away
            yield Cycles(switch_cost + self.kernel.acct(1))
            yield from self.handler(item)
            # Well-behaved module code yields between work items: this is
            # what keeps a busy path's bursts far under the runaway limit
            # (only genuinely runaway code trips the 2 ms policy).
            yield YieldCPU()

    def shutdown(self) -> None:
        """Close the queue; workers drain and exit."""
        self.queue.close()
