"""Protection domains and their heaps.

A protection domain isolates one or more modules (paper section 2.3).  The
kernel hands out memory to domains at page granularity only; each domain
runs a *heap* that suballocates those pages and can charge the resulting
objects to paths that cross the domain — "the memory charged toward a path
is then deducted from the memory charged to the protection domain" (section
2.4).

Destroying a protection domain destroys every path that crosses it, because
paths may reference the domain's module state (e.g. IP's routing table).
Modules register *destructor functions* with paths; a destructor runs in the
module's domain on ``pathDestroy`` and transfers the charge for the memory
back to the domain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.kernel.errors import (
    InvalidOperationError,
    PermissionError_,
    ResourceLimitError,
)
from repro.kernel.memory import PAGE_SIZE, PageAllocator
from repro.kernel.owner import Owner, OwnerType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.path import Path


class HeapAllocation:
    """One object handed out by a domain heap."""

    _next_id = 1

    __slots__ = ("alloc_id", "domain", "nbytes", "charged_to", "label")

    def __init__(self, domain: "ProtectionDomain", nbytes: int,
                 charged_to: Owner, label: str = ""):
        self.alloc_id = HeapAllocation._next_id
        HeapAllocation._next_id += 1
        self.domain = domain
        self.nbytes = nbytes
        self.charged_to = charged_to
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HeapAllocation {self.label or self.alloc_id} "
                f"{self.nbytes}B -> {self.charged_to.name}>")


class ProtectionDomain(Owner):
    """A hardware-enforced protection domain.

    Owns pages (its heap arena), module global state, and domain-owned
    threads.  The ``privileged`` domain is the kernel's own; trusted modules
    may be configured into it.
    """

    def __init__(self, name: str, privileged: bool = False):
        super().__init__(OwnerType.PROTECTION_DOMAIN, name=name)
        self.privileged = privileged
        self.module_names: List[str] = []
        #: Paths currently crossing this domain (so destroying the domain
        #: can destroy them too).
        self.crossing_paths: Set["Path"] = set()
        # Heap bookkeeping: bytes backed by pages vs bytes handed out.
        self._heap_capacity = 0
        self._heap_used = 0
        self._allocations: Set[HeapAllocation] = set()

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------
    def heap_grow(self, allocator: PageAllocator, pages: int) -> None:
        """Acquire ``pages`` pages from the kernel to back the heap."""
        allocator.alloc(self, count=pages)
        self._heap_capacity += pages * PAGE_SIZE

    def heap_alloc(self, nbytes: int, charge_to: Optional[Owner] = None,
                   label: str = "",
                   allocator: Optional[PageAllocator] = None) -> HeapAllocation:
        """Allocate ``nbytes`` from this domain's heap.

        ``charge_to`` may be a path crossing this domain (the common case —
        per-connection state is charged to the connection's path) or
        ``None`` to charge the domain itself.  When the heap arena is full
        and ``allocator`` is provided, the heap grows by whole pages.
        """
        self.check_alive()
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        owner = charge_to if charge_to is not None else self
        owner.check_alive()
        if owner is not self and owner.type == OwnerType.PATH:
            if self not in getattr(owner, "domains_crossed", lambda: [self])():
                raise PermissionError_(
                    f"{owner.name} does not cross domain {self.name}")
        while self._heap_used + nbytes > self._heap_capacity:
            if allocator is None:
                raise ResourceLimitError(
                    f"heap of {self.name} exhausted "
                    f"({self._heap_used}/{self._heap_capacity} bytes)")
            grow = max(1, -(-nbytes // PAGE_SIZE))
            self.heap_grow(allocator, grow)
        self._heap_used += nbytes
        alloc = HeapAllocation(self, nbytes, owner, label=label)
        self._allocations.add(alloc)
        owner.heap_allocations.add(alloc)
        owner.usage.heap_bytes += nbytes
        if owner is not self:
            # Chargeback: deduct from the domain, charge the path.
            self.usage.heap_bytes -= nbytes
        return alloc

    def heap_free(self, alloc: HeapAllocation) -> None:
        """Return an allocation to the heap."""
        if alloc not in self._allocations:
            raise InvalidOperationError(f"double free of {alloc!r}")
        self._allocations.discard(alloc)
        owner = alloc.charged_to
        owner.heap_allocations.discard(alloc)
        owner.usage.heap_bytes -= alloc.nbytes
        if owner is not self:
            self.usage.heap_bytes += alloc.nbytes
        self._heap_used -= alloc.nbytes

    def heap_transfer(self, alloc: HeapAllocation, new_owner: Owner) -> None:
        """Move the charge for an allocation to a different owner.

        Used by module destructor functions: on ``pathDestroy`` the charge
        for path memory "transfers back to the protection domain".
        """
        new_owner.check_alive()
        old = alloc.charged_to
        if old is new_owner:
            return
        old.heap_allocations.discard(alloc)
        old.usage.heap_bytes -= alloc.nbytes
        if old is not self:
            self.usage.heap_bytes += alloc.nbytes
        alloc.charged_to = new_owner
        new_owner.heap_allocations.add(alloc)
        new_owner.usage.heap_bytes += alloc.nbytes
        if new_owner is not self:
            self.usage.heap_bytes -= alloc.nbytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def heap_capacity(self) -> int:
        return self._heap_capacity

    @property
    def heap_used(self) -> int:
        return self._heap_used

    def live_allocations(self) -> int:
        return len(self._allocations)

    def reclaim_path_allocations(self, path: Owner) -> int:
        """Free every heap object charged to ``path`` (pathKill's sweep).

        Returns the number of objects freed.  Unlike a destructor run, this
        does not give the module a chance to run cleanup code — that is the
        defining difference between ``pathKill`` and ``pathDestroy``.
        """
        allocs = [a for a in path.heap_allocations if a.domain is self]
        for alloc in allocs:
            self.heap_free(alloc)
        return len(allocs)
