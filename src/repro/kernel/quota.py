"""Resource quotas: the *detection* step for memory-shaped attacks.

The paper's three-step recipe is accounting → detection → containment.
The runaway policy detects CPU abuse; this module supplies the analogous
detector for memory: per-owner limits on pages, kernel memory, heap bytes,
events and semaphores, checked against the Owner counters the accounting
mechanism already maintains.  Exceeding a limit triggers the kernel's
violation handler — by default ``kill_owner``, the same containment step.

Checks are *pull-based*: the kernel consults :func:`check_quota` after the
operations that grow usage (page allocation, heap allocation, IOBuffer
allocation, event/semaphore creation).  This mirrors Escort, where "many
policies require that the owner passed as argument to the allocation
function must match the owner of the current thread" — the allocation path
is where policy meets accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.kernel.owner import Owner

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel

#: Cycles' worth of stride-pass penalty applied by a throttle: the owner
#: behaves as if it had already burned this much CPU, so the proportional
#: scheduler naturally runs everyone else first for a while.
THROTTLE_PENALTY_CYCLES = 100_000
#: Divisor applied to a throttled owner's ticket allocation.
THROTTLE_TICKET_DIVISOR = 4


@dataclass
class ResourceQuota:
    """Per-owner limits; ``None`` means unlimited."""

    max_pages: Optional[int] = None
    max_kmem: Optional[int] = None
    max_heap_bytes: Optional[int] = None
    max_events: Optional[int] = None
    max_semaphores: Optional[int] = None

    def violation(self, owner: Owner) -> Optional[str]:
        """The first limit ``owner`` exceeds, or None."""
        usage = owner.usage
        if self.max_pages is not None and usage.pages > self.max_pages:
            return f"pages {usage.pages} > {self.max_pages}"
        if self.max_kmem is not None and usage.kmem > self.max_kmem:
            return f"kmem {usage.kmem} > {self.max_kmem}"
        if self.max_heap_bytes is not None \
                and usage.heap_bytes > self.max_heap_bytes:
            return f"heap {usage.heap_bytes} > {self.max_heap_bytes}"
        if self.max_events is not None and usage.events > self.max_events:
            return f"events {usage.events} > {self.max_events}"
        if self.max_semaphores is not None \
                and usage.semaphores > self.max_semaphores:
            return f"semaphores {usage.semaphores} > {self.max_semaphores}"
        return None


class QuotaEnforcer:
    """Attaches quotas to owners and reacts to violations."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.violations: List[tuple] = []  # (owner_name, reason)
        self.throttles: List[tuple] = []   # (owner_name, reason)
        #: "kill" destroys violators outright; "throttle" first demotes
        #: their scheduler share and only kills repeat violators — the
        #: non-lethal rung the adaptive defense controller escalates
        #: through before containment.
        self.mode: str = "kill"
        #: What to do with a violator; default is mode-directed
        #: enforcement (throttle-then-kill or straight kill).
        self.on_violation: Callable[[Owner, str], None] = self._enforce

    def set_mode(self, mode: str) -> None:
        if mode not in ("kill", "throttle"):
            raise ValueError(f"unknown quota mode {mode!r}")
        self.mode = mode

    def _enforce(self, owner: Owner, reason: str) -> None:
        if self.mode == "throttle" and self.throttle(owner, reason):
            return
        self._kill(owner, reason)

    def _kill(self, owner: Owner, reason: str) -> None:
        if not owner.destroyed:
            self.kernel.kill_owner(owner)

    def throttle(self, owner: Owner, reason: str) -> bool:
        """Demote ``owner``'s scheduler share instead of killing it.

        Returns False when the owner is already gone or was throttled
        before (a second violation while throttled means the demotion did
        not contain it — the caller falls through to the kill rung).
        """
        if owner.destroyed or owner.policy_state.get("throttled"):
            return False
        from repro.kernel.sched.proportional import STRIDE1
        owner.policy_state["throttled"] = True
        sched = owner.sched
        sched.tickets = max(1, sched.tickets // THROTTLE_TICKET_DIVISOR)
        sched.stride_pass += THROTTLE_PENALTY_CYCLES * STRIDE1
        self.throttles.append((owner.name, reason))
        return True

    def set_quota(self, owner: Owner, quota: ResourceQuota) -> None:
        owner.policy_state["quota"] = quota

    def check(self, owner: Owner) -> bool:
        """Check ``owner`` against its quota; True if it survived.

        Safe to call from any kernel context; destruction of the current
        thread's owner is exactly the preempt-by-destroying semantics the
        thread model already supports.
        """
        quota = owner.policy_state.get("quota")
        if quota is None or owner.destroyed:
            return True
        reason = quota.violation(owner)
        if reason is None:
            return True
        self.violations.append((owner.name, reason))
        self.on_violation(owner, reason)
        return not owner.destroyed

    def sweep(self, owners) -> int:
        """Check a collection of owners; returns the number killed.

        Used by the periodic enforcement event (memory can also grow via
        charges made *to* an owner from other contexts, e.g. IOBuffer
        association, so a background sweep closes that gap).
        """
        killed = 0
        for owner in list(owners):
            if not self.check(owner):
                killed += 1
        return killed
