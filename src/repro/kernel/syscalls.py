"""The kernel system-call surface.

"Escort currently implements 52 system calls that provide access to the
following kernel objects: paths, IObuffers, threads, events, semaphores,
memory pages, devices, and the console" (paper section 3).  This module is
that surface: a facade over the kernel objects, with the ACL check (policy
enforcement level 1) applied at every entry point, and the calling
environment (owner + current protection domain) passed explicitly — the
paper's calling convention for multiply-instantiated modules.

Most module code in this reproduction calls the kernel objects directly
(the modules are trusted in-process code); the facade exists for the same
reason Escort's trap table existed — it is the *enforced* boundary, and the
tests drive it to verify the ACL really guards each object class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.kernel.domain import ProtectionDomain
from repro.kernel.errors import InvalidOperationError
from repro.kernel.kernel import Kernel
from repro.kernel.owner import Owner


class SystemCalls:
    """The trap table: every kernel service, ACL-checked.

    Each method takes the *calling environment* — the owner on whose
    behalf the call is made and the protection domain the caller is
    executing in — as its first two arguments.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.calls_made: Dict[str, int] = {}
        self.console_log: List[str] = []
        #: Device registry for device_open/device_ops.
        self._devices: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _enter(self, op: str, owner: Optional[Owner],
               domain: Optional[ProtectionDomain]) -> None:
        self.kernel.acl.check(op, owner, domain)
        self.calls_made[op] = self.calls_made.get(op, 0) + 1

    # ------------------------------------------------------------------
    # Paths (3)
    # ------------------------------------------------------------------
    def path_create(self, owner, domain, path_manager, attrs,
                    start_module: str, **kwargs) -> Generator:
        self._enter("path_create", owner, domain)
        result = yield from path_manager.path_create(attrs, start_module,
                                                     **kwargs)
        return result

    def path_destroy(self, owner, domain, path_manager, path) -> Generator:
        self._enter("path_destroy", owner, domain)
        yield from path_manager.path_destroy(path)

    def path_kill(self, owner, domain, path_manager, path):
        self._enter("path_kill", owner, domain)
        return path_manager.path_kill(path)

    # ------------------------------------------------------------------
    # IOBuffers (5)
    # ------------------------------------------------------------------
    def iobuf_alloc(self, owner, domain, nbytes: int, buf_owner,
                    read_pds=()):
        self._enter("iobuf_alloc", owner, domain)
        return self.kernel.iobufs.alloc(nbytes, buf_owner, domain,
                                        read_pds=read_pds)

    def iobuf_lock(self, owner, domain, buf, lock_owner):
        self._enter("iobuf_lock", owner, domain)
        return self.kernel.iobufs.lock(buf, lock_owner)

    def iobuf_unlock(self, owner, domain, buf, lock_owner):
        self._enter("iobuf_unlock", owner, domain)
        self.kernel.iobufs.unlock(buf, lock_owner)

    def iobuf_associate(self, owner, domain, buf, second_owner,
                        read_pds=()):
        self._enter("iobuf_associate", owner, domain)
        return self.kernel.iobufs.associate(buf, second_owner, domain,
                                            read_pds=read_pds)

    def iobuf_query(self, owner, domain, buf) -> Tuple[int, int]:
        self._enter("iobuf_lock", owner, domain)  # read access suffices
        return buf.nbytes, buf.refcount

    # ------------------------------------------------------------------
    # Threads (4)
    # ------------------------------------------------------------------
    def thread_spawn(self, owner, domain, thread_owner, body,
                     name: str = "", stack_domains: int = 1):
        self._enter("thread_spawn", owner, domain)
        return self.kernel.spawn_thread(thread_owner, body, name=name,
                                        stack_domains=stack_domains)

    def thread_handoff(self, owner, domain, target_owner, body,
                       name: str = ""):
        """threadHandoff: a new thread belonging to the target owner —
        the sanctioned substitute for migrating a thread between owners."""
        self._enter("thread_handoff", owner, domain)
        return self.kernel.spawn_thread(target_owner, body,
                                        name=name or "handoff")

    def thread_stop(self, owner, domain, thread):
        self._enter("thread_stop", owner, domain)
        thread.kill()

    def thread_yield(self, owner, domain):
        self._enter("thread_yield", owner, domain)
        from repro.sim.cpu import YieldCPU
        return YieldCPU()

    # ------------------------------------------------------------------
    # Events (2) and semaphores (2)
    # ------------------------------------------------------------------
    def event_create(self, owner, domain, event_owner, fn, delay_ticks,
                     periodic: bool = False, name: str = ""):
        self._enter("event_create", owner, domain)
        return self.kernel.create_event(event_owner, fn, delay_ticks,
                                        periodic=periodic, name=name)

    def event_cancel(self, owner, domain, event):
        self._enter("event_cancel", owner, domain)
        event.cancel()

    def semaphore_create(self, owner, domain, sema_owner, count: int = 0,
                         name: str = ""):
        self._enter("semaphore_create", owner, domain)
        return self.kernel.create_semaphore(sema_owner, count=count,
                                            name=name)

    def semaphore_destroy(self, owner, domain, sema):
        self._enter("semaphore_destroy", owner, domain)
        sema.destroy()

    # ------------------------------------------------------------------
    # Memory pages (2)
    # ------------------------------------------------------------------
    def page_alloc(self, owner, domain, page_owner, count: int = 1):
        self._enter("page_alloc", owner, domain)
        return self.kernel.allocator.alloc(page_owner, count=count)

    def page_free(self, owner, domain, page):
        self._enter("page_free", owner, domain)
        self.kernel.allocator.free(page)

    # ------------------------------------------------------------------
    # Devices (2) and console (1)
    # ------------------------------------------------------------------
    def device_register(self, name: str, device: Any) -> None:
        """Configuration-time (not a syscall): expose a device."""
        self._devices[name] = device

    def device_open(self, owner, domain, name: str) -> Any:
        self._enter("device_access", owner, domain)
        try:
            return self._devices[name]
        except KeyError:
            raise InvalidOperationError(f"no device {name!r}") from None

    def console_write(self, owner, domain, text: str) -> None:
        self._enter("console_write", owner, domain)
        self.console_log.append(text)

    # ------------------------------------------------------------------
    def total_calls(self) -> int:
        return sum(self.calls_made.values())
