"""IOBuffers: cross-domain data transfer (paper section 3.3).

IOBuffers are Escort's fbuf-like mechanism for moving blocks of data between
protection domains without copying.  The kernel rules implemented here,
straight from the paper:

* Buffers are always allocated as a multiple of the page size.
* The owner must be the current protection domain or a path crossing it.
  Domain-owned buffers map read/write in that domain only; path-owned
  buffers map read/write in the allocating domain and read-only in the
  other domains along the path, up to an optional *termination domain*.
* The identity of the domain allowed to write is stored in the buffer
  (``writer_pd`` — "the first long word" in the paper).
* Locking increments the reference count and revokes *all* write access, so
  a consumer can validate the contents once and trust them afterwards.
* Unlocking decrements the count; at zero the buffer is freed or parked in
  the buffer cache.  A later allocation whose read mappings match a cached
  buffer reuses it — only the allocating domain's mapping changes, and the
  buffer does not need to be zeroed.
* A buffer can be *associated* with a second owner (e.g. a web cache): the
  second owner is fully charged for the buffer and receives a lock, so the
  first owner releasing it can never strand the data underfunded.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.kernel.domain import ProtectionDomain
from repro.kernel.errors import InvalidOperationError, PermissionError_
from repro.kernel.memory import PAGE_SIZE, PageAllocator
from repro.kernel.owner import Owner, OwnerType

#: Nominal kernel-memory footprint of the IOBuffer descriptor itself,
#: charged as kmem to the buffer's owner.
IOBUF_KMEM = 128
LOCK_KMEM = 48


class IOBufferLock:
    """One kernel lock on an IOBuffer, tracked in its owner's lock list."""

    __slots__ = ("buffer", "owner")

    def __init__(self, buffer: "IOBuffer", owner: Owner):
        self.buffer = buffer
        self.owner = owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IOBufferLock buf={self.buffer.buf_id} owner={self.owner.name}>"


class IOBuffer:
    """A page-aligned kernel buffer mappable into several domains."""

    __slots__ = ("buf_id", "nbytes", "owner", "page_objs", "writer_pd",
                 "mappings", "locks", "charged", "cached", "freed",
                 "payload")

    _next_id = 1

    def __init__(self, nbytes: int, owner: Owner):
        if nbytes <= 0 or nbytes % PAGE_SIZE != 0:
            raise InvalidOperationError(
                f"IOBuffer size must be a positive page multiple, got {nbytes}")
        self.buf_id = IOBuffer._next_id
        IOBuffer._next_id += 1
        self.nbytes = nbytes
        self.owner = owner
        #: The physical pages backing this buffer.
        self.page_objs: List = []
        #: Domain currently allowed to write (None once locked).
        self.writer_pd: Optional[ProtectionDomain] = None
        #: pd -> "r" | "rw"
        self.mappings: Dict[ProtectionDomain, str] = {}
        self.locks: Dict[Owner, IOBufferLock] = {}
        #: Owners charged for this buffer (primary plus associated).
        self.charged: Set[Owner] = set()
        self.cached = False
        self.freed = False
        #: Opaque payload carried by the buffer (simulation stand-in for
        #: the actual bytes).
        self.payload: object = None

    @property
    def refcount(self) -> int:
        return len(self.locks)

    @property
    def pages(self) -> int:
        return self.nbytes // PAGE_SIZE

    def readable_in(self, pd: ProtectionDomain) -> bool:
        return pd in self.mappings

    def writable_in(self, pd: ProtectionDomain) -> bool:
        return self.writer_pd is pd and self.mappings.get(pd) == "rw"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<IOBuffer {self.buf_id} {self.nbytes}B owner={self.owner.name} "
                f"refs={self.refcount}>")


def pages_for(nbytes: int) -> int:
    """Pages needed to hold ``nbytes`` (IOBuffers round up to pages)."""
    return max(1, -(-nbytes // PAGE_SIZE))


class IOBufferCache:
    """The kernel's IOBuffer manager, including the reuse cache."""

    def __init__(self, allocator: PageAllocator, kernel_owner: Owner,
                 cache_capacity_pages: int = 512):
        self.allocator = allocator
        self.kernel_owner = kernel_owner
        self.cache_capacity_pages = cache_capacity_pages
        self._cache: Dict[Tuple[int, FrozenSet[ProtectionDomain]],
                          List[IOBuffer]] = {}
        # Interned single-domain read sets: the overwhelmingly common
        # alloc() call passes no extra read domains, and building a fresh
        # frozenset per packet shows up in profiles.
        self._solo_sets: Dict[ProtectionDomain,
                              FrozenSet[ProtectionDomain]] = {}
        self._cached_pages = 0
        self.stats_allocs = 0
        self.stats_cache_hits = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, owner: Owner, current_pd: ProtectionDomain,
              read_pds: Iterable[ProtectionDomain] = ()) -> Tuple[IOBuffer, bool]:
        """Allocate (or reuse) a buffer.  Returns ``(buffer, cache_hit)``.

        ``owner`` must be ``current_pd`` itself or a path crossing it.
        ``read_pds`` are the additional domains that get read-only mappings
        (the caller derives them from the path and any termination domain).
        """
        nbytes = pages_for(nbytes) * PAGE_SIZE
        self._validate_owner(owner, current_pd)
        if read_pds:
            read_set = frozenset(read_pds) | {current_pd}
        else:
            read_set = self._solo_sets.get(current_pd)
            if read_set is None:
                read_set = frozenset((current_pd,))
                self._solo_sets[current_pd] = read_set
        self.stats_allocs += 1

        key = (nbytes, read_set)
        bucket = self._cache.get(key)
        if bucket:
            buf = bucket.pop()
            if not bucket:
                del self._cache[key]
            self._cached_pages -= buf.pages
            self.stats_cache_hits += 1
            buf.cached = False
            # Re-charge pages from the cache's holder to the new owner.
            self._charge_pages(buf, owner)
            buf.owner = owner
            buf.charged = {owner}
            buf.mappings[current_pd] = "rw"
            buf.writer_pd = current_pd
            buf.payload = None
            return buf, True

        buf = IOBuffer(nbytes, owner)
        buf.page_objs = self.allocator.alloc(owner, count=buf.pages)
        owner.usage.kmem += IOBUF_KMEM
        buf.charged.add(owner)
        buf.writer_pd = current_pd
        buf.mappings = {pd: "r" for pd in read_set}
        buf.mappings[current_pd] = "rw"
        return buf, False

    def _validate_owner(self, owner: Owner, current_pd: ProtectionDomain) -> None:
        owner.check_alive()
        if owner is current_pd:
            return
        if owner.type == OwnerType.PATH:
            crossed = getattr(owner, "domains_crossed", None)
            if crossed is not None and current_pd not in crossed():
                raise PermissionError_(
                    f"{owner.name} does not cross {current_pd.name}")
            return
        if owner.type in (OwnerType.KERNEL,):
            return
        raise PermissionError_(
            f"IOBuffer owner must be the current domain or a crossing path, "
            f"got {owner.name}")

    def _charge_pages(self, buf: IOBuffer, owner: Owner) -> None:
        """Move the page charges of ``buf`` onto ``owner``."""
        for page in buf.page_objs:
            self.allocator.transfer(page, owner)
        buf.owner.usage.kmem -= IOBUF_KMEM
        owner.usage.kmem += IOBUF_KMEM

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    def lock(self, buf: IOBuffer, owner: Owner) -> IOBufferLock:
        """Lock ``buf`` for ``owner``: bump refcount, revoke write access.

        At most one kernel lock per owner — the message library multiplexes
        user-level references over it.
        """
        if buf.freed:
            raise InvalidOperationError("lock of freed IOBuffer")
        owner.check_alive()
        if owner in buf.locks:
            raise InvalidOperationError(
                f"{owner.name} already holds a kernel lock on buf {buf.buf_id}")
        # Locking removes all write privileges (writer id set to zero).
        if buf.writer_pd is not None:
            buf.mappings[buf.writer_pd] = "r"
            buf.writer_pd = None
        lock = IOBufferLock(buf, owner)
        buf.locks[owner] = lock
        owner.iobuffer_locks.add(lock)
        owner.usage.kmem += LOCK_KMEM
        return lock

    def unlock(self, buf: IOBuffer, owner: Owner) -> None:
        """Drop ``owner``'s lock; free or cache the buffer at refcount 0."""
        lock = buf.locks.pop(owner, None)
        if lock is None:
            raise InvalidOperationError(
                f"{owner.name} holds no lock on buf {buf.buf_id}")
        owner.iobuffer_locks.discard(lock)
        owner.usage.kmem -= LOCK_KMEM
        if owner is not buf.owner and owner in buf.charged:
            # A second (associated) owner is charged only while it holds
            # its lock — the charge was its claim on the buffer.
            owner.usage.pages -= buf.pages
            owner.usage.kmem -= IOBUF_KMEM
            buf.charged.discard(owner)
        if buf.refcount == 0:
            self._retire(buf)

    # ------------------------------------------------------------------
    # Second-owner association
    # ------------------------------------------------------------------
    def associate(self, buf: IOBuffer, second_owner: Owner,
                  current_pd: ProtectionDomain,
                  read_pds: Iterable[ProtectionDomain] = ()) -> IOBufferLock:
        """Associate ``buf`` with a second owner (web-cache pattern).

        Adds the requested read mappings, fully charges the second owner for
        the buffer's pages and descriptor, and takes a lock on its behalf.
        """
        if buf.freed:
            raise InvalidOperationError("associate on freed IOBuffer")
        self._validate_owner(second_owner, current_pd)
        for pd in read_pds:
            buf.mappings.setdefault(pd, "r")
        buf.mappings.setdefault(current_pd, "r")
        # Full charge: the second owner must be able to stand alone if the
        # original owner drops its interest.
        second_owner.usage.pages += buf.pages
        second_owner.usage.kmem += IOBUF_KMEM
        buf.charged.add(second_owner)
        return self.lock(buf, second_owner)

    # ------------------------------------------------------------------
    # Retirement, cache, reclamation
    # ------------------------------------------------------------------
    def _retire(self, buf: IOBuffer) -> None:
        """Refcount hit zero: cache the buffer if there is room, else free."""
        # Remove write mappings (paper: unlock removes all write mappings).
        if buf.writer_pd is not None:
            buf.mappings[buf.writer_pd] = "r"
            buf.writer_pd = None
        self._uncharge_associates(buf)
        if (self._cached_pages + buf.pages <= self.cache_capacity_pages
                and not buf.owner.destroyed):
            self._charge_pages(buf, self.kernel_owner)
            buf.owner = self.kernel_owner
            buf.charged = {self.kernel_owner}
            buf.cached = True
            key = (buf.nbytes, frozenset(buf.mappings))
            self._cache.setdefault(key, []).append(buf)
            self._cached_pages += buf.pages
            return
        self._free(buf)

    def _uncharge_associates(self, buf: IOBuffer) -> None:
        for owner in list(buf.charged):
            if owner is buf.owner:
                continue
            owner.usage.pages -= buf.pages
            owner.usage.kmem -= IOBUF_KMEM
            buf.charged.discard(owner)

    def _free(self, buf: IOBuffer) -> None:
        if buf.freed:
            return
        self._uncharge_associates(buf)
        for page in buf.page_objs:
            self.allocator.free(page)
        buf.page_objs = []
        buf.owner.usage.kmem -= IOBUF_KMEM
        buf.mappings.clear()
        buf.freed = True

    def reclaim_owner(self, owner: Owner) -> int:
        """Drop every lock ``owner`` holds and release its buffers.

        Part of ``pathKill``: returns the number of locks released so the
        cost model can charge per object walked.
        """
        count = 0
        for lock in list(owner.iobuffer_locks):
            buf = lock.buffer
            buf.locks.pop(owner, None)
            owner.iobuffer_locks.discard(lock)
            owner.usage.kmem -= LOCK_KMEM
            count += 1
            if buf.owner is owner:
                # The dying owner holds the primary charge: the buffer goes
                # away with it (device buffers, half-built messages...).
                self._free(buf)
            elif buf.refcount == 0:
                self._retire(buf)
            elif owner in buf.charged:
                owner.usage.pages -= buf.pages
                owner.usage.kmem -= IOBUF_KMEM
                buf.charged.discard(owner)
        return count

    @property
    def cached_buffers(self) -> int:
        return sum(len(v) for v in self._cache.values())
