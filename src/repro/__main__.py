"""``python -m repro`` — a guided tour of the reproduction.

Prints the system inventory, boots one of each server configuration for a
quick sanity run, and points at the longer drivers.
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    """Run the guided tour; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro [--smoke]")
        return 0

    from repro import __version__
    from repro.experiments.harness import Testbed

    print(f"Escort reproduction v{__version__}")
    print("Paper: Spatscheck & Peterson, 'Defending Against Denial of "
          "Service Attacks in Scout', OSDI 1999\n")

    print("Sanity run: 4 clients fetching /doc-1k for 0.5 s on each "
          "configuration...")
    for name in ("scout", "accounting", "accounting_pd", "linux"):
        bed = Testbed.by_name(name)
        bed.add_clients(4, document="/doc-1k")
        result = bed.run(warmup_s=0.3, measure_s=0.5)
        print(f"  {name:15s} {result.connections_per_second:6.0f} conn/s "
              f"({result.client_completions} completed, "
              f"{result.client_failures} failed)")

    print("\nNext steps:")
    print("  python examples/quickstart.py          accounting walkthrough")
    print("  python examples/reproduce_paper.py     every table and figure")
    print("  pytest benchmarks/ --benchmark-only    assertions vs the paper")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
