"""``python -m repro`` — a guided tour of the reproduction.

Prints the system inventory, boots one of each server configuration for a
quick sanity run, and points at the longer drivers.

``python -m repro chaos`` runs the chaos scenarios (see ``--list``).
"""

from __future__ import annotations

import argparse
import sys


def chaos_main(argv) -> int:
    """``python -m repro chaos [--scenario NAME] [--seed N] [--list]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run seeded chaos scenarios against the Escort server.")
    parser.add_argument("--scenario", "-s", default=None,
                        help="scenario name (default: run every scenario)")
    parser.add_argument("--seed", "-n", type=int, default=1,
                        help="fault-schedule seed (default 1); the same "
                             "scenario+seed always reproduces the same run")
    parser.add_argument("--list", "-l", action="store_true",
                        dest="list_them", help="list scenarios and exit")
    args = parser.parse_args(argv)

    from repro.chaos import list_scenarios, run_scenario

    if args.list_them:
        for name, description in list_scenarios():
            print(f"{name}")
            print(f"    {description}")
        return 0

    names = ([args.scenario] if args.scenario
             else [n for n, _ in list_scenarios()])
    failed = 0
    for name in names:
        try:
            report = run_scenario(name, seed=args.seed)
        except KeyError as exc:
            print(exc.args[0])
            return 2
        print(report.summary())
        print()
        if not report.ok:
            failed += 1
    return 1 if failed else 0


def main(argv=None) -> int:
    """Run the guided tour; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro [--smoke]")
        print("       python -m repro chaos [--scenario NAME] [--seed N] "
              "[--list]")
        return 0

    from repro import __version__
    from repro.experiments.harness import Testbed

    print(f"Escort reproduction v{__version__}")
    print("Paper: Spatscheck & Peterson, 'Defending Against Denial of "
          "Service Attacks in Scout', OSDI 1999\n")

    print("Sanity run: 4 clients fetching /doc-1k for 0.5 s on each "
          "configuration...")
    for name in ("scout", "accounting", "accounting_pd", "linux"):
        bed = Testbed.by_name(name)
        bed.add_clients(4, document="/doc-1k")
        result = bed.run(warmup_s=0.3, measure_s=0.5)
        print(f"  {name:15s} {result.connections_per_second:6.0f} conn/s "
              f"({result.client_completions} completed, "
              f"{result.client_failures} failed)")

    print("\nNext steps:")
    print("  python examples/quickstart.py          accounting walkthrough")
    print("  python examples/reproduce_paper.py     every table and figure")
    print("  pytest benchmarks/ --benchmark-only    assertions vs the paper")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
