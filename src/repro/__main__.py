"""``python -m repro`` — a guided tour of the reproduction.

Prints the system inventory, boots one of each server configuration for a
quick sanity run, and points at the longer drivers.

Subcommands:

* ``chaos`` — run the seeded chaos scenarios (``--list``), optionally
  writing whole-machine checkpoints (``--checkpoint-every``) and resuming
  an interrupted run (``--resume``);
* ``experiment`` — one parameterized figure-style measurement cell, with
  the same checkpoint/resume support;
* ``figure9`` — the SYN-flood figure, with a per-cell resume cache
  (``--checkpoint-dir``) so a crashed sweep restarts where it died;
* ``record`` / ``replay`` — deterministic-replay tooling: record a run's
  event-level fingerprint journal, then re-execute and pinpoint the first
  divergent event (exit 1 on divergence).
"""

from __future__ import annotations

import argparse
import sys


def _print_checkpoint_error(exc) -> int:
    print(f"error: {exc}", file=sys.stderr)
    return 2


def chaos_main(argv) -> int:
    """``python -m repro chaos [--scenario NAME] [--seed N] [--list] ...``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run seeded chaos scenarios against the Escort server.")
    parser.add_argument("--scenario", "-s", default=None,
                        help="scenario name (default: run every scenario)")
    parser.add_argument("--seed", "-n", type=int, default=1,
                        help="fault-schedule seed (default 1); the same "
                             "scenario+seed always reproduces the same run")
    parser.add_argument("--list", "-l", action="store_true",
                        dest="list_them", help="list scenarios and exit")
    parser.add_argument("--rollback", action="store_true",
                        help="arm the watchdog's snapshot/rollback rung")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S",
                        help="write a whole-machine checkpoint every S "
                             "simulated seconds")
    parser.add_argument("--checkpoint-dir", default="checkpoints",
                        help="directory for checkpoint files "
                             "(default: ./checkpoints)")
    parser.add_argument("--resume", default=None, metavar="CKPT",
                        help="resume a previously checkpointed run "
                             "(digest-verified) instead of starting fresh")
    args = parser.parse_args(argv)

    from repro.chaos import list_scenarios, run_scenario
    from repro.snapshot import CheckpointError, RunDriver

    if args.list_them:
        for name, description in list_scenarios():
            print(f"{name}")
            print(f"    {description}")
        return 0

    if args.resume:
        try:
            driver, payload = RunDriver.resume(args.resume)
        except CheckpointError as exc:
            return _print_checkpoint_error(exc)
        print(f"resumed {payload['spec']} at tick {payload['tick']} "
              f"({payload['events']} events); continuing...")
        if args.checkpoint_every:
            report, _ = driver.run_with_checkpoints(
                args.checkpoint_every, args.checkpoint_dir, "chaos")
        else:
            report = driver.run_all()
        print(report.summary())
        return 0 if report.ok else 1

    names = ([args.scenario] if args.scenario
             else [n for n, _ in list_scenarios()])
    failed = 0
    for name in names:
        try:
            if args.checkpoint_every:
                from repro.chaos import ChaosRun
                if name not in dict(list_scenarios()):
                    raise KeyError(f"unknown scenario {name!r}")
                driver = RunDriver(ChaosRun(name, args.seed,
                                            use_rollback=args.rollback))
                report, written = driver.run_with_checkpoints(
                    args.checkpoint_every, args.checkpoint_dir,
                    f"chaos-{name}-{args.seed}")
                print(f"({len(written)} checkpoint(s) in "
                      f"{args.checkpoint_dir})")
            else:
                report = run_scenario(name, seed=args.seed,
                                      use_rollback=args.rollback)
        except KeyError as exc:
            print(exc.args[0])
            return 2
        print(report.summary())
        print()
        if not report.ok:
            failed += 1
    return 1 if failed else 0


def experiment_main(argv) -> int:
    """One parameterized measurement cell with checkpoint/resume."""
    parser = argparse.ArgumentParser(
        prog="python -m repro experiment",
        description="Run one figure-style measurement (e.g. a Figure-9 "
                    "SYN-flood cell) with whole-machine checkpoints.")
    parser.add_argument("--config", default="accounting",
                        choices=["scout", "accounting", "accounting_pd"])
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--document", default="/doc-1k")
    parser.add_argument("--syn-rate", type=int, default=0,
                        help="SYN flood rate/s (0 = no attack)")
    parser.add_argument("--untrusted-cap", type=int, default=16)
    parser.add_argument("--cgi-attackers", type=int, default=0)
    parser.add_argument("--qos", action="store_true")
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--measure", type=float, default=5.0)
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S")
    parser.add_argument("--checkpoint-dir", default="checkpoints")
    parser.add_argument("--resume", default=None, metavar="CKPT")
    args = parser.parse_args(argv)

    from repro.snapshot import CheckpointError, ExperimentRun, RunDriver

    try:
        if args.resume:
            driver, payload = RunDriver.resume(args.resume)
            print(f"resumed at tick {payload['tick']} "
                  f"({payload['events']} events, digest verified)")
        else:
            run = ExperimentRun(
                args.config, clients=args.clients, document=args.document,
                syn_rate=args.syn_rate, untrusted_cap=args.untrusted_cap,
                cgi_attackers=args.cgi_attackers, qos=args.qos,
                warmup_s=args.warmup, measure_s=args.measure)
            driver = RunDriver(run)
        if args.checkpoint_every:
            result, written = driver.run_with_checkpoints(
                args.checkpoint_every, args.checkpoint_dir, "experiment")
            print(f"({len(written)} checkpoint(s) in {args.checkpoint_dir})")
        else:
            result = driver.run_all()
    except CheckpointError as exc:
        return _print_checkpoint_error(exc)

    print(f"{result.connections_per_second:.1f} conn/s "
          f"({result.client_completions} completed, "
          f"{result.client_failures} failed)")
    if result.syn_sent:
        print(f"SYN flood: {result.syn_dropped_at_demux}/{result.syn_sent} "
              f"dropped at demux")
    return 0


def figure9_main(argv) -> int:
    """The Figure-9 sweep with a crash-resumable per-cell cache."""
    parser = argparse.ArgumentParser(
        prog="python -m repro figure9",
        description="Figure 9: best-effort throughput under a SYN flood.")
    parser.add_argument("--clients", default="16,64",
                        help="comma-separated client counts")
    parser.add_argument("--configs", default="accounting,accounting_pd")
    parser.add_argument("--document", default="/doc-1")
    parser.add_argument("--doc-label", default="1B")
    parser.add_argument("--syn-rate", type=int, default=1000)
    parser.add_argument("--untrusted-cap", type=int, default=16)
    parser.add_argument("--warmup", type=float, default=2.0)
    parser.add_argument("--measure", type=float, default=2.0)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="cache finished cells here and resume an "
                             "interrupted sweep")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S",
                        help="also checkpoint in-flight cells every S "
                             "simulated seconds")
    args = parser.parse_args(argv)

    from repro.experiments.figure9 import run_figure9
    from repro.snapshot import CheckpointError

    try:
        result = run_figure9(
            client_counts=[int(x) for x in args.clients.split(",")],
            configs=[c.strip() for c in args.configs.split(",")],
            document=args.document, doc_label=args.doc_label,
            syn_rate=args.syn_rate, untrusted_cap=args.untrusted_cap,
            warmup_s=args.warmup, measure_s=args.measure,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_s=args.checkpoint_every)
    except CheckpointError as exc:
        return _print_checkpoint_error(exc)
    print(result.format())
    return 0


def record_main(argv) -> int:
    """Record a chaos run's event-level journal for later replay."""
    parser = argparse.ArgumentParser(
        prog="python -m repro record",
        description="Execute a scenario while journaling per-event state "
                    "fingerprints, for divergence-bisecting replay.")
    parser.add_argument("--scenario", "-s", required=True)
    parser.add_argument("--seed", "-n", type=int, default=1)
    parser.add_argument("--every", type=int, default=2000,
                        help="full-digest journal cadence in events")
    parser.add_argument("--output", "-o", required=True)
    args = parser.parse_args(argv)

    from repro.chaos import SCENARIOS, ChaosRun
    from repro.snapshot import record

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r} "
              f"(known: {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
        return 2
    report, recording = record(ChaosRun(args.scenario, args.seed),
                               every_events=args.every)
    recording.save(args.output)
    print(f"recorded {recording.events_total} events "
          f"({len(recording.entries)} digest entries) -> {args.output}")
    print(report.summary())
    return 0


def replay_main(argv) -> int:
    """Replay a recording (or self-check a scenario); exit 1 on divergence."""
    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="Re-execute a recorded run in lockstep and pinpoint "
                    "the first divergent event, if any.")
    parser.add_argument("recording", nargs="?", default=None,
                        help="recording file written by `record`")
    parser.add_argument("--scenario", "-s", default=None,
                        help="self-check: record+replay this scenario "
                             "in-process instead of reading a file")
    parser.add_argument("--seed", "-n", type=int, default=1)
    parser.add_argument("--every", type=int, default=2000)
    args = parser.parse_args(argv)

    from repro.snapshot import CheckpointError, Recording, record, replay

    try:
        if args.recording:
            recording = Recording.load(args.recording)
        elif args.scenario:
            from repro.chaos import ChaosRun
            print(f"recording {args.scenario} seed={args.seed}...")
            _, recording = record(ChaosRun(args.scenario, args.seed),
                                  every_events=args.every)
        else:
            parser.error("give a recording file or --scenario")
    except CheckpointError as exc:
        return _print_checkpoint_error(exc)

    report = replay(recording)
    if report.ok:
        print(f"replay OK: {report.events_replayed} events reproduced "
              f"bit for bit")
        return 0
    print("REPLAY DIVERGED")
    print(report.divergence.describe())
    return 1


_SUBCOMMANDS = {
    "chaos": chaos_main,
    "experiment": experiment_main,
    "figure9": figure9_main,
    "record": record_main,
    "replay": replay_main,
}


def main(argv=None) -> int:
    """Run the guided tour; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro [--smoke]")
        for name in _SUBCOMMANDS:
            print(f"       python -m repro {name} [-h for options]")
        return 0

    from repro import __version__
    from repro.experiments.harness import Testbed

    print(f"Escort reproduction v{__version__}")
    print("Paper: Spatscheck & Peterson, 'Defending Against Denial of "
          "Service Attacks in Scout', OSDI 1999\n")

    print("Sanity run: 4 clients fetching /doc-1k for 0.5 s on each "
          "configuration...")
    for name in ("scout", "accounting", "accounting_pd", "linux"):
        bed = Testbed.by_name(name)
        bed.add_clients(4, document="/doc-1k")
        result = bed.run(warmup_s=0.3, measure_s=0.5)
        print(f"  {name:15s} {result.connections_per_second:6.0f} conn/s "
              f"({result.client_completions} completed, "
              f"{result.client_failures} failed)")

    print("\nNext steps:")
    print("  python examples/quickstart.py          accounting walkthrough")
    print("  python examples/reproduce_paper.py     every table and figure")
    print("  python -m repro chaos --list           chaos scenarios")
    print("  python -m repro replay -s domain-crash determinism self-check")
    print("  pytest benchmarks/ --benchmark-only    assertions vs the paper")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
