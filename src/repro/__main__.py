"""``python -m repro`` — a guided tour of the reproduction.

Prints the system inventory, boots one of each server configuration for a
quick sanity run, and points at the longer drivers.

Subcommands:

* ``chaos`` — run the seeded chaos scenarios (``--list``), optionally
  writing whole-machine checkpoints (``--checkpoint-every``) and resuming
  an interrupted run (``--resume``); ``--workers N`` fans the scenario
  matrix over a process pool;
* ``experiment`` — one parameterized figure-style measurement cell, with
  the same checkpoint/resume support;
* ``figure8`` / ``figure9`` / ``figure10`` / ``figure11`` — the paper's
  sweeps; all take ``--workers N`` (parallel cells, byte-identical to
  serial) and ``--profile`` (cProfile the run); figure9 additionally has
  a per-cell resume cache (``--checkpoint-dir``) so a crashed sweep
  restarts where it died;
* ``defense`` — the closed-loop adaptive-defense comparison: legitimate
  goodput under a ramping SYN flood / runaway CGI with static policies vs
  the escalating mitigation ladder, plus a record/replay fingerprint
  self-check (``--replay-check``);
* ``cluster`` — the replicated-Escort comparison: 1 vs N replicas behind
  the health-checked dispatcher under a ramping SYN flood with a
  mid-window replica crash, reporting goodput recovery and failover
  latency (``--replay-check`` runs the record/replay self-check);
* ``ablation`` — the domain-grouping / crossing-cost / early-drop sweeps;
* ``bench`` — the wall-clock benchmark suite; writes ``BENCH_sim.json``;
  ``--baseline`` diffs against a committed report and fails on event-loop
  regression;
* ``record`` / ``replay`` — deterministic-replay tooling: record a run's
  event-level fingerprint journal, then re-execute and pinpoint the first
  divergent event (exit 1 on divergence);
* ``resilience`` — the fault-space campaign runner: ``explore`` samples
  seeded fault schedules against the chaos/defense/cluster targets, fans
  them over the worker pool (crash-resumable via ``--cache-dir``), and
  delta-debugs every failure to a certified 1-minimal reproducer;
  ``minimize`` shrinks one case; ``corpus`` replays the banked regression
  corpus exactly (exit 1 on any fingerprint or digest drift);
* ``obs`` — query the telemetry a run with ``--obs`` left behind:
  ``summary`` / ``series`` / ``explain --kill <path>`` (the causal chain
  monitor signal → defense rung → watchdog detection → pathKill) /
  ``diff`` (byte-level determinism check between two runs' telemetry);
  the ``chaos``/``experiment``/``defense``/``cluster``/``supervise``
  entry points all take ``--obs [--obs-dir DIR]`` to record it;
* ``supervise`` — crash-only execution of any replayable run spec in a
  supervised child process: heartbeat-based hang detection, SIGKILL-
  anywhere resume from checkpoint + write-ahead journal, bounded
  backoff retries; ``--selftest`` runs the deterministic crash-injection
  matrix gating on byte-identical digests after resume.  ``figure9
  --supervised`` and ``resilience explore --supervised`` route their
  cells through the same machinery.
"""

from __future__ import annotations

import argparse
import sys


def _print_checkpoint_error(exc) -> int:
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _add_obs_args(parser) -> None:
    """The shared ``--obs`` / ``--obs-dir`` options."""
    parser.add_argument("--obs", action="store_true",
                        help="record deterministic telemetry (metrics "
                             "series, causal spans, flight-recorder "
                             "sidecar) for one instrumented cell; query "
                             "it afterwards with `python -m repro obs`")
    parser.add_argument("--obs-dir", default="obs-out",
                        help="directory for the telemetry sidecar and "
                             "dumps (default: ./obs-out)")


def _add_perf_args(parser) -> None:
    """The shared ``--workers`` / ``--profile`` options of the sweeps."""
    parser.add_argument("--workers", "-j", type=int, default=0,
                        help="fan sweep cells over N worker processes "
                             "(0/1 = serial; results are byte-identical "
                             "either way)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the run and print the hottest "
                             "frames to stderr")


def chaos_main(argv) -> int:
    """``python -m repro chaos [--scenario NAME] [--seed N] [--list] ...``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run seeded chaos scenarios against the Escort server.")
    parser.add_argument("--scenario", "-s", default=None,
                        help="scenario name (default: run every scenario)")
    parser.add_argument("--seed", "-n", type=int, default=1,
                        help="fault-schedule seed (default 1); the same "
                             "scenario+seed always reproduces the same run")
    parser.add_argument("--list", "-l", action="store_true",
                        dest="list_them", help="list scenarios and exit")
    parser.add_argument("--rollback", action="store_true",
                        help="arm the watchdog's snapshot/rollback rung")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S",
                        help="write a whole-machine checkpoint every S "
                             "simulated seconds")
    parser.add_argument("--checkpoint-dir", default="checkpoints",
                        help="directory for checkpoint files "
                             "(default: ./checkpoints)")
    parser.add_argument("--resume", default=None, metavar="CKPT",
                        help="resume a previously checkpointed run "
                             "(digest-verified) instead of starting fresh")
    parser.add_argument("--workers", "-j", type=int, default=0,
                        help="run the scenario matrix on N worker "
                             "processes (ignored with --checkpoint-every "
                             "or --resume)")
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.chaos import list_scenarios, run_scenario
    from repro.snapshot import CheckpointError, RunDriver

    if args.list_them:
        for name, description in list_scenarios():
            print(f"{name}")
            print(f"    {description}")
        return 0

    if args.resume:
        try:
            driver, payload = RunDriver.resume(args.resume)
        except CheckpointError as exc:
            return _print_checkpoint_error(exc)
        print(f"resumed {payload['spec']} at tick {payload['tick']} "
              f"({payload['events']} events); continuing...")
        if args.checkpoint_every:
            report, _ = driver.run_with_checkpoints(
                args.checkpoint_every, args.checkpoint_dir, "chaos")
        else:
            report = driver.run_all()
        print(report.summary())
        return 0 if report.ok else 1

    names = ([args.scenario] if args.scenario
             else [n for n, _ in list_scenarios()])

    if args.obs:
        from repro.chaos import ChaosRun
        from repro.obs import run_with_obs
        if names[0] not in dict(list_scenarios()):
            print(f"unknown scenario {names[0]!r}")
            return 2
        run = ChaosRun(names[0], args.seed, use_rollback=args.rollback)
        report, session = run_with_obs(run, args.obs_dir)
        print(report.summary())
        print()
        print(session.describe())
        return 0 if report.ok else 1

    if args.workers > 1 and not args.checkpoint_every and len(names) > 1:
        from repro.perf.pool import SweepCell, run_cells
        known = dict(list_scenarios())
        unknown = [n for n in names if n not in known]
        if unknown:
            print(f"unknown scenario {unknown[0]!r}")
            return 2
        cells = [SweepCell(key=name, runner="chaos",
                           params=dict(scenario=name, seed=args.seed,
                                       rollback=args.rollback))
                 for name in names]
        merged = run_cells(cells, workers=args.workers)
        failed = 0
        for name in names:
            print(merged[name]["summary"])
            print()
            if not merged[name]["ok"]:
                failed += 1
        return 1 if failed else 0

    failed = 0
    for name in names:
        try:
            if args.checkpoint_every:
                from repro.chaos import ChaosRun
                if name not in dict(list_scenarios()):
                    raise KeyError(f"unknown scenario {name!r}")
                driver = RunDriver(ChaosRun(name, args.seed,
                                            use_rollback=args.rollback))
                report, written = driver.run_with_checkpoints(
                    args.checkpoint_every, args.checkpoint_dir,
                    f"chaos-{name}-{args.seed}")
                print(f"({len(written)} checkpoint(s) in "
                      f"{args.checkpoint_dir})")
            else:
                report = run_scenario(name, seed=args.seed,
                                      use_rollback=args.rollback)
        except KeyError as exc:
            print(exc.args[0])
            return 2
        print(report.summary())
        print()
        if not report.ok:
            failed += 1
    return 1 if failed else 0


def experiment_main(argv) -> int:
    """One parameterized measurement cell with checkpoint/resume."""
    parser = argparse.ArgumentParser(
        prog="python -m repro experiment",
        description="Run one figure-style measurement (e.g. a Figure-9 "
                    "SYN-flood cell) with whole-machine checkpoints.")
    parser.add_argument("--config", default="accounting",
                        choices=["scout", "accounting", "accounting_pd"])
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--document", default="/doc-1k")
    parser.add_argument("--syn-rate", type=int, default=0,
                        help="SYN flood rate/s (0 = no attack)")
    parser.add_argument("--untrusted-cap", type=int, default=16)
    parser.add_argument("--cgi-attackers", type=int, default=0)
    parser.add_argument("--qos", action="store_true")
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--measure", type=float, default=5.0)
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S")
    parser.add_argument("--checkpoint-dir", default="checkpoints")
    parser.add_argument("--resume", default=None, metavar="CKPT")
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    from repro.snapshot import CheckpointError, ExperimentRun, RunDriver

    try:
        if args.resume:
            driver, payload = RunDriver.resume(args.resume)
            print(f"resumed at tick {payload['tick']} "
                  f"({payload['events']} events, digest verified)")
        else:
            run = ExperimentRun(
                args.config, clients=args.clients, document=args.document,
                syn_rate=args.syn_rate, untrusted_cap=args.untrusted_cap,
                cgi_attackers=args.cgi_attackers, qos=args.qos,
                warmup_s=args.warmup, measure_s=args.measure)
            driver = RunDriver(run)
        session = None
        if args.obs:
            from repro.obs import attach_obs
            session = attach_obs(driver, args.obs_dir)
        if args.checkpoint_every:
            result, written = driver.run_with_checkpoints(
                args.checkpoint_every, args.checkpoint_dir, "experiment")
            print(f"({len(written)} checkpoint(s) in {args.checkpoint_dir})")
        else:
            result = driver.run_all()
        if session is not None:
            session.finish()
            print(session.describe())
    except CheckpointError as exc:
        return _print_checkpoint_error(exc)

    print(f"{result.connections_per_second:.1f} conn/s "
          f"({result.client_completions} completed, "
          f"{result.client_failures} failed)")
    if result.syn_sent:
        print(f"SYN flood: {result.syn_dropped_at_demux}/{result.syn_sent} "
              f"dropped at demux")
    return 0


def figure9_main(argv) -> int:
    """The Figure-9 sweep with a crash-resumable per-cell cache."""
    parser = argparse.ArgumentParser(
        prog="python -m repro figure9",
        description="Figure 9: best-effort throughput under a SYN flood.")
    parser.add_argument("--clients", default="16,64",
                        help="comma-separated client counts")
    parser.add_argument("--configs", default="accounting,accounting_pd")
    parser.add_argument("--document", default="/doc-1")
    parser.add_argument("--doc-label", default="1B")
    parser.add_argument("--syn-rate", type=int, default=1000)
    parser.add_argument("--untrusted-cap", type=int, default=16)
    parser.add_argument("--warmup", type=float, default=2.0)
    parser.add_argument("--measure", type=float, default=2.0)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="cache finished cells here and resume an "
                             "interrupted sweep")
    parser.add_argument("--checkpoint-every", type=float, default=None,
                        metavar="S",
                        help="also checkpoint in-flight cells every S "
                             "simulated seconds")
    parser.add_argument("--supervised", action="store_true",
                        help="run each cell in a crash-only supervised "
                             "child process (hang detection, "
                             "SIGKILL-anywhere resume, bounded retries)")
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.figure9 import run_figure9
    from repro.perf import maybe_profiled
    from repro.snapshot import CheckpointError

    try:
        with maybe_profiled(args.profile):
            result = run_figure9(
                client_counts=[int(x) for x in args.clients.split(",")],
                configs=[c.strip() for c in args.configs.split(",")],
                document=args.document, doc_label=args.doc_label,
                syn_rate=args.syn_rate, untrusted_cap=args.untrusted_cap,
                warmup_s=args.warmup, measure_s=args.measure,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every_s=args.checkpoint_every,
                workers=args.workers, supervised=args.supervised)
    except CheckpointError as exc:
        return _print_checkpoint_error(exc)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.format())
    return 0


def figure8_main(argv) -> int:
    """The base-performance sweep (Figure 8)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro figure8",
        description="Figure 8: web-server throughput vs parallel clients.")
    parser.add_argument("--clients", default="1,2,4,8,16,32,64",
                        help="comma-separated client counts")
    parser.add_argument("--configs",
                        default="linux,scout,accounting,accounting_pd")
    parser.add_argument("--docs", default="1B,1KB,10KB",
                        help="document labels to sweep (of 1B,1KB,10KB)")
    parser.add_argument("--warmup", type=float, default=0.6)
    parser.add_argument("--measure", type=float, default=1.5)
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.figure8 import DOCUMENTS, run_figure8
    from repro.perf import maybe_profiled

    docs = {label: DOCUMENTS[label]
            for label in (d.strip() for d in args.docs.split(","))}
    with maybe_profiled(args.profile):
        result = run_figure8(
            client_counts=[int(x) for x in args.clients.split(",")],
            configs=[c.strip() for c in args.configs.split(",")],
            docs=docs, warmup_s=args.warmup, measure_s=args.measure,
            workers=args.workers)
    print(result.format())
    return 0


def figure10_main(argv) -> int:
    """The QoS-stream sweep (Figure 10)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro figure10",
        description="Figure 10: best-effort throughput with and without "
                    "a 1 MBps QoS stream.")
    parser.add_argument("--clients", default="16,64")
    parser.add_argument("--configs", default="accounting,accounting_pd")
    parser.add_argument("--document", default="/doc-1")
    parser.add_argument("--doc-label", default="1B")
    parser.add_argument("--warmup", type=float, default=2.0)
    parser.add_argument("--measure", type=float, default=3.0)
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.figure10 import run_figure10
    from repro.perf import maybe_profiled

    with maybe_profiled(args.profile):
        result = run_figure10(
            client_counts=[int(x) for x in args.clients.split(",")],
            configs=[c.strip() for c in args.configs.split(",")],
            document=args.document, doc_label=args.doc_label,
            warmup_s=args.warmup, measure_s=args.measure,
            workers=args.workers)
    print(result.format())
    return 0


def figure11_main(argv) -> int:
    """The runaway-CGI sweep (Figure 11)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro figure11",
        description="Figure 11: runaway-CGI attackers against 64 clients "
                    "plus the QoS stream.")
    parser.add_argument("--attackers", default="0,1,10,50")
    parser.add_argument("--configs", default="accounting,accounting_pd")
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--document", default="/doc-1")
    parser.add_argument("--doc-label", default="1B")
    parser.add_argument("--warmup", type=float, default=1.5)
    parser.add_argument("--measure", type=float, default=3.0)
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.figure11 import run_figure11
    from repro.perf import maybe_profiled

    with maybe_profiled(args.profile):
        result = run_figure11(
            attacker_counts=[int(x) for x in args.attackers.split(",")],
            configs=[c.strip() for c in args.configs.split(",")],
            clients=args.clients, document=args.document,
            doc_label=args.doc_label,
            warmup_s=args.warmup, measure_s=args.measure,
            workers=args.workers)
    print(result.format())
    return 0


def defense_main(argv) -> int:
    """The static-vs-adaptive defense comparison."""
    parser = argparse.ArgumentParser(
        prog="python -m repro defense",
        description="Compare legitimate goodput under attack with static "
                    "policies vs the closed-loop mitigation ladder.")
    parser.add_argument("--attacks", default="synflood,runaway-cgi",
                        help="comma-separated attack profiles (of "
                             "synflood,runaway-cgi,mixed)")
    parser.add_argument("--seeds", default="1",
                        help="comma-separated seeds (default 1)")
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument("--document", default="/doc-1k")
    parser.add_argument("--syn-rate", type=int, default=200,
                        help="flood rate at the start of the ramp")
    parser.add_argument("--syn-ramp-to", type=int, default=4000,
                        help="flood rate at the end of the ramp")
    parser.add_argument("--syn-ramp-s", type=float, default=1.5)
    parser.add_argument("--cgi-attackers", type=int, default=8)
    parser.add_argument("--warmup", type=float, default=0.5)
    parser.add_argument("--measure", type=float, default=2.0)
    parser.add_argument("--replay-check", action="store_true",
                        help="record one adaptive cell, re-execute it, "
                             "and verify identical digests")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 unless adaptive meets the 80%% "
                             "recovery target on every attack")
    _add_obs_args(parser)
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.defense import run_defense
    from repro.perf import maybe_profiled

    attacks = [a.strip() for a in args.attacks.split(",") if a.strip()]
    seeds = [int(s) for s in args.seeds.split(",")]

    if args.replay_check:
        ok = _defense_replay_check(attacks[0], seeds[0], args)
        if not ok:
            return 1
        print()

    if args.obs:
        from repro.defense.run import DefenseRun
        from repro.obs import run_with_obs
        run = DefenseRun(attacks[0], adaptive=True, seed=seeds[0],
                         clients=args.clients, document=args.document,
                         syn_rate=args.syn_rate,
                         syn_ramp_to=args.syn_ramp_to,
                         syn_ramp_s=args.syn_ramp_s,
                         cgi_attackers=args.cgi_attackers,
                         warmup_s=args.warmup, measure_s=args.measure)
        _, session = run_with_obs(run, args.obs_dir)
        print(f"instrumented adaptive cell: {attacks[0]} seed={seeds[0]}")
        print(session.describe())
        print()

    with maybe_profiled(args.profile):
        result = run_defense(
            attacks=attacks, seeds=seeds,
            clients=args.clients, document=args.document,
            syn_rate=args.syn_rate, syn_ramp_to=args.syn_ramp_to,
            syn_ramp_s=args.syn_ramp_s,
            cgi_attackers=args.cgi_attackers,
            warmup_s=args.warmup, measure_s=args.measure,
            workers=args.workers)
    print(result.format())
    if args.strict:
        bad = [a for a in attacks if not result.adaptive_meets_target(a)]
        if bad:
            print(f"\nFAIL: adaptive below recovery target on: "
                  f"{', '.join(bad)}", file=sys.stderr)
            return 1
    return 0


def _defense_replay_check(attack: str, seed: int, args) -> bool:
    """Build one adaptive cell twice and compare full-machine digests."""
    from repro.defense.run import DefenseRun
    from repro.snapshot.driver import RunDriver

    digests = []
    for attempt in (1, 2):
        run = DefenseRun(attack, adaptive=True, seed=seed,
                         clients=args.clients, document=args.document,
                         syn_rate=args.syn_rate,
                         syn_ramp_to=args.syn_ramp_to,
                         syn_ramp_s=args.syn_ramp_s,
                         cgi_attackers=args.cgi_attackers,
                         warmup_s=args.warmup, measure_s=args.measure)
        RunDriver(run).run_all()
        digests.append(run.digest())
    if digests[0] == digests[1]:
        print(f"replay check OK: {attack} seed={seed} adaptive cell "
              f"digests identical ({digests[0][:16]}...)")
        return True
    print(f"REPLAY CHECK FAILED: {digests[0][:16]} != {digests[1][:16]}",
          file=sys.stderr)
    return False


def cluster_main(argv) -> int:
    """The 1-vs-N replicated-cluster comparison."""
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Compare 1 vs N Escort replicas behind the "
                    "health-checked dispatcher under a ramping SYN flood "
                    "with a mid-window replica crash.")
    parser.add_argument("--sizes", default="1,3",
                        help="comma-separated replica counts (default 1,3)")
    parser.add_argument("--seeds", default="1",
                        help="comma-separated seeds (default 1)")
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument("--document", default="/doc-1k")
    parser.add_argument("--syn-rate", type=int, default=200,
                        help="flood rate at the start of the ramp")
    parser.add_argument("--syn-ramp-to", type=int, default=4000,
                        help="flood rate at the end of the ramp")
    parser.add_argument("--syn-ramp-s", type=float, default=1.5)
    parser.add_argument("--chaos-at", type=float, default=0.5,
                        help="crash offset into the window (seconds)")
    parser.add_argument("--chaos-restore", type=float, default=1.7,
                        help="cold-restart offset into the window")
    parser.add_argument("--warmup", type=float, default=0.5)
    parser.add_argument("--measure", type=float, default=2.5)
    parser.add_argument("--replay-check", action="store_true",
                        help="record one attacked 3-replica cell, replay "
                             "it in lockstep, and verify per-event "
                             "fingerprints match")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 unless the replicated cluster meets "
                             "the 70%% recovery target and the single "
                             "replica collapses")
    _add_obs_args(parser)
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.cluster import run_cluster
    from repro.perf import maybe_profiled

    sizes = [int(s) for s in args.sizes.split(",")]
    seeds = [int(s) for s in args.seeds.split(",")]

    if args.replay_check:
        if not _cluster_replay_check(max(sizes), seeds[0], args):
            return 1
        print()

    if args.obs:
        from repro.cluster.run import ClusterRun
        from repro.obs import run_with_obs
        run = ClusterRun("crash", replicas=max(sizes), seed=seeds[0],
                         clients=args.clients, document=args.document,
                         syn_rate=args.syn_rate,
                         syn_ramp_to=args.syn_ramp_to,
                         syn_ramp_s=args.syn_ramp_s,
                         chaos_at_s=args.chaos_at,
                         chaos_restore_s=args.chaos_restore,
                         warmup_s=args.warmup, measure_s=args.measure)
        _, session = run_with_obs(run, args.obs_dir)
        print(f"instrumented crash cell: n={max(sizes)} seed={seeds[0]}")
        print(session.describe())
        print()

    with maybe_profiled(args.profile):
        result = run_cluster(
            sizes=sizes, seeds=seeds,
            clients=args.clients, document=args.document,
            syn_rate=args.syn_rate, syn_ramp_to=args.syn_ramp_to,
            syn_ramp_s=args.syn_ramp_s,
            chaos_at_s=args.chaos_at, chaos_restore_s=args.chaos_restore,
            warmup_s=args.warmup, measure_s=args.measure,
            workers=args.workers)
    print(result.format())
    if args.strict and not result.meets_target():
        print("\nFAIL: cluster recovery targets not met", file=sys.stderr)
        return 1
    return 0


def _cluster_replay_check(size: int, seed: int, args) -> bool:
    """Record one attacked cell and replay it in event lockstep."""
    from repro.cluster.run import ClusterRun
    from repro.snapshot import record, replay

    run = ClusterRun("crash", replicas=size, seed=seed,
                     clients=args.clients, document=args.document,
                     syn_rate=args.syn_rate,
                     syn_ramp_to=args.syn_ramp_to,
                     syn_ramp_s=args.syn_ramp_s,
                     chaos_at_s=args.chaos_at,
                     chaos_restore_s=args.chaos_restore,
                     warmup_s=args.warmup, measure_s=args.measure)
    _, recording = record(run)
    report = replay(recording)
    if report.ok:
        print(f"replay check OK: crash cell (n={size}, seed={seed}) "
              f"reproduced {report.events_replayed} events bit for bit")
        return True
    print("REPLAY CHECK FAILED", file=sys.stderr)
    print(report.divergence.describe(), file=sys.stderr)
    return False


def ablation_main(argv) -> int:
    """The design-choice ablations (domains / crossing cost / early drop)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro ablation",
        description="Ablation sweeps: domain grouping, crossing cost, "
                    "early vs late SYN drop.")
    parser.add_argument("--sweep", default="all",
                        choices=["all", "domains", "crossing", "early-drop"])
    parser.add_argument("--clients", type=int, default=64)
    _add_perf_args(parser)
    args = parser.parse_args(argv)

    from repro.experiments.ablation import (
        run_crossing_cost_sweep,
        run_domain_sweep,
        run_early_drop_ablation,
    )
    from repro.perf import maybe_profiled

    with maybe_profiled(args.profile):
        if args.sweep in ("all", "domains"):
            print(run_domain_sweep(clients=args.clients,
                                   workers=args.workers).format())
            print()
        if args.sweep in ("all", "crossing"):
            print(run_crossing_cost_sweep(clients=args.clients,
                                          workers=args.workers).format())
            print()
        if args.sweep in ("all", "early-drop"):
            print(run_early_drop_ablation(
                clients=min(args.clients, 32),
                workers=args.workers).format())
    return 0


def bench_main(argv) -> int:
    """The wall-clock benchmark suite; writes BENCH_sim.json."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark event-loop throughput, end-to-end run "
                    "wall-clock, and sweep scaling at 1/2/4 workers.")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke run)")
    parser.add_argument("--output", "-o", default="BENCH_sim.json",
                        help="report path (default BENCH_sim.json; '-' "
                             "to skip writing)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the multi-worker sweep benchmark")
    parser.add_argument("--skip-micro", action="store_true",
                        help="skip the microbenchmark section")
    parser.add_argument("--baseline", default=None, metavar="JSON",
                        help="compare against a committed BENCH_sim.json "
                             "and fail on events/sec regression")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        metavar="FRAC",
                        help="allowed events/sec slowdown vs the baseline "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--alloc-profile", action="store_true",
                        help="skip the benchmarks; profile allocation "
                             "sites of one end-to-end run via tracemalloc")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="also measure the events/sec cost of an "
                             "attached observability session (one "
                             "adaptive defense cell, obs-off vs obs-on)")
    parser.add_argument("--obs-budget", type=float, default=0.05,
                        metavar="FRAC",
                        help="with --obs-overhead: allowed throughput "
                             "fraction lost obs-on (default 0.05 = 5%%); "
                             "exceeding it fails the run")
    args = parser.parse_args(argv)

    from repro.perf.bench import (
        alloc_profile, format_alloc_profile, format_report, run_bench)

    if args.alloc_profile:
        print(format_alloc_profile(alloc_profile()))
        return 0

    report = run_bench(quick=args.quick,
                       output=None if args.output == "-" else args.output,
                       skip_sweep=args.skip_sweep,
                       skip_micro=args.skip_micro,
                       obs_overhead=args.obs_overhead)
    print(format_report(report))
    if args.output != "-":
        print(f"wrote {args.output}")
    rc = 0
    if args.baseline:
        rc = _bench_guard(report, args.baseline, args.max_regression)
    if args.obs_overhead:
        obs = report["obs_overhead"]
        if not obs["digests_identical"]:
            print("FAIL: obs-on digest diverged from obs-off — the "
                  "observer perturbed the run", file=sys.stderr)
            return 1
        verdict = "OK" if obs["overhead_frac"] <= args.obs_budget \
            else "OVER BUDGET"
        print(f"obs guard: {obs['overhead_frac']:.1%} overhead vs "
              f"{args.obs_budget:.0%} budget: {verdict}")
        if obs["overhead_frac"] > args.obs_budget:
            print(f"FAIL: obs overhead {obs['overhead_frac']:.1%} "
                  f"exceeds budget {args.obs_budget:.0%}",
                  file=sys.stderr)
            return 1
    return rc


def _bench_guard(report, baseline_path: str, max_regression: float) -> int:
    """Fail when an events/sec headline regressed past the allowance.

    Wall-clock benchmarks are noisy across machines, so the guard only
    compares the events/sec headlines (event loop, and end-to-end when
    the baseline carries one) and only in the slower direction; the
    committed baseline stays put until someone deliberately re-bases it
    with ``python -m repro bench -o BENCH_sim.json``.
    """
    import json
    import os

    rebase_hint = (f"create/refresh it from a healthy checkout with:\n"
                   f"  python -m repro bench -o {baseline_path}")
    if not os.path.exists(baseline_path):
        print(f"error: baseline {baseline_path} does not exist — nothing "
              f"to guard against.\n{rebase_hint}", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: baseline {baseline_path} is not valid JSON "
              f"({exc}) — it may be truncated or hand-edited.\n"
              f"{rebase_hint}", file=sys.stderr)
        return 2
    headline = (baseline.get("event_loop")
                if isinstance(baseline, dict) else None)
    if not isinstance(headline, dict) or "events_per_sec" not in headline:
        shape = (", ".join(sorted(baseline)) or "(empty)") \
            if isinstance(baseline, dict) else type(baseline).__name__
        print(f"error: baseline {baseline_path} is valid JSON but does "
              f"not look like a bench report (no event_loop."
              f"events_per_sec; top level: {shape}).  It may predate "
              f"the current report schema.\n{rebase_hint}",
              file=sys.stderr)
        return 2
    failed = False
    for section, label in (("event_loop", "event loop"),
                           ("end_to_end", "end-to-end")):
        base = baseline.get(section, {}).get("events_per_sec")
        if base is None:
            continue
        cur = report.get(section, {}).get("events_per_sec")
        if cur is None:
            print(f"bench guard: baseline has a {label} headline but "
                  f"this run skipped that section; not compared")
            continue
        floor = base * (1.0 - max_regression)
        verdict = "OK" if cur >= floor else "REGRESSION"
        print(f"bench guard: {label} {cur:,.0f} events/s vs baseline "
              f"{base:,.0f} (floor {floor:,.0f} at "
              f"-{max_regression:.0%}): {verdict}")
        if cur < floor:
            failed = True
            print(f"FAIL: {label} slowed more than {max_regression:.0%} "
                  f"vs {baseline_path}", file=sys.stderr)
    return 1 if failed else 0


def record_main(argv) -> int:
    """Record a chaos run's event-level journal for later replay."""
    parser = argparse.ArgumentParser(
        prog="python -m repro record",
        description="Execute a scenario while journaling per-event state "
                    "fingerprints, for divergence-bisecting replay.")
    parser.add_argument("--scenario", "-s", required=True)
    parser.add_argument("--seed", "-n", type=int, default=1)
    parser.add_argument("--every", type=int, default=2000,
                        help="full-digest journal cadence in events")
    parser.add_argument("--output", "-o", required=True)
    args = parser.parse_args(argv)

    from repro.chaos import SCENARIOS, ChaosRun
    from repro.snapshot import record

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r} "
              f"(known: {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
        return 2
    report, recording = record(ChaosRun(args.scenario, args.seed),
                               every_events=args.every)
    recording.save(args.output)
    print(f"recorded {recording.events_total} events "
          f"({len(recording.entries)} digest entries) -> {args.output}")
    print(report.summary())
    return 0


def replay_main(argv) -> int:
    """Replay a recording (or self-check a scenario); exit 1 on divergence."""
    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="Re-execute a recorded run in lockstep and pinpoint "
                    "the first divergent event, if any.")
    parser.add_argument("recording", nargs="?", default=None,
                        help="recording file written by `record`")
    parser.add_argument("--scenario", "-s", default=None,
                        help="self-check: record+replay this scenario "
                             "in-process instead of reading a file")
    parser.add_argument("--seed", "-n", type=int, default=1)
    parser.add_argument("--every", type=int, default=2000)
    args = parser.parse_args(argv)

    from repro.snapshot import CheckpointError, Recording, record, replay

    try:
        if args.recording:
            recording = Recording.load(args.recording)
        elif args.scenario:
            from repro.chaos import ChaosRun
            print(f"recording {args.scenario} seed={args.seed}...")
            _, recording = record(ChaosRun(args.scenario, args.seed),
                                  every_events=args.every)
        else:
            parser.error("give a recording file or --scenario")
    except CheckpointError as exc:
        return _print_checkpoint_error(exc)

    report = replay(recording)
    if report.ok:
        print(f"replay OK: {report.events_replayed} events reproduced "
              f"bit for bit")
        return 0
    print("REPLAY DIVERGED")
    print(report.divergence.describe())
    return 1


def resilience_main(argv) -> int:
    """The fault-space campaign runner (explore / minimize / corpus)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro resilience",
        description="Explore the fault space against the replayable run "
                    "targets, shrink failures to 1-minimal reproducers, "
                    "and replay the banked regression corpus.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_target(p):
        p.add_argument("--target", "-t", default="chaos",
                       choices=["chaos", "defense", "cluster"],
                       help="which replayable run kind to stress")
        p.add_argument("--seed", "-n", type=int, default=7,
                       help="campaign seed (default 7); the same "
                            "target+seed+budget always samples the same "
                            "cases")

    p_explore = sub.add_parser(
        "explore", help="sample and grade a budget of fault schedules")
    add_target(p_explore)
    p_explore.add_argument("--budget", "-b", type=int, default=50,
                           help="number of cases to sample (default 50)")
    p_explore.add_argument("--intensity", default=None, metavar="K=V,...",
                           help="base intensity multipliers, e.g. "
                                "rate=2,magnitude=1.5,duration=2")
    p_explore.add_argument("--workers", "-j", type=int, default=0,
                           help="fan cases over N worker processes "
                                "(results byte-identical to serial)")
    p_explore.add_argument("--cache-dir", default=None,
                           help="persist finished verdicts here and "
                                "resume an interrupted campaign")
    p_explore.add_argument("--no-minimize", action="store_true",
                           help="report failures without shrinking them")
    p_explore.add_argument("--max-tests", type=int, default=400,
                           help="oracle-run budget per minimization")
    p_explore.add_argument("--bank", default=None, metavar="DIR",
                           help="bank minimized reproducers into this "
                                "corpus directory")
    p_explore.add_argument("--quiet", action="store_true",
                           help="suppress progress lines (final report "
                                "only)")
    p_explore.add_argument("--supervised", action="store_true",
                           help="run each case in a crash-only supervised "
                                "child process; harness deaths become "
                                "supervision:* verdicts instead of "
                                "killing the campaign")
    p_explore.add_argument("--supervise-dir", default=None, metavar="DIR",
                           help="keep per-case supervision state "
                                "(checkpoints, journals, attempt logs) "
                                "here for post-mortem")

    p_min = sub.add_parser(
        "minimize", help="shrink one failing sampled case")
    add_target(p_min)
    p_min.add_argument("--case-file", default=None,
                       help="minimize the case in this JSON file instead "
                            "of sampling one from target+seed")
    p_min.add_argument("--max-tests", type=int, default=400)
    p_min.add_argument("--output", "-o", default=None,
                       help="write the minimized case as JSON")

    p_corpus = sub.add_parser(
        "corpus", help="replay the banked regression corpus exactly")
    p_corpus.add_argument("--corpus-dir", default=None,
                          help="corpus directory (default: "
                               "./corpus/ESCORP-1)")
    args = parser.parse_args(argv)

    from repro.resilience import (Minimizer, default_corpus_dir, explore,
                                  load_entries, replay_corpus)

    if args.command == "explore":
        intensity = None
        if args.intensity:
            try:
                intensity = {k.strip(): float(v) for k, v in
                             (pair.split("=", 1)
                              for pair in args.intensity.split(","))}
            except ValueError:
                print(f"bad --intensity {args.intensity!r} "
                      f"(want rate=2,magnitude=1.5)", file=sys.stderr)
                return 2
        report = explore(args.target, args.seed, args.budget,
                         workers=args.workers, intensity=intensity,
                         cache_dir=args.cache_dir,
                         minimize=not args.no_minimize,
                         max_tests=args.max_tests, bank_dir=args.bank,
                         supervised=args.supervised,
                         supervise_dir=args.supervise_dir,
                         log=None if args.quiet else print)
        print(report.format())
        return 1 if report.failures else 0

    if args.command == "minimize":
        import json as _json
        if args.case_file:
            with open(args.case_file) as fh:
                payload = _json.load(fh)
            case = payload.get("case", payload)
        else:
            from repro.resilience import FaultSpace
            case = FaultSpace(args.target).sample(args.seed)
        try:
            result = Minimizer(case, max_tests=args.max_tests,
                               log=print).run()
        except ValueError as exc:
            print(exc)
            return 2
        print(result.summary())
        for entry in result.case["entries"]:
            print(f"  {entry}")
        if args.output:
            with open(args.output, "w") as fh:
                _json.dump({"case": result.case,
                            "fingerprint": result.fingerprint,
                            "one_minimal": result.one_minimal},
                           fh, sort_keys=True, indent=2)
                fh.write("\n")
            print(f"wrote {args.output}")
        return 0

    corpus_dir = args.corpus_dir or default_corpus_dir()
    entries = load_entries(corpus_dir)
    if not entries:
        print(f"no corpus entries under {corpus_dir}")
        return 2
    print(f"replaying {len(entries)} corpus entr"
          f"{'y' if len(entries) == 1 else 'ies'} from {corpus_dir}:")
    outcomes = replay_corpus(corpus_dir, log=print)
    bad = [o for o in outcomes if not o.ok]
    print(f"{len(outcomes) - len(bad)}/{len(outcomes)} replayed exactly")
    return 1 if bad else 0


def obs_main(argv) -> int:
    """Query a run's telemetry sidecar (summary/series/explain/diff)."""
    from repro.obs.cli import obs_main as run_obs
    return run_obs(argv)


def supervise_main(argv) -> int:
    """Crash-only supervised execution of one replayable run spec."""
    parser = argparse.ArgumentParser(
        prog="python -m repro supervise",
        description="Execute a replayable run spec in a supervised child "
                    "process: heartbeat hang detection, SIGKILL-anywhere "
                    "resume from checkpoint + write-ahead journal, and "
                    "bounded backoff retries.")
    parser.add_argument("--spec-file", default=None, metavar="JSON",
                        help="file holding the run spec to execute "
                             "(any kind: experiment, chaos, defense, "
                             "cluster)")
    parser.add_argument("--kind", default=None,
                        choices=["experiment", "chaos", "defense",
                                 "cluster"],
                        help="run the built-in small reference spec of "
                             "this kind instead of --spec-file")
    parser.add_argument("--state-dir", default=None,
                        help="state directory for job/checkpoint/journal/"
                             "result files (default: a fresh temp dir); "
                             "reusing one resumes its journal")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--heartbeat-timeout", type=float, default=10.0,
                        metavar="S",
                        help="wall-clock seconds without a heartbeat "
                             "before the child is declared hung and "
                             "SIGKILLed (default 10)")
    parser.add_argument("--checkpoint-every", type=int, default=5000,
                        metavar="EVENTS",
                        help="checkpoint cadence inside the child "
                             "(default 5000 events)")
    parser.add_argument("--grade", action="store_true",
                        help="grade the finished run with the campaign "
                             "oracle (exit 1 on a failing verdict)")
    parser.add_argument("--inject-kill", type=int, default=None,
                        metavar="K",
                        help="rehearsal: SIGKILL the child after K "
                             "executed events (first attempt only) to "
                             "watch the resume")
    parser.add_argument("--inject-hang", type=int, default=None,
                        metavar="K",
                        help="rehearsal: hang the child after K executed "
                             "events (first attempt only) to watch hang "
                             "detection")
    parser.add_argument("--selftest", action="store_true",
                        help="run the deterministic crash-injection "
                             "selftest matrix (seeded kill points per "
                             "run kind, a hang, a retry-budget "
                             "exhaustion) and exit non-zero unless "
                             "every resume is byte-identical")
    parser.add_argument("--quick", action="store_true",
                        help="with --selftest: the CI smoke shape "
                             "(experiment + chaos kinds, no "
                             "retry-exhaustion case)")
    parser.add_argument("--kill-points", type=int, default=3,
                        help="with --selftest: seeded kill points per "
                             "kind (default 3)")
    parser.add_argument("--seed", type=int, default=990417,
                        help="with --selftest: the kill-point seed")
    _add_obs_args(parser)
    args = parser.parse_args(argv)

    import tempfile

    from repro.supervise import Supervisor, supervision_verdict

    if args.selftest:
        from repro.supervise import crash_injection_selftest
        base = args.state_dir or tempfile.mkdtemp(
            prefix="supervise-selftest-")
        kinds = (("experiment", "chaos") if args.quick
                 else ("experiment", "chaos", "defense", "cluster"))
        report = crash_injection_selftest(
            base, kinds=kinds, kill_points=args.kill_points,
            gave_up=not args.quick, seed=args.seed, log=print)
        print()
        print(report.summary())
        return 0 if report.ok else 1

    if args.spec_file:
        import json
        with open(args.spec_file) as fh:
            spec = json.load(fh)
    elif args.kind:
        from repro.supervise.harness import selftest_spec
        spec = selftest_spec(args.kind)
    else:
        parser.error("give --spec-file, --kind, or --selftest")

    inject = None
    if args.inject_kill is not None:
        inject = {"mode": "kill", "after_events": args.inject_kill,
                  "on_attempt": 1}
    elif args.inject_hang is not None:
        inject = {"mode": "hang", "after_events": args.inject_hang,
                  "on_attempt": 1}

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="supervise-")
    sup = Supervisor(state_dir, max_attempts=args.max_attempts,
                     heartbeat_timeout_s=args.heartbeat_timeout,
                     checkpoint_every_events=args.checkpoint_every)
    sres = sup.run(spec, grade=args.grade, inject=inject,
                   obs_dir=args.obs_dir if args.obs else None)

    for a in sres.attempts:
        line = (f"attempt {a.attempt}: {a.classification} "
                f"({a.duration_s:.2f}s, {a.heartbeats} heartbeats")
        if a.backoff_s:
            line += f"; backoff {a.backoff_s:.2f}s before retry"
        print(line + ")")
    print(f"state dir: {sres.state_dir}")
    if args.obs:
        print(f"telemetry: {args.obs_dir} (query with "
              f"`python -m repro obs summary --obs-dir {args.obs_dir}`)")
    if sres.ok:
        r = sres.result
        resumed = r["resume"]["resumed_events"]
        print(f"ok: {r['events']} events"
              + (f" (resumed at event {resumed})" if resumed else "")
              + f", digest {r['digest'][:16]}..., "
              f"fingerprint {r['fingerprint']}")
        verdict = r.get("verdict")
        if verdict is not None:
            status = ("ok" if verdict["ok"]
                      else ",".join(verdict["failures"]))
            detail = f" — {verdict['detail']}" if verdict["detail"] else ""
            print(f"oracle verdict: {status}{detail}")
            return 0 if verdict["ok"] else 1
        return 0
    verdict = supervision_verdict(sres)
    print(f"gave up: {verdict['detail']}", file=sys.stderr)
    if sres.error:
        print(f"last error: {sres.error['type']}: "
              f"{sres.error['message']}", file=sys.stderr)
    return 1


_SUBCOMMANDS = {
    "chaos": chaos_main,
    "experiment": experiment_main,
    "figure8": figure8_main,
    "figure9": figure9_main,
    "figure10": figure10_main,
    "figure11": figure11_main,
    "defense": defense_main,
    "cluster": cluster_main,
    "ablation": ablation_main,
    "bench": bench_main,
    "record": record_main,
    "replay": replay_main,
    "resilience": resilience_main,
    "supervise": supervise_main,
    "obs": obs_main,
}


def main(argv=None) -> int:
    """Run the guided tour; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro [--smoke]")
        for name in _SUBCOMMANDS:
            print(f"       python -m repro {name} [-h for options]")
        return 0

    from repro import __version__
    from repro.experiments.harness import Testbed

    print(f"Escort reproduction v{__version__}")
    print("Paper: Spatscheck & Peterson, 'Defending Against Denial of "
          "Service Attacks in Scout', OSDI 1999\n")

    print("Sanity run: 4 clients fetching /doc-1k for 0.5 s on each "
          "configuration...")
    for name in ("scout", "accounting", "accounting_pd", "linux"):
        bed = Testbed.by_name(name)
        bed.add_clients(4, document="/doc-1k")
        result = bed.run(warmup_s=0.3, measure_s=0.5)
        print(f"  {name:15s} {result.connections_per_second:6.0f} conn/s "
              f"({result.client_completions} completed, "
              f"{result.client_failures} failed)")

    print("\nNext steps:")
    print("  python examples/quickstart.py          accounting walkthrough")
    print("  python examples/reproduce_paper.py     every table and figure")
    print("  python -m repro chaos --list           chaos scenarios")
    print("  python -m repro replay -s domain-crash determinism self-check")
    print("  pytest benchmarks/ --benchmark-only    assertions vs the paper")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
