"""cProfile hook for the CLI's ``--profile`` flag."""

from __future__ import annotations

import contextlib
import sys
from typing import Iterator, Optional


@contextlib.contextmanager
def maybe_profiled(enabled: bool, sort: str = "tottime", limit: int = 25,
                   stream=None) -> Iterator[Optional["object"]]:
    """Profile the enclosed block when ``enabled``; print stats on exit.

    Usage::

        with maybe_profiled(args.profile):
            run_figure9(...)
    """
    if not enabled:
        yield None
        return
    import cProfile
    import pstats
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=stream or sys.stderr)
        stats.sort_stats(sort)
        print(f"--- profile (top {limit} by {sort}) ---",
              file=stream or sys.stderr)
        stats.print_stats(limit)
