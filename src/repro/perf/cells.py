"""Registered sweep-cell runners.

Each runner is a module-level function (picklable by name across the
process-pool boundary) that builds one simulated machine from plain
parameters, runs one measurement, and returns a JSON-able dict.  The
experiment drivers in :mod:`repro.experiments` express their sweeps as
lists of :class:`repro.perf.pool.SweepCell` naming these runners, so the
same cell code serves both the serial and the parallel path.

Every cell starts from :func:`repro.snapshot.runs.reset_ids`: object ids
restart at 1 for each cell, in workers and in-process alike, which is what
makes serial and parallel sweep results byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

CELL_RUNNERS: Dict[str, Callable[..., Any]] = {}


def cell_runner(name: str) -> Callable:
    """Register a cell function under ``name``."""
    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        CELL_RUNNERS[name] = fn
        return fn
    return deco


def run_cell(runner: str, params: Dict[str, Any]) -> Any:
    """Run one registered cell with fresh object ids."""
    fn = CELL_RUNNERS.get(runner)
    if fn is None:
        raise KeyError(f"unknown cell runner {runner!r} "
                       f"(known: {', '.join(sorted(CELL_RUNNERS))})")
    from repro.snapshot.runs import reset_ids
    reset_ids()
    return fn(**params)


# ----------------------------------------------------------------------
# Figure cells (the measurement bodies match the serial drivers exactly)
# ----------------------------------------------------------------------
@cell_runner("figure8")
def figure8_cell(config: str, clients: int, document: str,
                 warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One Figure-8 cell: N clients fetching one document, no attack."""
    from repro.experiments.harness import Testbed
    bed = Testbed.by_name(config)
    bed.add_clients(clients, document=document)
    run = bed.run(warmup_s=warmup_s, measure_s=measure_s)
    return {"cps": run.connections_per_second}


@cell_runner("figure9")
def figure9_cell(config: str, clients: int, attack: bool, document: str,
                 syn_rate: int, untrusted_cap: int,
                 warmup_s: float, measure_s: float,
                 checkpoint_dir: str = None,
                 checkpoint_every_s: float = None) -> Dict[str, Any]:
    """One Figure-9 cell: clients with or without the SYN flood."""
    from repro.snapshot.driver import RunDriver
    from repro.snapshot.runs import ExperimentRun

    run = ExperimentRun(config, clients=clients, document=document,
                        syn_rate=syn_rate if attack else 0,
                        untrusted_cap=untrusted_cap,
                        warmup_s=warmup_s, measure_s=measure_s)
    driver = RunDriver(run)
    if checkpoint_dir and checkpoint_every_s:
        stem = f"fig9-{config}-{clients}-{'attack' if attack else 'base'}"
        res, _ = driver.run_with_checkpoints(checkpoint_every_s,
                                             checkpoint_dir, stem)
    else:
        res = driver.run_all()
    return {"cps": res.connections_per_second,
            "syn_sent": res.syn_sent,
            "syn_dropped": res.syn_dropped_at_demux}


@cell_runner("figure10")
def figure10_cell(config: str, clients: int, with_qos: bool, document: str,
                  warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One Figure-10 cell: client load with or without the QoS stream."""
    from repro.experiments.figure10 import QOS_TARGET_BPS
    from repro.experiments.harness import Testbed
    from repro.policy import QosPolicy

    bed = Testbed.by_name(config, policies=[QosPolicy(QOS_TARGET_BPS)])
    bed.add_clients(clients, document=document)
    if with_qos:
        bed.add_qos_receiver()
    run = bed.run(warmup_s=warmup_s, measure_s=measure_s)
    return {"cps": run.connections_per_second,
            "qos_bw": run.qos_bandwidth_bps,
            "qos_windows": list(run.qos_windows)}


@cell_runner("figure11")
def figure11_cell(config: str, attackers: int, clients: int, document: str,
                  warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One Figure-11 cell: QoS stream + clients + N CGI attackers."""
    from repro.experiments.figure11 import QOS_TARGET_BPS
    from repro.experiments.harness import Testbed
    from repro.policy import QosPolicy, RunawayPolicy

    bed = Testbed.by_name(config, policies=[
        QosPolicy(QOS_TARGET_BPS), RunawayPolicy(2.0)])
    bed.add_clients(clients, document=document)
    bed.add_qos_receiver()
    if attackers:
        bed.add_cgi_attackers(attackers)
    run = bed.run(warmup_s=warmup_s, measure_s=measure_s)
    return {"cps": run.connections_per_second,
            "qos_bw": run.qos_bandwidth_bps,
            "kills": run.runaway_kills}


# ----------------------------------------------------------------------
# Ablation cells
# ----------------------------------------------------------------------
@cell_runner("ablation-domains")
def ablation_domains_cell(domains: int, clients: int,
                          warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One domain-granularity ablation cell."""
    from repro.experiments.ablation import GROUPINGS
    from repro.experiments.harness import Testbed

    bed = Testbed.escort(accounting=True, protection_domains=True,
                         domain_groups=GROUPINGS[domains])
    bed.add_clients(clients, document="/doc-1")
    run = bed.run(warmup_s=warmup_s, measure_s=measure_s)
    return {"cps": run.connections_per_second}


@cell_runner("ablation-crossing")
def ablation_crossing_cell(factor: float, clients: int,
                           warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One crossing-cost ablation cell (scaled PD costs)."""
    from dataclasses import replace

    from repro.experiments.harness import Testbed
    from repro.sim.costs import CostModel

    base = CostModel.default()
    costs = replace(
        base,
        pd_crossing=int(base.pd_crossing * factor),
        demux_pd_penalty=int(base.demux_pd_penalty * factor))
    bed = Testbed.escort(accounting=True, protection_domains=True,
                         costs=costs)
    bed.add_clients(clients, document="/doc-1")
    run = bed.run(warmup_s=warmup_s, measure_s=measure_s)
    return {"crossing": costs.pd_crossing,
            "cps": run.connections_per_second}


@cell_runner("ablation-early-drop")
def ablation_early_drop_cell(early: bool, clients: int, syn_rate: int,
                             warmup_s: float, measure_s: float
                             ) -> Dict[str, Any]:
    """One early-vs-late SYN-drop ablation cell."""
    from repro.experiments.harness import TRUSTED_SUBNET, Testbed
    from repro.policy import SynFloodPolicy

    policy = SynFloodPolicy(TRUSTED_SUBNET, untrusted_cap=16)
    bed = Testbed.escort(accounting=True, policies=[policy])
    bed.add_clients(clients, document="/doc-1")
    bed.add_syn_attacker(syn_rate)
    if not early:
        # Disable the demux-time check: the cap is then enforced only
        # after the SYN has been delivered to the passive path.  Boot
        # first so the passive paths exist (run() re-boots, which is
        # idempotent).
        from repro.sim.clock import seconds_to_ticks
        bed.server.boot()
        bed.sim.run(until=seconds_to_ticks(0.02))
        untrusted = bed.server.http.passive_paths[1]

        def late_demux(dgram, orig=bed.server.tcp.demux,
                       path=untrusted):
            result = orig(dgram)
            if result.kind == "drop" and result.reason == "syn-cap":
                from repro.core.demux import DemuxResult
                return DemuxResult.to_path(path)
            return result

        bed.server.tcp.demux = late_demux
    run = bed.run(warmup_s=warmup_s, measure_s=measure_s)
    return {"cps": run.connections_per_second,
            "early_drops": run.syn_dropped_at_demux}


# ----------------------------------------------------------------------
# Defense cell (static-vs-adaptive matrix)
# ----------------------------------------------------------------------
@cell_runner("defense")
def defense_cell(attack: str, adaptive: bool, seed: int,
                 clients: int, document: str,
                 syn_rate: int, syn_ramp_to: int, syn_ramp_s: float,
                 spoof_hosts: int, cgi_attackers: int,
                 warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One defense cell: an attack profile with or without the closed loop."""
    from dataclasses import asdict

    from repro.defense.run import DefenseRun
    from repro.snapshot.driver import RunDriver

    run = DefenseRun(attack, adaptive=adaptive, seed=seed,
                     clients=clients, document=document,
                     syn_rate=syn_rate, syn_ramp_to=syn_ramp_to,
                     syn_ramp_s=syn_ramp_s, spoof_hosts=spoof_hosts,
                     cgi_attackers=cgi_attackers,
                     warmup_s=warmup_s, measure_s=measure_s)
    return asdict(RunDriver(run).run_all())


# ----------------------------------------------------------------------
# Cluster cell (1-vs-N replica chaos matrix)
# ----------------------------------------------------------------------
@cell_runner("cluster")
def cluster_cell(chaos: str, replicas: int, adaptive: bool, seed: int,
                 clients: int, document: str, retry: bool,
                 syn_rate: int, syn_ramp_to: int, syn_ramp_s: float,
                 spoof_hosts: int, victim: int,
                 chaos_at_s: float, chaos_restore_s: float,
                 warmup_s: float, measure_s: float) -> Dict[str, Any]:
    """One cluster cell: N replicas, optional flood, optional mid-window
    chaos."""
    from dataclasses import asdict

    from repro.cluster.run import ClusterRun
    from repro.snapshot.driver import RunDriver

    run = ClusterRun(chaos, replicas=replicas, adaptive=adaptive,
                     seed=seed, clients=clients, document=document,
                     retry=retry, syn_rate=syn_rate,
                     syn_ramp_to=syn_ramp_to, syn_ramp_s=syn_ramp_s,
                     spoof_hosts=spoof_hosts, victim=victim,
                     chaos_at_s=chaos_at_s,
                     chaos_restore_s=chaos_restore_s,
                     warmup_s=warmup_s, measure_s=measure_s)
    return asdict(RunDriver(run).run_all())


# ----------------------------------------------------------------------
# Resilience campaign cell
# ----------------------------------------------------------------------
@cell_runner("resilience")
def resilience_cell(spec: Dict[str, Any]) -> Dict[str, Any]:
    """One campaign case: execute a run spec, return its oracle verdict."""
    from repro.resilience.oracle import evaluate_spec
    return evaluate_spec(spec)


# ----------------------------------------------------------------------
# Crash-injection cell (exercises the pool's failure containment)
# ----------------------------------------------------------------------
@cell_runner("crash-injection")
def crash_injection_cell(mode: str = "ok", marker_path: str = None,
                         value: Any = None) -> Dict[str, Any]:
    """Deterministically kill (or crash) the hosting worker process.

    ``kill-once`` SIGKILLs the worker the first time the cell runs and
    succeeds on the requeue (``marker_path`` records the first death);
    ``kill-always`` dies on every attempt, ``raise`` raises, ``ok``
    returns ``{"value": value}``.  Exists for the containment tests and
    for rehearsing sweep behaviour under worker loss.
    """
    import os as _os
    import signal as _signal

    if mode == "kill-always" or (
            mode == "kill-once" and marker_path is not None
            and not _os.path.exists(marker_path)):
        if marker_path is not None:
            open(marker_path, "w").close()
        _os.kill(_os.getpid(), _signal.SIGKILL)
    if mode == "raise":
        raise RuntimeError("injected cell exception")
    return {"value": value}


# ----------------------------------------------------------------------
# Chaos matrix cell
# ----------------------------------------------------------------------
@cell_runner("chaos")
def chaos_cell(scenario: str, seed: int,
               rollback: bool = False) -> Dict[str, Any]:
    """One chaos-matrix cell: a seeded scenario, pass/fail + summary."""
    from repro.chaos import run_scenario
    report = run_scenario(scenario, seed=seed, use_rollback=rollback)
    return {"ok": report.ok, "summary": report.summary()}
