"""Performance layer: parallel sweep execution, benchmarks, profiling.

Every figure in the paper is a sweep of independent cells (one simulated
machine per cell), which makes the harness embarrassingly parallel:
:mod:`repro.perf.pool` fans cells out over a process pool and merges the
results in deterministic cell order, :mod:`repro.perf.cells` holds the
picklable cell runners, :mod:`repro.perf.bench` measures event-loop and
sweep throughput into ``BENCH_sim.json``, and :mod:`repro.perf.profiling`
is the ``--profile`` cProfile hook.
"""

from repro.perf.pool import CellFailure, SweepCell, run_cells
from repro.perf.profiling import maybe_profiled

__all__ = ["CellFailure", "SweepCell", "run_cells", "maybe_profiled"]
