"""Wall-clock benchmark suite — ``python -m repro bench``.

Three measurements, written to ``BENCH_sim.json`` in a stable schema
(``escort-bench/1``) so the perf trajectory is tracked across PRs:

1. **Event-loop throughput** (events/sec): a synthetic event mix — future
   timers, timer churn with cancellation, zero-delay hand-off chains — run
   on the current :class:`repro.sim.engine.Simulator` and on
   :class:`_LegacySimulator`, a faithful copy of the engine as it stood
   before the hot-path work (object heap, helper-per-pop, no fast lane).
   The ratio is the engine speedup, measured on the same machine in the
   same process.
2. **End-to-end run wall-clock**: one representative Figure-9-style cell
   (accounting config, SYN flood) through the full snapshot driver.
3. **Sweep wall-clock** at 1/2/4 workers on a small Figure-9 grid, giving
   the parallel-efficiency numbers for this host.

Timings use the best of N repetitions (minimum is the standard estimator
for noisy wall-clock measurement); simulated results are deterministic, so
repetitions only de-noise the clock, never the workload.
"""

from __future__ import annotations

import heapq
import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator

SCHEMA = "escort-bench/1"


# ----------------------------------------------------------------------
# The pre-optimization engine, kept verbatim as the comparison baseline
# ----------------------------------------------------------------------
class _LegacyEvent:
    __slots__ = ("time", "seq", "fn", "cancelled", "sim")

    def __init__(self, time, seq, fn, sim=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.sim = sim

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        if self.sim is not None:
            self.sim._note_cancel()

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class _LegacySimulator:
    """The event loop as shipped before this PR (baseline for speedup)."""

    COMPACT_MIN_QUEUE = 64

    def __init__(self):
        self.now = 0
        self._queue: List[_LegacyEvent] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled_pending = 0
        self.compactions = 0

    def schedule(self, delay, fn):
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn)

    def at(self, time_, fn):
        if time_ < self.now:
            raise ValueError(f"cannot schedule in the past: {time_} < {self.now}")
        self._seq += 1
        ev = _LegacyEvent(time_, self._seq, fn, sim=self)
        heapq.heappush(self._queue, ev)
        return ev

    def _note_cancel(self):
        self._cancelled_pending += 1
        if (self._cancelled_pending * 2 > len(self._queue)
                and len(self._queue) >= self.COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self):
        self._queue = [ev for ev in self._queue if not ev.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self.compactions += 1

    def _pop_cancelled(self):
        heapq.heappop(self._queue)
        if self._cancelled_pending > 0:
            self._cancelled_pending -= 1

    def step(self):
        while self._queue:
            if self._queue[0].cancelled:
                self._pop_cancelled()
                continue
            ev = heapq.heappop(self._queue)
            self.now = ev.time
            self._events_processed += 1
            ev.fn()
            return True
        return False

    def run(self):
        while self.step():
            pass

    @property
    def events_processed(self):
        return self._events_processed


# ----------------------------------------------------------------------
# Microbench: the synthetic event mix
# ----------------------------------------------------------------------
def _drive_event_mix(sim, n_rounds: int) -> int:
    """Schedule and run a representative mix; returns events executed.

    Per round: a burst of future timers (the CPU-chunk pattern), a timer
    that is cancelled before firing (the TCP-retransmit pattern), and a
    zero-delay hand-off chain (the module-graph pattern).
    """
    counter = [0]

    def tick():
        counter[0] += 1

    def chain(depth):
        counter[0] += 1
        if depth:
            sim.schedule(0, lambda: chain(depth - 1))

    for i in range(n_rounds):
        base = 10 + (i % 97)
        for j in range(8):
            sim.schedule(base + j * 3, tick)
        victim = sim.schedule(base + 1000, tick)
        sim.schedule(base, lambda v=victim: v.cancel())
        sim.schedule(base + 2, lambda: chain(4))
    sim.run()
    return sim.events_processed


def _best_of(fn: Callable[[], float], reps: int) -> float:
    return min(fn() for _ in range(max(1, reps)))


def bench_event_loop(n_rounds: int = 20_000, reps: int = 3) -> Dict:
    """Current vs legacy engine on the same synthetic mix."""
    def time_engine(make_sim):
        def once() -> float:
            sim = make_sim()
            t0 = time.perf_counter()
            _drive_event_mix(sim, n_rounds)
            return time.perf_counter() - t0
        return once

    current_s = _best_of(time_engine(Simulator), reps)
    legacy_s = _best_of(time_engine(_LegacySimulator), reps)
    # Event counts are identical by construction; take one for the rate.
    events = _drive_event_mix(Simulator(), n_rounds)
    current_eps = events / current_s
    legacy_eps = events / legacy_s
    return {
        "events": events,
        "wall_s": round(current_s, 4),
        "events_per_sec": round(current_eps),
        "legacy_wall_s": round(legacy_s, 4),
        "legacy_events_per_sec": round(legacy_eps),
        "speedup_vs_legacy": round(current_eps / legacy_eps, 3),
    }


# ----------------------------------------------------------------------
# End-to-end run
# ----------------------------------------------------------------------
def bench_end_to_end(clients: int = 8, syn_rate: int = 1000,
                     warmup_s: float = 0.3, measure_s: float = 1.0,
                     reps: int = 2) -> Dict:
    """One representative experiment cell through the snapshot driver."""
    from repro.snapshot.driver import RunDriver
    from repro.snapshot.runs import ExperimentRun, reset_ids

    stats = {}

    def once() -> float:
        reset_ids()
        run = ExperimentRun("accounting", clients=clients,
                            syn_rate=syn_rate, untrusted_cap=8,
                            warmup_s=warmup_s, measure_s=measure_s)
        driver = RunDriver(run)
        t0 = time.perf_counter()
        driver.run_all()
        dt = time.perf_counter() - t0
        stats["events"] = driver.sim.events_processed
        stats["queue_health"] = driver.sim.queue_health()
        attacker = getattr(run.bed, "syn_attacker", None)
        pool = getattr(attacker, "pool", None)
        if pool is not None:
            stats["freelist"] = pool.stats()
        return dt

    wall = _best_of(once, reps)
    return {
        "clients": clients,
        "syn_rate": syn_rate,
        "simulated_s": warmup_s + measure_s,
        "wall_s": round(wall, 4),
        "events": stats["events"],
        "events_per_sec": round(stats["events"] / wall),
        "queue_health": stats["queue_health"],
        "freelist": stats.get("freelist"),
    }


# ----------------------------------------------------------------------
# Observability overhead
# ----------------------------------------------------------------------
def bench_obs_overhead(clients: int = 8, reps: int = 2,
                       quick: bool = False) -> Dict:
    """Events/sec of one adaptive defense cell, obs-off vs obs-on.

    The obs-on leg attaches a full :class:`~repro.obs.session.ObsSession`
    with a flight-recorder sidecar in a temp directory — the worst case a
    user can switch on with ``--obs``.  Reports the throughput fraction
    lost and whether the two legs' state digests matched (they must: the
    session is a pure observer).  ``python -m repro bench --obs-overhead
    --obs-budget 0.05`` gates on the fraction.
    """
    import shutil
    import tempfile

    from repro.defense.run import DefenseRun
    from repro.obs import ObsSession
    from repro.snapshot.driver import RunDriver
    from repro.snapshot.runs import reset_ids

    kw = dict(adaptive=True, seed=1, clients=clients,
              syn_rate=200, syn_ramp_to=3000, syn_ramp_s=1.0,
              warmup_s=0.2 if quick else 0.4,
              measure_s=0.6 if quick else 1.5)
    stats: Dict = {}

    def once(obs: bool) -> float:
        reset_ids()
        run = DefenseRun("synflood", **kw)
        driver = RunDriver(run)
        session = None
        obs_dir = None
        if obs:
            obs_dir = tempfile.mkdtemp(prefix="bench-obs-")
            session = ObsSession(obs_dir).attach(driver)
        t0 = time.perf_counter()
        driver.run_all()
        dt = time.perf_counter() - t0
        key = "on" if obs else "off"
        stats[f"events_{key}"] = driver.sim.events_processed
        stats[f"digest_{key}"] = run.digest()
        if session is not None:
            session.finish()
            shutil.rmtree(obs_dir, ignore_errors=True)
        return dt

    wall_off = _best_of(lambda: once(False), reps)
    wall_on = _best_of(lambda: once(True), reps)
    eps_off = stats["events_off"] / wall_off
    eps_on = stats["events_on"] / wall_on
    return {
        "events": stats["events_off"],
        "baseline_wall_s": round(wall_off, 4),
        "obs_wall_s": round(wall_on, 4),
        "baseline_events_per_sec": round(eps_off),
        "obs_events_per_sec": round(eps_on),
        "overhead_frac": round(max(0.0, 1.0 - eps_on / eps_off), 4),
        "digests_identical": stats["digest_off"] == stats["digest_on"],
    }


# ----------------------------------------------------------------------
# Sweep scaling
# ----------------------------------------------------------------------
def bench_sweep(worker_counts=(1, 2, 4), quick: bool = False) -> Dict:
    """Figure-9 grid wall-clock at several worker counts."""
    from repro.experiments.figure9 import run_figure9

    kw = dict(client_counts=(2, 4) if quick else (4, 8, 16),
              configs=("accounting",) if quick else
                      ("accounting", "accounting_pd"),
              syn_rate=500,
              warmup_s=0.2 if quick else 0.4,
              measure_s=0.3 if quick else 0.8)
    n_cells = (len(kw["client_counts"]) * len(kw["configs"]) * 2)

    walls: Dict[str, float] = {}
    reference = None
    for workers in worker_counts:
        t0 = time.perf_counter()
        result = run_figure9(workers=workers, **kw)
        walls[str(workers)] = round(time.perf_counter() - t0, 4)
        blob = json.dumps([result.series, result.syn_stats], sort_keys=True)
        if reference is None:
            reference = blob
        elif blob != reference:
            raise AssertionError(
                f"sweep at workers={workers} diverged from serial results")
    out = {"cells": n_cells, "wall_s": walls,
           "results_identical_across_worker_counts": True}
    if "1" in walls and "4" in walls and walls["4"] > 0:
        out["speedup_4_workers"] = round(walls["1"] / walls["4"], 3)
    if "1" in walls and "2" in walls and walls["2"] > 0:
        out["speedup_2_workers"] = round(walls["1"] / walls["2"], 3)
    return out


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_bench(quick: bool = False, output: str = "BENCH_sim.json",
              skip_sweep: bool = False, skip_micro: bool = False,
              obs_overhead: bool = False) -> Dict:
    """Run the full suite and write ``BENCH_sim.json``."""
    report = {
        "schema": SCHEMA,
        "quick": bool(quick),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "event_loop": bench_event_loop(
            n_rounds=4_000 if quick else 20_000,
            reps=2 if quick else 3),
        "end_to_end": bench_end_to_end(
            clients=4 if quick else 8,
            warmup_s=0.2 if quick else 0.3,
            measure_s=0.3 if quick else 1.0,
            reps=1 if quick else 2),
    }
    if obs_overhead:
        report["obs_overhead"] = bench_obs_overhead(
            clients=4 if quick else 8,
            reps=1 if quick else 2, quick=quick)
    if not skip_micro:
        from repro.perf.microbench import run_microbench
        report["microbench"] = run_microbench(quick=quick)
    if not skip_sweep:
        report["sweep"] = bench_sweep(
            worker_counts=(1, 2) if quick else (1, 2, 4), quick=quick)
    if output:
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def alloc_profile(clients: int = 4, syn_rate: int = 1000,
                  top: int = 12) -> Dict:
    """Profile allocation sites of one end-to-end run via tracemalloc.

    Backs ``python -m repro bench --alloc-profile``.  Runs several times
    slower than the plain bench (tracemalloc hooks every allocation), so
    it is an on-demand diagnostic, never part of the gated suite.
    """
    import tracemalloc

    from repro.snapshot.driver import RunDriver
    from repro.snapshot.runs import ExperimentRun, reset_ids

    reset_ids()
    run = ExperimentRun("accounting", clients=clients, syn_rate=syn_rate,
                        untrusted_cap=8, warmup_s=0.2, measure_s=0.3)
    driver = RunDriver(run)
    tracemalloc.start(10)
    before = tracemalloc.take_snapshot()
    driver.run_all()
    after = tracemalloc.take_snapshot()
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    events = driver.sim.events_processed
    sites = []
    for stat in after.compare_to(before, "lineno")[:top]:
        frame = stat.traceback[0]
        sites.append({
            "site": f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}",
            "size_kib": round(stat.size_diff / 1024, 1),
            "count": stat.count_diff,
        })
    return {
        "events": events,
        "peak_kib": round(peak / 1024, 1),
        "retained_kib": round(current / 1024, 1),
        "bytes_per_event": round(peak / max(1, events), 1),
        "top_sites": sites,
    }


def format_alloc_profile(profile: Dict) -> str:
    """Human-readable allocation-site table."""
    lines = [f"alloc profile: {profile['events']:,} events, "
             f"peak {profile['peak_kib']:,.0f} KiB "
             f"({profile['bytes_per_event']:.0f} B/event), "
             f"retained {profile['retained_kib']:,.0f} KiB",
             f"  {'size':>10}  {'count':>9}  site"]
    for site in profile["top_sites"]:
        lines.append(f"  {site['size_kib']:>8,.1f}K  {site['count']:>9,}  "
                     f"{site['site']}")
    return "\n".join(lines)


def format_report(report: Dict) -> str:
    """Human-readable one-screen summary of a bench report."""
    lines = [f"bench ({report['schema']}, "
             f"{report['host']['cpu_count']} cpus, "
             f"python {report['host']['python']})"]
    ev = report["event_loop"]
    lines.append(f"  event loop    {ev['events_per_sec']:>12,} ev/s   "
                 f"({ev['speedup_vs_legacy']:.2f}x vs pre-PR engine at "
                 f"{ev['legacy_events_per_sec']:,} ev/s)")
    e2e = report["end_to_end"]
    lines.append(f"  end-to-end    {e2e['wall_s']:>10.3f} s     "
                 f"({e2e['events']:,} events, "
                 f"{e2e['events_per_sec']:,} ev/s)")
    obs = report.get("obs_overhead")
    if obs:
        match = "identical" if obs["digests_identical"] else "DIVERGED"
        lines.append(f"  obs overhead  {obs['overhead_frac']:>11.1%}      "
                     f"({obs['obs_events_per_sec']:,} ev/s on vs "
                     f"{obs['baseline_events_per_sec']:,} off; "
                     f"digests {match})")
    micro = report.get("microbench")
    if micro:
        churn = micro["timer_churn"]
        lines.append(f"  timer churn   {churn['wheel_ops_per_sec']:>12,} op/s  "
                     f"({churn['wheel_speedup']:.2f}x vs heap at "
                     f"{churn['heap_ops_per_sec']:,} op/s, "
                     f"{churn['cancelled_fraction']:.0%} cancelled)")
        demux = micro["demux"]
        lines.append(f"  demux         {demux['classifications_per_sec']:>12,} cls/s  "
                     f"({demux['modules_consulted']} modules per packet)")
        alloc = micro["alloc_rate"]
        lines.append(f"  alloc rate    {alloc['bytes_per_event']:>12,.0f} B/ev   "
                     f"(peak {alloc['peak_kib']:,.0f} KiB over "
                     f"{alloc['events']:,} events)")
    sweep = report.get("sweep")
    if sweep:
        per_w = ", ".join(f"{w}w={s:.2f}s"
                          for w, s in sorted(sweep["wall_s"].items()))
        extra = ""
        if "speedup_4_workers" in sweep:
            extra = f"   (4-worker speedup {sweep['speedup_4_workers']:.2f}x)"
        lines.append(f"  sweep         {sweep['cells']} cells: {per_w}{extra}")
    return "\n".join(lines)
