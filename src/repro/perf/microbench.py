"""Targeted microbenchmarks for the simulator hot paths.

Three measurements, each isolating one layer the end-to-end benchmark
mixes together, reported as a ``microbench`` section of ``BENCH_sim.json``:

* **Timer churn** — the schedule-then-cancel pattern of TCP retransmit
  and health-probe timers, run A/B on the hierarchical timing wheel and
  on the plain binary heap.  This is the number to watch when tuning
  ``MIN_WHEEL_DELAY``: cancelled wheel entries never touch the heap, but
  wheel placement is Python-level arithmetic while ``heapq`` is C, so
  the wheel trades raw churn throughput for its O(1) worst-case cancel
  (no compaction pauses).  The A/B keeps that trade measured instead of
  assumed.
* **Demux dispatch** — repeated incremental demultiplexing of one spoofed
  SYN frame through the eth -> ip -> tcp module chain of a freshly booted
  server.  ``classify`` is side-effect free, so one frame can be
  classified arbitrarily often; this is the per-packet cost the paper's
  early-drop defense story rides on.
* **Allocation rate** — the synthetic event mix under :mod:`tracemalloc`,
  reporting bytes allocated per simulated event and the top allocation
  sites.  This is the regression guard for the free-list/pooling work:
  pooling wins show up here before they show up in wall-clock.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Dict, List

from repro.sim.engine import Simulator
from repro.sim.wheel import MIN_WHEEL_DELAY


def _best_of(fn: Callable[[], float], reps: int) -> float:
    return min(fn() for _ in range(max(1, reps)))


# ----------------------------------------------------------------------
# Timer churn: the wheel's cancel-heavy band
# ----------------------------------------------------------------------
def bench_timer_churn(n_timers: int = 50_000, cancel_every: int = 10,
                      reps: int = 3) -> Dict:
    """Schedule long-delay timers, cancel most, fire the rest — A/B on
    the timing wheel vs the plain heap.

    Nine of every ten timers are cancelled before firing (the retransmit
    pattern: almost every armed RTO is disarmed by the ACK).  A speedup
    below 1.0 means the C-implemented lazy-deletion heap is out-running
    the Python-level wheel on this host — expected on CPython; the wheel
    buys bounded worst-case cancel cost, not mean throughput.
    """
    spread = 1 << 12  # one wheel slot

    def once(use_wheel: bool) -> float:
        sim = Simulator(timer_wheel=use_wheel)
        fired = [0]

        def tick() -> None:
            fired[0] += 1

        t0 = time.perf_counter()
        events = [sim.schedule(MIN_WHEEL_DELAY + (i % 1024) * spread, tick)
                  for i in range(n_timers)]
        for i, ev in enumerate(events):
            if i % cancel_every:
                ev.cancel()
        sim.run(sim.now + MIN_WHEEL_DELAY + 1024 * spread + 1)
        return time.perf_counter() - t0

    wheel_s = _best_of(lambda: once(True), reps)
    heap_s = _best_of(lambda: once(False), reps)
    # One schedule plus one cancel-or-fire per timer.
    ops = n_timers * 2
    return {
        "timers": n_timers,
        "cancelled_fraction": round(1 - 1 / cancel_every, 3),
        "wheel_wall_s": round(wheel_s, 4),
        "heap_wall_s": round(heap_s, 4),
        "wheel_ops_per_sec": round(ops / wheel_s),
        "heap_ops_per_sec": round(ops / heap_s),
        "wheel_speedup": round(heap_s / wheel_s, 3),
    }


# ----------------------------------------------------------------------
# Demux dispatch: the early-drop hot path
# ----------------------------------------------------------------------
def bench_demux(n_classifications: int = 30_000, reps: int = 3) -> Dict:
    """Classify one spoofed SYN frame repeatedly through a booted server."""
    from repro.experiments.harness import SERVER_IP, Testbed
    from repro.net.packet import (
        ETHERTYPE_IP, EthFrame, FLAG_SYN, IPDatagram, IPPROTO_TCP,
        TCPSegment)
    from repro.sim.clock import seconds_to_ticks

    bed = Testbed.escort(accounting=True, protection_domains=False)
    bed.server.boot()
    # Let the boot-time listen paths finish assembling.
    bed.sim.run(bed.sim.now + seconds_to_ticks(0.05))

    seg = TCPSegment(4321, 80, seq=0, ack=0, flags=FLAG_SYN)
    dgram = IPDatagram("10.9.0.5", SERVER_IP, IPPROTO_TCP, seg)
    frame = EthFrame(bed.server.nic.mac, bed.server.nic.mac,
                     ETHERTYPE_IP, dgram)
    demux = bed.server.demultiplexer
    eth = bed.server.eth
    first = demux.classify(eth, frame)

    def once() -> float:
        classify = demux.classify
        t0 = time.perf_counter()
        for _ in range(n_classifications):
            classify(eth, frame)
        return time.perf_counter() - t0

    wall = _best_of(once, reps)
    return {
        "classifications": n_classifications,
        "result_kind": first.kind,
        "modules_consulted": first.modules_consulted,
        "wall_s": round(wall, 4),
        "classifications_per_sec": round(n_classifications / wall),
    }


# ----------------------------------------------------------------------
# Allocation rate: tracemalloc over the synthetic event mix
# ----------------------------------------------------------------------
def bench_alloc_rate(n_rounds: int = 2_000, top: int = 5) -> Dict:
    """Bytes allocated per simulated event, plus the top allocation sites.

    Runs under :mod:`tracemalloc` (several times slower than native), so
    the wall-clock here is *not* comparable to the other benches — only
    the allocation counts matter.
    """
    from repro.perf.bench import _drive_event_mix

    tracemalloc.start()
    base_current, _ = tracemalloc.get_traced_memory()
    before = tracemalloc.take_snapshot()
    sim = Simulator()
    events = _drive_event_mix(sim, n_rounds)
    after = tracemalloc.take_snapshot()
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    stats = after.compare_to(before, "lineno")
    sites: List[Dict] = []
    for stat in stats[:top]:
        frame = stat.traceback[0]
        sites.append({
            "site": f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}",
            "size_kib": round(stat.size_diff / 1024, 1),
            "count": stat.count_diff,
        })
    return {
        "events": events,
        "peak_kib": round((peak - base_current) / 1024, 1),
        "retained_kib": round((current - base_current) / 1024, 1),
        "bytes_per_event": round((peak - base_current) / max(1, events), 1),
        "top_sites": sites,
    }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_microbench(quick: bool = False) -> Dict:
    """The full microbench section (see module docstring)."""
    scale = 5 if quick else 1
    return {
        "timer_churn": bench_timer_churn(
            n_timers=50_000 // scale, reps=2 if quick else 3),
        "demux": bench_demux(
            n_classifications=30_000 // scale, reps=2 if quick else 3),
        "alloc_rate": bench_alloc_rate(n_rounds=2_000 // scale),
    }
