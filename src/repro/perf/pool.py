"""Parallel sweep execution over a process pool.

A sweep is a list of :class:`SweepCell` values, each naming a registered
cell runner (see :mod:`repro.perf.cells`) plus its JSON-able parameters.
:func:`run_cells` executes them — serially by default, or fanned out over
a ``ProcessPoolExecutor`` — and returns ``{cell.key: result}``.

Determinism contract:

* Workers share nothing.  Each cell rebuilds its simulated machine from
  scratch inside its own process, after :func:`repro.snapshot.runs.reset_ids`,
  so object ids (and everything derived from them) are identical no matter
  which worker runs the cell or in what order.  The serial path resets ids
  the same way, making serial and parallel sweeps byte-identical per cell.
* Results are merged in submission (cell-list) order, not completion
  order, so the returned mapping is independent of scheduling.
* Only ``(runner-name, params)`` crosses the process boundary — no
  closures, no machine state — which keeps cells picklable and workers
  restartable.

A pre-populated ``cache`` (e.g. the figure9 ``figure9-cells.ckpt`` cell
cache) short-circuits finished cells, so a resumed parallel sweep only
runs what is missing; ``on_cell_done`` fires as cells finish (completion
order) so callers can persist the cache crash-safely.

Failure containment: a worker process dying (OOM-kill, segfault) breaks
a ``ProcessPoolExecutor``, poisoning every in-flight future.  Rather
than aborting the sweep, :func:`run_cells` requeues each affected cell
once into its own fresh single-worker pool — innocent victims of a
neighbour's crash complete normally there — and a cell whose worker dies
twice (or that raises) is surfaced as a :class:`CellFailure` value in
the result mapping.  Failures are never cached and never passed to
``on_cell_done``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a registered runner plus its parameters."""

    #: Stable unique identity — cache key and merge position.
    key: str
    #: Name in :data:`repro.perf.cells.CELL_RUNNERS`.
    runner: str
    #: JSON-able keyword arguments for the runner.
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellFailure:
    """A cell that could not produce a result — surfaced, not raised.

    Appears as the cell's value in the mapping :func:`run_cells` returns,
    so one dying worker (OOM-killed, segfaulted) costs its own cell, not
    the whole sweep.  ``kind`` is ``"worker-crash"`` when the hosting
    process died (the cell was requeued once into a fresh single-worker
    pool first) or ``"exception"`` when the cell itself raised.
    """

    key: str
    runner: str
    kind: str
    error: str
    requeued: bool = False


def _run_cell_job(runner: str, params: Dict[str, Any]) -> Any:
    """Worker entry point: import the registry, reset ids, run the cell."""
    from repro.perf import cells
    return cells.run_cell(runner, params)


def run_cells(cells_seq: Sequence[SweepCell], workers: int = 0,
              cache: Optional[Dict[str, Any]] = None,
              on_cell_done: Optional[Callable[[SweepCell, Any], None]] = None,
              ) -> Dict[str, Any]:
    """Execute a sweep; returns ``{key: result}`` in cell-list order.

    ``workers <= 1`` runs serially in-process.  ``cache`` maps cell keys to
    already-computed results; cached cells are returned without running and
    without invoking ``on_cell_done`` (they were already persisted).
    """
    cells_list = list(cells_seq)
    keys = [c.key for c in cells_list]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate sweep cell keys: {dupes}")
    cache = cache or {}
    todo = [c for c in cells_list if c.key not in cache]

    results: Dict[str, Any] = {}
    if workers and workers > 1 and todo:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
        from concurrent.futures import wait as futures_wait
        from concurrent.futures.process import BrokenProcessPool

        broken_keys = set()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_cell_job, c.runner, c.params): c
                       for c in todo}
            # Drain in completion order so on_cell_done can persist the
            # cache incrementally (crash-resumable sweeps); the final merge
            # below restores deterministic order regardless.
            pending = set(futures)
            while pending:
                done, pending = futures_wait(pending,
                                             return_when=FIRST_COMPLETED)
                for fut in done:
                    cell = futures[fut]
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        # A worker died (SIGKILL, OOM, segfault) and took
                        # the whole pool with it; every in-flight cell
                        # lands here, killer and innocent victims alike.
                        broken_keys.add(cell.key)
                        continue
                    except Exception as exc:
                        # The cell itself raised — deterministic, so a
                        # retry would change nothing.  Record and go on.
                        results[cell.key] = CellFailure(
                            cell.key, cell.runner, "exception",
                            repr(exc)[:500])
                        continue
                    results[cell.key] = result
                    if on_cell_done is not None:
                        on_cell_done(cell, result)
        # Requeue each broken-pool cell once, isolated in its own
        # single-worker pool: an innocent victim completes normally, a
        # repeat-killer can only abandon itself.
        for cell in (c for c in todo if c.key in broken_keys):
            try:
                with ProcessPoolExecutor(max_workers=1) as solo:
                    result = solo.submit(_run_cell_job, cell.runner,
                                         cell.params).result()
            except BrokenProcessPool:
                results[cell.key] = CellFailure(
                    cell.key, cell.runner, "worker-crash",
                    "worker process died running this cell twice "
                    "(killed by the OS?); cell abandoned", requeued=True)
                continue
            except Exception as exc:
                results[cell.key] = CellFailure(
                    cell.key, cell.runner, "exception", repr(exc)[:500],
                    requeued=True)
                continue
            results[cell.key] = result
            if on_cell_done is not None:
                on_cell_done(cell, result)
    else:
        for cell in todo:
            result = _run_cell_job(cell.runner, cell.params)
            results[cell.key] = result
            if on_cell_done is not None:
                on_cell_done(cell, result)

    return {c.key: (cache[c.key] if c.key in cache else results[c.key])
            for c in cells_list}


def parse_workers(value) -> int:
    """Validate a ``--workers`` argument (0/1 = serial)."""
    n = int(value)
    if n < 0:
        raise ValueError(f"workers must be >= 0, got {n}")
    return n
