"""Web-server build configurations (paper section 4.1.1).

:class:`~repro.server.webserver.ScoutWebServer` assembles the Figure 1
module graph over an Escort kernel.  The three Scout-based configurations
the paper measures differ only in two kernel switches:

* **Scout** — no accounting, single protection domain;
* **Accounting** — accounting on, single protection domain;
* **Accounting_PD** — accounting on, one protection domain per module
  (Figure 3, the worst case).

The Linux/Apache baseline lives in :mod:`repro.linux`.
"""

from repro.server.webserver import ScoutWebServer, DEFAULT_DOCUMENTS

__all__ = ["ScoutWebServer", "DEFAULT_DOCUMENTS"]
