"""Assembling the Scout web server.

Builds the module graph of Figure 1 — SCSI, FS, HTTP, TCP, IP, ARP, ETH —
over an Escort kernel, with protection domains assigned per configuration:
everything in the privileged domain for the single-domain configurations,
or one domain per module for Accounting_PD (Figure 3, "the maximum
possible separation").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.clock import millis_to_ticks
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.core.demux import Demultiplexer
from repro.core.lifecycle import PathManager
from repro.kernel.acl import Role
from repro.kernel.kernel import Kernel, KernelConfig
from repro.modules.arp import ArpModule
from repro.modules.eth import EthModule
from repro.modules.filters import FilterModule
from repro.modules.fs import FsModule
from repro.modules.graph import ModuleGraph
from repro.modules.http import HttpModule, ListenSpec
from repro.modules.icmp import IcmpModule
from repro.modules.udp import UdpModule
from repro.modules.ip import IpModule
from repro.modules.scsi import ScsiModule
from repro.modules.tcp import TcpModule
from repro.net.link import NIC

#: The document set served in the paper's experiments.
DEFAULT_DOCUMENTS = {
    "/doc-1": 1,
    "/doc-1k": 1024,
    "/doc-10k": 10 * 1024,
    "/stream-meta": 64,
}

#: Graph positions (network end low, disk end high; gaps leave room for
#: filters).
POSITIONS = {"eth": 0, "arp": 5, "ip": 10, "icmp": 12, "udp": 14,
             "tcp": 20, "http": 30, "fs": 40, "scsi": 50}


class ScoutWebServer:
    """One simulated Escort machine configured as a web server."""

    def __init__(self, sim: Simulator, *,
                 accounting: bool = True,
                 protection_domains: bool = False,
                 scheduler: str = "proportional",
                 ip: str = "10.0.0.80",
                 documents: Optional[Dict[str, int]] = None,
                 cgi_scripts: Optional[Dict[str, Callable]] = None,
                 listen_specs: Optional[List[ListenSpec]] = None,
                 filters: Optional[List[FilterModule]] = None,
                 costs: Optional[CostModel] = None,
                 server_delack_ms: float = 50.0,
                 domain_groups: Optional[List[List[str]]] = None):
        self.sim = sim
        self.ip = ip
        config = KernelConfig(accounting=accounting,
                              protection_domains=protection_domains,
                              scheduler=scheduler,
                              costs=costs or CostModel.default())
        self.kernel = Kernel(sim, config)
        self.graph = ModuleGraph(self.kernel)
        self.demultiplexer = Demultiplexer(self.kernel, self.graph)
        self.path_manager = PathManager(self.kernel, self.graph)
        self.nic = NIC(sim, label=f"server-{ip}")

        # -- protection domain placement --------------------------------
        # Default: "the maximum possible separation" (Figure 3), one
        # domain per module.  ``domain_groups`` lets the system builder
        # combine modules — the paper suggests TCP, IP and ETH might
        # reasonably share one domain, with much lower crossing cost.
        group_of = {}
        for group in (domain_groups or []):
            shared = None
            for name in group:
                if shared is None:
                    shared = name
                group_of[name] = shared
        created = {}

        def domain_for(name: str, role: Role):
            if not protection_domains:
                return self.kernel.privileged_domain
            anchor = group_of.get(name, name)
            if anchor not in created:
                created[anchor] = self.kernel.create_domain(
                    f"pd-{anchor}", role=role)
            return created[anchor]

        pd_eth = domain_for("eth", Role.driver())
        pd_arp = domain_for("arp", Role.module())
        pd_ip = domain_for("ip", Role.module())
        pd_icmp = domain_for("icmp", Role.module())
        pd_udp = domain_for("udp", Role.module())
        pd_tcp = domain_for("tcp", Role.module())
        pd_http = domain_for("http", Role.module())
        pd_fs = domain_for("fs", Role.module())
        pd_scsi = domain_for("scsi", Role.driver())

        # -- modules -----------------------------------------------------
        self.eth = EthModule(self.kernel, "eth", pd_eth)
        self.arp = ArpModule(self.kernel, "arp", pd_arp, local_ip=ip)
        self.ip_mod = IpModule(self.kernel, "ip", pd_ip, local_ip=ip)
        self.icmp = IcmpModule(self.kernel, "icmp", pd_icmp)
        self.udp = UdpModule(self.kernel, "udp", pd_udp, local_ip=ip)
        self.tcp = TcpModule(
            self.kernel, "tcp", pd_tcp, local_ip=ip,
            server_delack_ticks=millis_to_ticks(server_delack_ms))
        self.http = HttpModule(self.kernel, "http", pd_http,
                               listen_specs=listen_specs,
                               cgi_scripts=cgi_scripts)
        self.fs = FsModule(self.kernel, "fs", pd_fs,
                           documents=documents or dict(DEFAULT_DOCUMENTS))
        self.scsi = ScsiModule(self.kernel, "scsi", pd_scsi)

        for module in (self.eth, self.arp, self.ip_mod, self.icmp,
                       self.udp, self.tcp, self.http, self.fs,
                       self.scsi):
            self.graph.add(module, POSITIONS[module.name])

        self.graph.connect("eth", "arp")
        self.graph.connect("eth", "ip")
        self.graph.connect("ip", "tcp")
        self.graph.connect("ip", "icmp")
        self.graph.connect("ip", "udp")
        self.graph.connect("tcp", "http")
        self.graph.connect("http", "fs")
        self.graph.connect("fs", "scsi")

        # Optional policy filters (pre-positioned by the caller).
        self.filters = filters or []

        # Wire kernel services into the modules that create paths.
        self.arp.path_manager = self.path_manager
        self.icmp.path_manager = self.path_manager
        self.udp.path_manager = self.path_manager
        self.tcp.path_manager = self.path_manager
        self.http.path_manager = self.path_manager
        self.eth.bind(self.nic, self.demultiplexer)

        #: Attached by AdaptivePolicy: the closed-loop defense controller.
        self.defense = None

        self.booted = False

    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Start the kernel and initialize every module in its domain."""
        if self.booted:
            return
        self.booted = True
        self.kernel.boot()
        self.graph.boot()

    def attach_network(self, medium) -> None:
        medium.attach(self.nic)

    def seed_arp(self, ip: str, mac) -> None:
        self.arp.seed(ip, mac)

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    @property
    def costs(self) -> CostModel:
        return self.kernel.costs

    def passive_path(self, index: int = 0):
        return self.http.passive_paths[index]

    def active_paths(self) -> List:
        return [p for p in self.tcp.conn_table.values() if not p.destroyed]

    def half_open(self) -> int:
        """Connections in SYN_RCVD across the listeners (defense signal)."""
        return self.tcp.half_open()

    @property
    def degrade_level(self) -> int:
        return self.http.degrade_level

    def set_degrade_level(self, level: int) -> None:
        """Graceful-degradation actuator (defense ladder rung 4)."""
        self.http.degrade_level = level

    def describe(self) -> str:
        cfg = self.kernel.config
        kind = ("Accounting_PD" if cfg.protection_domains
                else "Accounting" if cfg.accounting else "Scout")
        return (f"{kind} web server at {self.ip} "
                f"({len(self.kernel.domains)} domains, "
                f"{cfg.scheduler} scheduler)")
