"""Path attributes.

``pathCreate`` "takes a set of attributes and a starting module as
arguments.  The attributes define invariants for the path; e.g., the port
number and IP address for the peer" (paper section 2.2).  Modules consult
the attributes in their ``open`` functions to decide how to specialize
their stage and which neighbour module the path extends to next.

Attributes are immutable once the path is created — they are invariants —
so this class freezes after construction.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional


class Attributes:
    """An immutable, typed-by-convention attribute set.

    Well-known keys used by the web-server configuration:

    * ``local_port`` / ``peer_ip`` / ``peer_port`` — TCP endpoint invariants
    * ``listen`` — True for passive (listening) paths
    * ``subnet`` — the source subnet a passive path accepts SYNs from
    * ``document_root`` — HTTP serving root
    * ``qos_bandwidth`` — bytes/second reservation for a QoS path
    """

    def __init__(self, values: Optional[Mapping[str, Any]] = None, **kwargs):
        merged: Dict[str, Any] = {}
        if values:
            merged.update(values)
        merged.update(kwargs)
        object.__setattr__(self, "_values", merged)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("path attributes are immutable invariants")

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def require(self, key: str) -> Any:
        """Fetch a mandatory attribute; raises KeyError with context."""
        try:
            return self._values[key]
        except KeyError:
            raise KeyError(f"path attribute {key!r} is required") from None

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def with_values(self, **kwargs) -> "Attributes":
        """A copy with additional/overridden values (builder pattern)."""
        merged = dict(self._values)
        merged.update(kwargs)
        return Attributes(merged)

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"Attributes({inner})"
