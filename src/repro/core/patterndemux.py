"""A pattern-based demultiplexer (the PathFinder alternative).

The base Scout demux "trusts the demux functions contributed by each
module.  Although not yet implemented in Escort, alternative mechanisms —
e.g., pattern-based demultiplexers like PathFinder [2] — would be more
appropriate since they have more liberal trust assumptions" (paper section
2.3).  This module implements that alternative: modules *declare* patterns
— declarative field tests against the packet — and the kernel evaluates
them itself, so no module code runs at interrupt time.

A pattern is a conjunction of :class:`FieldTest` objects over dotted
attribute paths into the packet structure (e.g. ``payload.payload.dst_port``
for the TCP destination port of an Ethernet frame).  Patterns are kept in a
discrimination list per priority: most-specific (longest) patterns match
first, mirroring PathFinder's longest-prefix behaviour.  Guard predicates
allow dynamic policy checks (like the SYN_RCVD cap) without giving modules
interrupt-time code execution: the guard is installed *by the kernel from
the policy*, not contributed by an untrusted module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.demux import Classification, DROP, TO_PATH


_MISSING = object()


def _resolve(packet: Any, path: str) -> Any:
    """Walk a dotted attribute path; _MISSING when any hop is absent."""
    value = packet
    for part in path.split("."):
        value = getattr(value, part, _MISSING)
        if value is _MISSING:
            return _MISSING
    return value


@dataclass(frozen=True)
class FieldTest:
    """One declarative test: packet.<path> (& mask) == value."""

    path: str
    value: Any
    mask: Optional[int] = None

    def matches(self, packet: Any) -> bool:
        actual = _resolve(packet, self.path)
        if actual is _MISSING:
            return False
        if self.mask is not None:
            if not isinstance(actual, int):
                return False
            return (actual & self.mask) == self.value
        return actual == self.value


@dataclass
class Pattern:
    """A conjunction of field tests mapping a packet to a path."""

    tests: Tuple[FieldTest, ...]
    path_for: Callable[[Any], Any]   # packet -> Path (may read state)
    #: Optional kernel-installed guard; returning a string drops the
    #: packet with that reason (the SYN-cap check lives here).
    guard: Optional[Callable[[Any], Optional[str]]] = None
    label: str = ""

    @property
    def specificity(self) -> int:
        return len(self.tests)

    def matches(self, packet: Any) -> bool:
        return all(test.matches(packet) for test in self.tests)


class PatternDemultiplexer:
    """Evaluates declared patterns; no module code runs at interrupt time.

    Drop-in alternative to :class:`~repro.core.demux.Demultiplexer`: the
    same ``classify`` signature (the ``first_module`` argument is accepted
    and ignored — patterns are global), returning the same
    :class:`Classification` records so the ETH driver can charge costs
    identically.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self._patterns: List[Pattern] = []
        self.evaluations = 0

    # ------------------------------------------------------------------
    def register(self, pattern: Pattern) -> Pattern:
        """Install a pattern; most-specific patterns are tried first."""
        self._patterns.append(pattern)
        self._patterns.sort(key=lambda p: -p.specificity)
        return pattern

    def declare(self, tests: Sequence[FieldTest], path_for,
                guard=None, label: str = "") -> Pattern:
        return self.register(Pattern(tuple(tests), path_for,
                                     guard=guard, label=label))

    def unregister(self, pattern: Pattern) -> None:
        try:
            self._patterns.remove(pattern)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._patterns)

    # ------------------------------------------------------------------
    def classify(self, _first_module, packet: Any) -> Classification:
        """Match ``packet`` against the declared patterns.

        Cost accounting: one "module consulted" per pattern evaluated, so
        the cost model remains comparable with the trusting demux; the
        pattern walk never switches protection domains (that is the whole
        point), so ``domain_switches`` is always zero.
        """
        evaluated = 0
        for pattern in self._patterns:
            evaluated += 1
            if not pattern.matches(packet):
                continue
            if pattern.guard is not None:
                reason = pattern.guard(packet)
                if reason is not None:
                    self.evaluations += evaluated
                    return Classification(DROP, reason=reason,
                                          modules_consulted=evaluated)
            target = pattern.path_for(packet)
            if target is None or target.destroyed:
                continue  # stale binding: keep searching
            self.evaluations += evaluated
            return Classification(TO_PATH, path=target, view=packet,
                                  modules_consulted=evaluated)
        self.evaluations += evaluated
        return Classification(DROP, reason="no-pattern",
                              modules_consulted=max(1, evaluated))


# ----------------------------------------------------------------------
# Standard pattern sets for the web-server graph
# ----------------------------------------------------------------------
def install_webserver_patterns(pattern_demux: PatternDemultiplexer,
                               server) -> None:
    """Declare the patterns equivalent to the ETH/IP/TCP demux chain.

    * established connections: exact 4-tuple, resolved through the TCP
      module's connection table;
    * SYNs to a listening port: resolved through the listener's subnet
      map, guarded by the kernel-installed SYN_RCVD cap check;
    * ARP: everything with the ARP ethertype goes to the ARP path.
    """
    from repro.net.packet import (
        ETHERTYPE_ARP,
        ETHERTYPE_IP,
        FLAG_ACK,
        FLAG_SYN,
        IPPROTO_TCP,
    )
    tcp = server.tcp

    def conn_path(frame):
        dgram = frame.payload
        seg = dgram.payload
        return tcp.conn_table.get(
            (seg.dst_port, dgram.src_ip, seg.src_port))

    pattern_demux.declare(
        tests=[FieldTest("ethertype", ETHERTYPE_IP),
               FieldTest("payload.dst_ip", server.ip),
               FieldTest("payload.proto", IPPROTO_TCP)],
        path_for=conn_path,
        label="tcp-connection")

    def syn_path(frame):
        dgram = frame.payload
        seg = dgram.payload
        listener = tcp.listeners.get(seg.dst_port)
        if listener is None:
            return None
        return listener.select(dgram.src_ip)

    def syn_guard(frame):
        dgram = frame.payload
        seg = dgram.payload
        listener = tcp.listeners.get(seg.dst_port)
        if listener is None:
            return "no-listener"
        passive = listener.select(dgram.src_ip)
        if passive is None:
            return "no-subnet"
        cap = passive.policy_state.get("syn_cap")
        if cap is not None \
                and passive.policy_state.get("syn_recvd", 0) >= cap:
            return "syn-cap"
        return None

    pattern_demux.declare(
        tests=[FieldTest("ethertype", ETHERTYPE_IP),
               FieldTest("payload.dst_ip", server.ip),
               FieldTest("payload.proto", IPPROTO_TCP),
               FieldTest("payload.payload.flags", FLAG_SYN,
                         mask=FLAG_SYN | FLAG_ACK)],
        path_for=syn_path,
        guard=syn_guard,
        label="tcp-syn")

    pattern_demux.declare(
        tests=[FieldTest("ethertype", ETHERTYPE_ARP)],
        path_for=lambda frame: server.arp.arp_path,
        label="arp")
