"""Incremental packet demultiplexing (paper section 2.2).

When data arrives on a device the kernel identifies the owning path by
invoking a ``demux`` function on a sequence of modules.  Each module's demux
has three choices: (1) pass the decision to an adjacent module, (2) reject
and drop the data, or (3) return a unique path.  Demux functions are
side-effect free; all state changes happen later, on the path's own thread.

The cost of demultiplexing is central to two results in the paper:

* the SYN-flood policy is effective because floods are "identified as such
  as early as possible and dropped instantly" — i.e. at demux time, before
  any path resources are spent;
* Figure 9's larger slowdown for Accounting_PD comes from TLB misses during
  demux, because each crossing invalidates the whole TLB.

:meth:`Demultiplexer.classify` therefore reports both the outcome and the
cost: modules consulted and domain switches made.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.path import Path
    from repro.kernel.kernel import Kernel
    from repro.modules.base import Module

CONTINUE = "continue"
DROP = "drop"
TO_PATH = "path"


@dataclass
class DemuxResult:
    """What one module's demux function decided."""

    kind: str
    #: CONTINUE: the adjacent module to consult next.
    next_module: Optional[str] = None
    #: CONTINUE: the (possibly re-framed) packet view handed onward.
    view: Any = None
    #: TO_PATH: the identified path.
    path: Optional["Path"] = None
    #: DROP: why (counted per reason by the driver).
    reason: str = ""

    @staticmethod
    def forward(next_module: str, view: Any) -> "DemuxResult":
        return DemuxResult(CONTINUE, next_module=next_module, view=view)

    @staticmethod
    def to_path(path: "Path") -> "DemuxResult":
        return DemuxResult(TO_PATH, path=path)

    @staticmethod
    def drop(reason: str) -> "DemuxResult":
        return DemuxResult(DROP, reason=reason)


@dataclass
class Classification:
    """Outcome plus cost information for one incoming packet."""

    kind: str                       # TO_PATH or DROP
    path: Optional["Path"] = None
    reason: str = ""
    #: The packet view as seen by the final module (handed to the path).
    view: Any = None
    modules_consulted: int = 0
    domain_switches: int = 0

    def demux_cycles(self, kernel: "Kernel") -> int:
        """Cycle cost of this classification under ``kernel``'s config."""
        table = getattr(kernel, "demux_table", None)
        if table is not None:
            return table.cost(self.modules_consulted, self.domain_switches,
                              self.kind == DROP)
        # Stub kernels in unit tests may lack the precomputed table.
        costs = kernel.costs
        cycles = self.modules_consulted * costs.demux_per_module
        if kernel.pd_enabled:
            cycles += self.domain_switches * costs.demux_pd_penalty
        if self.kind == DROP:
            cycles += costs.demux_drop
        return cycles


class Demultiplexer:
    """Walks module demux functions to classify a packet."""

    def __init__(self, kernel: "Kernel", graph):
        self.kernel = kernel
        self.graph = graph
        self.max_hops = 16  # defensive bound against demux cycles

    def classify(self, first_module: "Module", packet: Any) -> Classification:
        """Identify the path for ``packet`` starting at ``first_module``.

        Side-effect free, like the demux functions it calls.
        """
        module = first_module
        view = packet
        consulted = 0
        switches = 0
        prev_pd = None
        for _ in range(self.max_hops):
            consulted += 1
            if prev_pd is not None and module.pd is not prev_pd:
                switches += 1
            prev_pd = module.pd
            result = module.demux(view)
            if result.kind == TO_PATH:
                path = result.path
                if path is None or path.destroyed:
                    return Classification(DROP, reason="dead-path",
                                          modules_consulted=consulted,
                                          domain_switches=switches)
                return Classification(TO_PATH, path=path, view=view,
                                      modules_consulted=consulted,
                                      domain_switches=switches)
            if result.kind == DROP:
                return Classification(DROP, reason=result.reason or "reject",
                                      modules_consulted=consulted,
                                      domain_switches=switches)
            # CONTINUE
            module = self.graph.find(result.next_module)
            view = result.view
        return Classification(DROP, reason="demux-loop",
                              modules_consulted=consulted,
                              domain_switches=switches)
