"""Incremental packet demultiplexing (paper section 2.2).

When data arrives on a device the kernel identifies the owning path by
invoking a ``demux`` function on a sequence of modules.  Each module's demux
has three choices: (1) pass the decision to an adjacent module, (2) reject
and drop the data, or (3) return a unique path.  Demux functions are
side-effect free; all state changes happen later, on the path's own thread.

The cost of demultiplexing is central to two results in the paper:

* the SYN-flood policy is effective because floods are "identified as such
  as early as possible and dropped instantly" — i.e. at demux time, before
  any path resources are spent;
* Figure 9's larger slowdown for Accounting_PD comes from TLB misses during
  demux, because each crossing invalidates the whole TLB.

:meth:`Demultiplexer.classify` therefore reports both the outcome and the
cost: modules consulted and domain switches made.

Hot-path notes: demux runs once per arriving frame, so both result types
are ``__slots__`` classes rather than dataclasses, and the two
high-frequency result shapes are recycled — :meth:`DemuxResult.drop`
interns one immutable instance per drop reason (flood drops produce the
same reason string millions of times), and modules may keep a private
CONTINUE instance alive and refresh it per packet via
:meth:`DemuxResult.refit` (safe because ``classify`` consumes each result
before the next demux call runs).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.path import Path
    from repro.kernel.kernel import Kernel
    from repro.modules.base import Module

CONTINUE = "continue"
DROP = "drop"
TO_PATH = "path"


class DemuxResult:
    """What one module's demux function decided."""

    __slots__ = ("kind", "next_module", "view", "path", "reason")

    #: Interned immutable drop results, keyed by reason.
    _drops: Dict[str, "DemuxResult"] = {}

    def __init__(self, kind: str, next_module: Optional[str] = None,
                 view: Any = None, path: Optional["Path"] = None,
                 reason: str = ""):
        self.kind = kind
        self.next_module = next_module
        self.view = view
        self.path = path
        self.reason = reason

    @staticmethod
    def forward(next_module: str, view: Any) -> "DemuxResult":
        return DemuxResult(CONTINUE, next_module=next_module, view=view)

    @staticmethod
    def to_path(path: "Path") -> "DemuxResult":
        return DemuxResult(TO_PATH, path=path)

    @staticmethod
    def drop(reason: str) -> "DemuxResult":
        cached = DemuxResult._drops.get(reason)
        if cached is None:
            cached = DemuxResult._drops[reason] = DemuxResult(
                DROP, reason=reason)
        return cached

    def refit(self, next_module: str, view: Any) -> "DemuxResult":
        """Re-aim a module-owned CONTINUE result at a new packet view."""
        self.next_module = next_module
        self.view = view
        return self

    def refit_path(self, path: "Path") -> "DemuxResult":
        """Re-aim a module-owned TO_PATH result at a new path."""
        self.path = path
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DemuxResult(kind={self.kind!r}, "
                f"next_module={self.next_module!r}, path={self.path!r}, "
                f"reason={self.reason!r})")


class Classification:
    """Outcome plus cost information for one incoming packet."""

    __slots__ = ("kind", "path", "reason", "view", "modules_consulted",
                 "domain_switches")

    def __init__(self, kind: str, path: Optional["Path"] = None,
                 reason: str = "", view: Any = None,
                 modules_consulted: int = 0, domain_switches: int = 0):
        self.kind = kind
        self.path = path
        self.reason = reason
        #: The packet view as seen by the final module (handed to the path).
        self.view = view
        self.modules_consulted = modules_consulted
        self.domain_switches = domain_switches

    def demux_cycles(self, kernel: "Kernel") -> int:
        """Cycle cost of this classification under ``kernel``'s config."""
        table = getattr(kernel, "demux_table", None)
        if table is not None:
            return table.cost(self.modules_consulted, self.domain_switches,
                              self.kind == DROP)
        # Stub kernels in unit tests may lack the precomputed table.
        costs = kernel.costs
        cycles = self.modules_consulted * costs.demux_per_module
        if kernel.pd_enabled:
            cycles += self.domain_switches * costs.demux_pd_penalty
        if self.kind == DROP:
            cycles += costs.demux_drop
        return cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Classification(kind={self.kind!r}, path={self.path!r}, "
                f"reason={self.reason!r}, "
                f"modules_consulted={self.modules_consulted}, "
                f"domain_switches={self.domain_switches})")


class Demultiplexer:
    """Walks module demux functions to classify a packet."""

    def __init__(self, kernel: "Kernel", graph):
        self.kernel = kernel
        self.graph = graph
        self.max_hops = 16  # defensive bound against demux cycles

    def classify(self, first_module: "Module", packet: Any) -> Classification:
        """Identify the path for ``packet`` starting at ``first_module``.

        Side-effect free, like the demux functions it calls.
        """
        module = first_module
        view = packet
        consulted = 0
        switches = 0
        prev_pd = None
        find = self.graph.find
        for _ in range(self.max_hops):
            consulted += 1
            pd = module.pd
            if prev_pd is not None and pd is not prev_pd:
                switches += 1
            prev_pd = pd
            result = module.demux(view)
            kind = result.kind
            if kind is CONTINUE or kind == CONTINUE:
                module = find(result.next_module)
                view = result.view
                continue
            if kind is TO_PATH or kind == TO_PATH:
                path = result.path
                if path is None or path.destroyed:
                    return Classification(DROP, reason="dead-path",
                                          modules_consulted=consulted,
                                          domain_switches=switches)
                return Classification(TO_PATH, path=path, view=view,
                                      modules_consulted=consulted,
                                      domain_switches=switches)
            return Classification(DROP, reason=result.reason or "reject",
                                  modules_consulted=consulted,
                                  domain_switches=switches)
        return Classification(DROP, reason="demux-loop",
                              modules_consulted=consulted,
                              domain_switches=switches)
