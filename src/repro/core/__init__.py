"""The path architecture — the paper's primary contribution.

A *path* is a logical channel through the module graph: it encapsulates the
sequence of code modules applied to I/O data and is the entity that gets
scheduled.  Escort makes the path the unit of resource accounting: the path
object embeds an :class:`~repro.kernel.owner.Owner`, carries the hash of
allowed protection-domain crossings, the stage list, the queues, a thread
pool, and a reference count (paper Figure 6).

:mod:`repro.core.path` defines Path and Stage; :mod:`repro.core.lifecycle`
implements pathCreate / pathDestroy / pathKill; :mod:`repro.core.demux`
implements the incremental demultiplexer; :mod:`repro.core.attributes` the
invariant attribute sets paths are created with.
"""

from repro.core.attributes import Attributes
from repro.core.path import Path, Stage, PathWork
from repro.core.demux import (
    Demultiplexer,
    DemuxResult,
    CONTINUE,
    DROP,
    TO_PATH,
)
from repro.core.lifecycle import PathManager
from repro.core.patterndemux import (
    FieldTest,
    Pattern,
    PatternDemultiplexer,
)

__all__ = [
    "FieldTest",
    "Pattern",
    "PatternDemultiplexer",
    "Attributes",
    "Path",
    "Stage",
    "PathWork",
    "Demultiplexer",
    "DemuxResult",
    "CONTINUE",
    "DROP",
    "TO_PATH",
    "PathManager",
]
