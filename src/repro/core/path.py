"""Path and Stage objects (paper Figures 2 and 6).

A :class:`Path` is an Owner (so everything it consumes is charged to it)
plus: the hash of allowed protection-domain crossings, the list of stages
contributed by each module, input/output queues, a thread pool, and a
reference count that delays ``pathDestroy`` (but never ``pathKill``).

A :class:`Stage` is the path-specific local state of one module.  Stages
communicate through the generator helpers here — ``send_forward`` /
``send_backward`` move a message one module along the path (toward the disk
end / toward the network end of the web-server chain), and ``call_forward``
makes a synchronous request/response call (the file-access interface).  All
three insert the protection-domain crossing cost when the adjacent stage's
module lives in a different domain, after checking the crossing is in the
path's allowed-crossings map — the simulation analogue of the memory-trap +
hash-lookup mechanism in section 3.2 of the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.cpu import Cycles
from repro.kernel.errors import InvalidOperationError, PermissionError_
from repro.kernel.owner import Owner, OwnerType

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.domain import ProtectionDomain
    from repro.kernel.kernel import Kernel
    from repro.kernel.queues import BoundedQueue
    from repro.kernel.threads import ThreadPool
    from repro.modules.base import Module

#: Direction constants for work items flowing along a path.
FORWARD = "forward"    # network end -> disk end (requests in)
BACKWARD = "backward"  # disk end -> network end (responses out)

#: Queue indices (the paper's ``Queues[4]``: source and sink at each end).
Q_NET_IN, Q_NET_OUT, Q_DISK_IN, Q_DISK_OUT = range(4)


class PathWork:
    """One unit of work enqueued on a path (a message plus where it enters)."""

    __slots__ = ("stage", "direction", "msg")

    def __init__(self, stage: "Stage", direction: str, msg: Any):
        self.stage = stage
        self.direction = direction
        self.msg = msg


class Stage:
    """Per-path local state of one module (paper section 2.2)."""

    def __init__(self, module: "Module", path: "Path"):
        self.module = module
        self.path = path
        self.index: int = -1  # assigned when the path is assembled
        #: Module-private per-path state.
        self.state: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Inter-stage communication
    # ------------------------------------------------------------------
    def next_forward(self) -> Optional["Stage"]:
        """The adjacent stage toward the disk end (None at the end)."""
        stages = self.path.stages
        if 0 <= self.index + 1 < len(stages):
            return stages[self.index + 1]
        return None

    def next_backward(self) -> Optional["Stage"]:
        """The adjacent stage toward the network end (None at the end)."""
        if self.index > 0:
            return self.path.stages[self.index - 1]
        return None

    def send_forward(self, msg: Any) -> Generator:
        """Deliver ``msg`` to the next stage toward the disk end."""
        nxt = self.next_forward()
        if nxt is None:
            raise InvalidOperationError(
                f"{self.module.name} has no forward neighbour on "
                f"{self.path.name}")
        yield from self.path.cross(self.module.pd, nxt.module.pd)
        result = yield from nxt.module.forward(nxt, msg)
        return result

    def send_backward(self, msg: Any) -> Generator:
        """Deliver ``msg`` to the next stage toward the network end."""
        nxt = self.next_backward()
        if nxt is None:
            raise InvalidOperationError(
                f"{self.module.name} has no backward neighbour on "
                f"{self.path.name}")
        yield from self.path.cross(self.module.pd, nxt.module.pd)
        result = yield from nxt.module.backward(nxt, msg)
        return result

    def call_forward(self, request: Any) -> Generator:
        """Synchronous request/response to the next stage (file access).

        Charges a crossing in each direction: the call traps into the
        target domain, the return traps back.
        """
        nxt = self.next_forward()
        if nxt is None:
            raise InvalidOperationError(
                f"{self.module.name} has no forward neighbour on "
                f"{self.path.name}")
        yield from self.path.cross(self.module.pd, nxt.module.pd)
        result = yield from nxt.module.handle_call(nxt, request)
        yield from self.path.cross(nxt.module.pd, self.module.pd)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.module.name}@{self.path.name}>"


class Path(Owner):
    """A path: the unit of I/O, scheduling, and accounting."""

    def __init__(self, kernel: "Kernel", name: str = ""):
        super().__init__(OwnerType.PATH, name=name)
        self.kernel = kernel
        self.stages: List[Stage] = []
        #: (from_pd_oid, to_pd_oid) -> True; the per-path crossing hash.
        self.allowed_pd_crossings: Dict[Tuple[int, int], bool] = {}
        self.queues: List[Optional["BoundedQueue"]] = [None, None, None, None]
        self.pool: Optional["ThreadPool"] = None
        self.ref_cnt = 0
        self.attributes = None  # set by PathManager
        #: Destructor functions registered by modules, run on pathDestroy
        #: only (never on pathKill): list of (domain, callable).
        self.destructors: List[Tuple["ProtectionDomain", Callable[["Path"], None]]] = []
        #: Statistics: crossings performed (Figure 8's Accounting_PD story).
        self.crossings = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def stage_of(self, module_name: str) -> Stage:
        """The stage contributed by ``module_name`` (KeyError if absent)."""
        for stage in self.stages:
            if stage.module.name == module_name:
                return stage
        raise KeyError(f"{self.name} has no stage for module {module_name}")

    def has_module(self, module_name: str) -> bool:
        """True if a stage of ``module_name`` is on this path."""
        return any(s.module.name == module_name for s in self.stages)

    def domains_crossed(self) -> Set["ProtectionDomain"]:
        """The set of protection domains this path's stages live in."""
        return {stage.module.pd for stage in self.stages}

    # ------------------------------------------------------------------
    # Protection-domain crossings
    # ------------------------------------------------------------------
    def allow_crossing(self, from_pd: "ProtectionDomain",
                       to_pd: "ProtectionDomain") -> None:
        """Record a legal crossing in the per-path hash (creation time)."""
        self.allowed_pd_crossings[(from_pd.oid, to_pd.oid)] = True

    def cross(self, from_pd: "ProtectionDomain",
              to_pd: "ProtectionDomain") -> Generator:
        """Generator helper charging one crossing (no-op same domain)."""
        cost = self.kernel.crossing_cost(from_pd, to_pd)
        if cost == 0:
            return
        if (from_pd.oid, to_pd.oid) not in self.allowed_pd_crossings:
            raise PermissionError_(
                f"{self.name}: crossing {from_pd.name} -> {to_pd.name} "
                f"not in the allowed-crossings map")
        self.crossings += 1
        yield Cycles(cost, owner=self)

    # ------------------------------------------------------------------
    # Reference counting (delays pathDestroy, not pathKill)
    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Take a reference; pathDestroy waits until all are released."""
        self.check_alive()
        self.ref_cnt += 1

    def release(self) -> None:
        """Drop a reference taken with :meth:`acquire`."""
        if self.ref_cnt <= 0:
            raise InvalidOperationError(f"{self.name}: release without acquire")
        self.ref_cnt -= 1

    # ------------------------------------------------------------------
    # Data entry
    # ------------------------------------------------------------------
    def enqueue(self, work: PathWork, queue_index: int = Q_NET_IN) -> bool:
        """Enqueue work (typically from demux) and wake the thread pool.

        Returns False if the queue overflowed (the packet is dropped).
        """
        queue = self.queues[queue_index]
        if queue is None or self.destroyed:
            return False
        return queue.put(work)

    def input_queue(self) -> "BoundedQueue":
        """The network-end input queue (where demux delivers work)."""
        queue = self.queues[Q_NET_IN]
        if queue is None:
            raise InvalidOperationError(f"{self.name} has no input queue")
        return queue

    # ------------------------------------------------------------------
    # Post-destruction cycle severing
    # ------------------------------------------------------------------
    def sever(self) -> None:
        """Break internal reference cycles once the path is destroyed.

        Called by ``kill_owner`` after every destroy callback and kill
        listener has run.  A dead path's stages, queues, pool, and
        destructor closures are unreachable from live code, but they form
        reference cycles (path <-> stage, pool -> thread -> exit-callback
        -> pool, destructor closures capturing the path) that refcounting
        alone cannot reclaim — a busy SYN-flood run destroys tens of
        thousands of paths and the resulting garbage islands turn into
        cyclic-GC pressure on the hot path.  Severing the back-references
        lets each island die by refcount the moment the last external
        handle drops.
        """
        for stage in self.stages:
            stage.state.clear()
            stage.path = None  # type: ignore[assignment]
        self.stages = []
        self.destructors.clear()
        pool = self.pool
        if pool is not None:
            self.pool = None
            for thread in pool.threads:
                sim_thread = thread.sim_thread
                if sim_thread is not None and not sim_thread.alive:
                    sim_thread._exit_callbacks.clear()
                    sim_thread.escort = None
            pool.threads = []
        for queue in self.queues:
            if queue is not None:
                queue.closed = True
                queue._items.clear()
                queue._waiters.clear()
        self.queues = [None, None, None, None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mods = "-".join(s.module.name for s in self.stages)
        return f"<Path {self.name} [{mods}]>"
