"""Path lifecycle: pathCreate, pathDestroy, pathKill (paper section 2.2).

``pathCreate`` establishes a path incrementally: the kernel invokes ``open``
on the starting module, which names the adjacent modules the path extends
to, and so on.  ``pathDestroy`` invokes each module's destroy function in
initialization order before freeing resources; ``pathKill`` frees all the
path's resources *without* invoking the destroy functions — it is the
containment primitive whose cost Table 2 measures.

All three are generators: they run on a thread and charge their cycle costs
to the path being created or torn down.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.sim.cpu import Cycles, Sleep
from repro.kernel.errors import EscortError, InvalidOperationError
from repro.core.attributes import Attributes
from repro.core.path import FORWARD, Path, PathWork, Q_NET_IN, Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel, KillReport
    from repro.modules.base import Module
    from repro.modules.graph import ModuleGraph


class PathCreateError(EscortError):
    """A module rejected the path during creation."""


def default_work_handler(work: PathWork) -> Generator:
    """Run one unit of path work: dispatch to the entry stage's module."""
    if work.direction == FORWARD:
        result = yield from work.stage.module.forward(work.stage, work.msg)
    else:
        result = yield from work.stage.module.backward(work.stage, work.msg)
    return result


class PathManager:
    """Implements the path lifecycle against a module graph."""

    def __init__(self, kernel: "Kernel", graph: "ModuleGraph"):
        self.kernel = kernel
        self.graph = graph
        self.paths_created = 0
        self.paths_destroyed = 0
        self.paths_killed = 0
        self.paths_rejected = 0  # admission-control rejections
        #: Live paths in creation order.  The snapshot subsystem walks this
        #: to digest per-path accounting; entries remove themselves on
        #: destruction so long runs do not accumulate dead Path objects.
        self.paths: List[Path] = []

    # ------------------------------------------------------------------
    # pathCreate
    # ------------------------------------------------------------------
    def path_create(self, attrs: Attributes, start_module: str,
                    name: str = "", pool_size: int = 1,
                    queue_capacity: int = 64) -> Generator:
        """Thread-body helper: ``path = yield from mgr.path_create(...)``.

        Costs are charged to the new path itself — it is the principal the
        work is for.  On module rejection, everything allocated so far is
        reclaimed and :class:`PathCreateError` is raised.
        """
        kernel = self.kernel
        start = self.graph.find(start_module)
        current = kernel.current_thread
        current_owner = current.owner if current is not None else None
        kernel.acl.check("path_create", current_owner, start.pd)

        # Admission control: a saturated kernel sheds new work here, before
        # anything is allocated — rejecting a connection costs almost
        # nothing, admitting one it cannot finish costs a full teardown.
        # Listening paths are server configuration, not admitted work.
        if not attrs.get("listen") and not kernel.admit_path():
            self.paths_rejected += 1
            raise PathCreateError(
                f"admission control: kernel shedding load ({name or 'path'})")

        self.paths_created += 1
        path = Path(kernel, name=name or f"path-{self.paths_created}")
        self.paths.append(path)
        path.on_destroy(self._forget_path)
        path.attributes = attrs
        yield Cycles(kernel.costs.path_create_kernel + kernel.acct(4),
                     owner=path)
        try:
            stages = yield from self._open_modules(path, attrs, start)
        except EscortError:
            self._reclaim_partial(path)
            raise
        self._assemble(path, stages)

        queue = kernel.create_queue(queue_capacity, name=f"{path.name}-in")
        path.queues[Q_NET_IN] = queue
        from repro.kernel.threads import ThreadPool  # local: avoid cycle
        path.pool = ThreadPool(kernel, path, queue, default_work_handler,
                               size=pool_size,
                               stack_domains=len(path.domains_crossed()),
                               name=f"{path.name}-pool")
        for stage in path.stages:
            stage.module.attach(stage)
        return path

    def _open_modules(self, path: Path, attrs: Attributes,
                      start: "Module") -> Generator:
        """Incrementally call ``open`` along the graph; returns stages."""
        kernel = self.kernel
        stages: List[Stage] = []
        seen = set()
        frontier: List[tuple] = [(start, None)]
        while frontier:
            module, origin = frontier.pop(0)
            if module.name in seen:
                continue
            seen.add(module.name)
            if origin is not None:
                # The kernel switches into the module's domain to call its
                # open function.
                cost = kernel.crossing_cost(origin.pd, module.pd)
                if cost:
                    yield Cycles(cost, owner=path)
            yield Cycles(kernel.costs.module_open + kernel.acct(1),
                         owner=path)
            result = module.open(path, attrs, origin)
            if result is None:
                raise PathCreateError(
                    f"{module.name} rejected path {path.name}")
            stages.append(result.stage)
            for nxt_name in result.extend_to:
                nxt = self.graph.find(nxt_name)
                frontier.append((nxt, module))
        return stages

    def _assemble(self, path: Path, stages: List[Stage]) -> None:
        """Order stages along the graph and build the crossing map."""
        stages.sort(key=lambda s: self.graph.position(s.module.name))
        path.stages = stages
        for i, stage in enumerate(stages):
            stage.index = i
        for a, b in zip(stages, stages[1:]):
            path.allow_crossing(a.module.pd, b.module.pd)
            path.allow_crossing(b.module.pd, a.module.pd)
        for pd in path.domains_crossed():
            pd.crossing_paths.add(path)
            path.on_destroy(
                lambda p, pd=pd: pd.crossing_paths.discard(p))

    def _forget_path(self, path: Path) -> None:
        try:
            self.paths.remove(path)
        except ValueError:
            pass

    def _reclaim_partial(self, path: Path) -> None:
        if not path.destroyed:
            self.kernel.kill_owner(path, charge=False, record=False)

    # ------------------------------------------------------------------
    # pathDestroy
    # ------------------------------------------------------------------
    def path_destroy(self, path: Path) -> Generator:
        """Graceful teardown: module destroy functions, then reclamation.

        Waits for the reference count to drain (this is what the refCnt in
        the Path struct delays); ``pathKill`` has no such patience.
        """
        kernel = self.kernel
        if path.destroyed:
            return
        while path.ref_cnt > 0:
            yield Sleep(kernel.costs.softclock_period_ticks)
            if path.destroyed:
                return
        self.paths_destroyed += 1
        prev_pd = None
        for stage in path.stages:
            if path.destroyed:
                return
            cost = kernel.costs.module_destroy + kernel.acct(1)
            if prev_pd is not None:
                cost += kernel.crossing_cost(prev_pd, stage.module.pd)
            prev_pd = stage.module.pd
            yield Cycles(cost, owner=path)
            stage.module.destroy_stage(stage)
        # Module-registered destructor functions: run in the module's
        # domain; typically transfer memory charges back to the domain.
        for _domain, fn in list(path.destructors):
            fn(path)
        if path.pool is not None:
            path.pool.shutdown()
        yield Cycles(kernel.costs.path_teardown_kernel + kernel.acct(4),
                     owner=path)
        if not path.destroyed:
            kernel.kill_owner(path, charge=False, record=False)

    def schedule_destroy(self, path: Path, delay_ticks: int = 0) -> None:
        """Run ``path_destroy`` soon, on a kernel-owned thread.

        Used by modules that decide mid-work that their own path is done
        (e.g. TCP after the final FIN is acknowledged) — a path thread must
        not reclaim itself.
        """
        kernel = self.kernel

        def runner() -> None:
            if path.destroyed:
                return
            kernel.spawn_thread(kernel.kernel_owner,
                                self.path_destroy(path),
                                name=f"destroy-{path.name}")

        kernel.sim.schedule(delay_ticks, runner)

    # ------------------------------------------------------------------
    # pathKill
    # ------------------------------------------------------------------
    def path_kill(self, path: Path) -> "KillReport":
        """Forcible reclamation; never runs module destroy functions."""
        if path.destroyed:
            raise InvalidOperationError(f"{path.name} already destroyed")
        self.paths_killed += 1
        return self.kernel.kill_owner(path)
