"""Escort: defending against denial-of-service attacks in Scout.

A faithful, simulation-based reproduction of Spatscheck & Peterson,
"Defending Against Denial of Service Attacks in Scout" (OSDI 1999).

The package implements the Escort security architecture -- per-path resource
accounting plus protection domains over the Scout module-graph/path OS -- and
the full web-server testbed its evaluation uses: protocol modules (ETH, ARP,
IP, TCP, HTTP), storage modules (FS, SCSI), clients, attackers, a QoS
stream, and a Linux/Apache baseline, all over a cycle-accurate
discrete-event simulation.

Quickstart::

    from repro.experiments import Testbed

    bed = Testbed.escort(accounting=True, protection_domains=False)
    bed.add_clients(4, document="/doc-1k")
    results = bed.run(warmup_s=0.2, measure_s=1.0)
    print(results.connections_per_second)
"""

__version__ = "1.0.0"
