"""The Linux/Apache baseline (paper section 4.1.1).

"Apache 1.2.6 web server running on RedHat 5.1 with the 2.0.34 Linux
kernel", on the same AlphaPC hardware.  We model it as a monolithic-kernel,
process-per-connection server: a single serialized CPU, no early demux
(every packet — including flood SYNs — costs full kernel processing), and
the calibrated per-request/per-segment costs that put its plateau at about
half of base Scout's, as Figure 8 reports.
"""

from repro.linux.server import LinuxServer

__all__ = ["LinuxServer"]
