"""A behavioural model of Apache 1.2.6 on Linux 2.0.34.

This is the comparator, not the contribution, so it is modelled at the
level the comparison needs:

* one serialized CPU (the same 300 MHz Alpha) — work items queue FIFO;
* no early demultiplexing: every arriving packet costs full in-kernel
  processing before the system knows who it is for (the paper's point
  about "the lack of accounting within the kernel");
* per-request Apache cost and per-data-segment cost calibrated to the
  ~400 conn/s plateau of Figure 8;
* a finite listen backlog (the era's SYN-flood victim): once the half-open
  queue fills, *legitimate* SYNs are dropped too — there is no per-source
  accounting to tell them apart, which is the paper's opening argument;
* ``kill + waitpid`` cost for Table 2;
* the same shared TCP engine as everyone else, so protocol behaviour
  (handshakes, slow start, delayed ACKs) is identical across servers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.sim.clock import SERVER_TICKS_PER_CYCLE, millis_to_ticks
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.modules.http import HTTPRequest, RESPONSE_HEADER_BYTES
from repro.net.addressing import MacAddr
from repro.net.link import NIC
from repro.net.packet import (
    ETHERTYPE_IP,
    EthFrame,
    FLAG_ACK,
    FLAG_SYN,
    IPDatagram,
    IPPROTO_TCP,
    TCPSegment,
)
from repro.net.tcp import TCPActions, TCPEngine


class _LinuxConn:
    """Kernel socket + Apache worker state for one connection."""

    def __init__(self, server: "LinuxServer", engine: TCPEngine,
                 remote_ip: str):
        self.server = server
        self.engine = engine
        self.remote_ip = remote_ip
        self.request_charged = False
        self._rto_ev = None
        self._delack_ev = None

    def apply(self, actions: TCPActions) -> None:
        server = self.server
        sim = server.sim
        for seg in actions.segments:
            if seg.payload_len:
                server.work(server.costs.linux_per_data_segment,
                            lambda s=seg: server.send_segment(
                                self.remote_ip, s))
            else:
                server.send_segment(self.remote_ip, seg)
        for nbytes, data in actions.deliveries:
            if isinstance(data, HTTPRequest) and not self.request_charged:
                self.request_charged = True
                server.work(server.costs.linux_per_request,
                            lambda d=data: server.serve(self, d))
        if actions.cancel_rto and self._rto_ev is not None:
            self._rto_ev.cancel()
            self._rto_ev = None
        if actions.set_rto is not None:
            if self._rto_ev is not None:
                self._rto_ev.cancel()
            self._rto_ev = sim.schedule(
                actions.set_rto, lambda: self.apply(self.engine.on_rto()))
        if actions.cancel_delack and self._delack_ev is not None:
            self._delack_ev.cancel()
            self._delack_ev = None
        if actions.set_delack is not None:
            if self._delack_ev is not None:
                self._delack_ev.cancel()
            self._delack_ev = sim.schedule(
                actions.set_delack,
                lambda: self.apply(self.engine.on_delack()))
        if actions.closed:
            for ev in (self._rto_ev, self._delack_ev):
                if ev is not None:
                    ev.cancel()
            self._rto_ev = self._delack_ev = None
            server.drop_conn(self)


class LinuxServer:
    """Apache on a monolithic kernel, as Figure 8's baseline."""

    #: Half-open connection capacity (Linux 2.0-era listen backlog).
    LISTEN_BACKLOG = 128

    def __init__(self, sim: Simulator, ip: str = "10.0.0.80",
                 documents: Optional[Dict[str, int]] = None,
                 costs: Optional[CostModel] = None):
        self.sim = sim
        self.ip = ip
        self.costs = costs or CostModel.default()
        from repro.server.webserver import DEFAULT_DOCUMENTS
        self.documents = dict(documents or DEFAULT_DOCUMENTS)
        self.nic = NIC(sim, label=f"linux-{ip}")
        self.nic.on_receive = self._on_frame
        self.arp_map: Dict[str, MacAddr] = {}
        self._conns: Dict[Tuple[int, str, int], _LinuxConn] = {}
        self._busy_until = 0
        self.busy_cycles = 0
        self.requests_served = 0
        self.requests_404 = 0
        self.syns_seen = 0
        self.syns_dropped_backlog = 0
        self.packets_processed = 0
        self.booted = False

    # ------------------------------------------------------------------
    def boot(self) -> None:
        self.booted = True

    def attach_network(self, medium) -> None:
        medium.attach(self.nic)

    # ------------------------------------------------------------------
    # The serialized CPU
    # ------------------------------------------------------------------
    def work(self, cycles: int, fn: Callable[[], None]) -> None:
        """Queue ``cycles`` of kernel/Apache work, then run ``fn``."""
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + cycles * SERVER_TICKS_PER_CYCLE
        self.busy_cycles += cycles
        self.sim.at(self._busy_until, fn)

    # ------------------------------------------------------------------
    # Packet handling: everything costs kernel work first
    # ------------------------------------------------------------------
    def _on_frame(self, frame: EthFrame) -> None:
        dgram = frame.payload
        if not isinstance(dgram, IPDatagram) or dgram.dst_ip != self.ip:
            return
        seg = dgram.payload
        if not isinstance(seg, TCPSegment):
            return
        self.packets_processed += 1
        # No early demux: the kernel does full protocol processing before
        # any principal can be charged — this is why a SYN flood hurts.
        self.work(self.costs.linux_syn_cost,
                  lambda: self._process(dgram, seg))

    def _process(self, dgram: IPDatagram, seg: TCPSegment) -> None:
        key = (seg.dst_port, dgram.src_ip, seg.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            conn.apply(conn.engine.on_segment(seg))
            return
        if seg.flags & FLAG_SYN and not seg.flags & FLAG_ACK \
                and seg.dst_port == 80:
            self.syns_seen += 1
            half_open = sum(1 for c in self._conns.values()
                            if c.engine.half_open)
            if half_open >= self.LISTEN_BACKLOG:
                # The kernel cannot tell a flood SYN from a client SYN —
                # no accounting before the work reaches a principal.
                self.syns_dropped_backlog += 1
                return
            engine, actions = TCPEngine.passive_open(
                self.ip, 80, seg, dgram.src_ip,
                delayed_ack_ticks=millis_to_ticks(50))
            conn = _LinuxConn(self, engine, dgram.src_ip)
            self._conns[key] = conn
            conn.apply(actions)

    def drop_conn(self, conn: _LinuxConn) -> None:
        for key, value in list(self._conns.items()):
            if value is conn:
                del self._conns[key]

    # ------------------------------------------------------------------
    # Apache
    # ------------------------------------------------------------------
    def serve(self, conn: _LinuxConn, request: HTTPRequest) -> None:
        if conn.engine.closed:
            return
        size = self.documents.get(request.uri)
        if size is None:
            self.requests_404 += 1
            conn.apply(conn.engine.send(RESPONSE_HEADER_BYTES + 90,
                                        fin=True))
            return
        self.requests_served += 1
        conn.apply(conn.engine.send(RESPONSE_HEADER_BYTES + size, fin=True))

    def send_segment(self, dst_ip: str, seg: TCPSegment) -> None:
        mac = self.arp_map.get(dst_ip)
        if mac is None:
            return
        dgram = IPDatagram(self.ip, dst_ip, IPPROTO_TCP, seg)
        self.nic.send(EthFrame(self.nic.mac, mac, ETHERTYPE_IP, dgram))

    def seed_arp(self, ip: str, mac: MacAddr) -> None:
        """Static addressing, like the Scout server's seeded ARP."""
        self.arp_map[ip] = mac

    # ------------------------------------------------------------------
    def kill_process_cost(self) -> int:
        """Table 2: cycles for kill + waitpid on the Linux baseline."""
        return self.costs.linux_kill_process
