"""The SYN attacker (paper section 4.1.2).

"A SYN Attacker sends a SYN request to the server at a rate of 1000 every
second."  The attacker machine sits on the hub (Figure 7) and sprays raw
SYN segments with rotating spoofed source addresses drawn from the
untrusted subnet; it never completes a handshake, so every accepted SYN
leaves a half-open connection on the server until the SYN-ACK retry budget
expires.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.net.addressing import MacAddr, Subnet
import repro.net.freelist as freelist
from repro.net.freelist import SynFramePool
from repro.net.link import NIC
from repro.net.packet import (
    ETHERTYPE_IP,
    EthFrame,
    FLAG_SYN,
    IPDatagram,
    IPPROTO_TCP,
    TCPSegment,
)


class SynAttacker:
    """Raw SYN flood source with spoofed addresses."""

    def __init__(self, sim: Simulator, server_ip: str, server_mac: MacAddr,
                 spoof_subnet: Subnet, rate_per_second: int = 1000,
                 target_port: int = 80,
                 costs: Optional[CostModel] = None,
                 ramp_to: Optional[int] = None,
                 ramp_seconds: float = 0.0,
                 spoof_hosts: int = 4094,
                 frame_pool: Optional[bool] = None):
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.server_ip = server_ip
        self.server_mac = server_mac
        self.spoof_subnet = spoof_subnet
        self.rate = rate_per_second
        self.target_port = target_port
        self.nic = NIC(sim, label="syn-attacker")
        self.sent = 0
        self._running = False
        self._interval = TICKS_PER_SECOND // rate_per_second
        self._spoof_index = 0
        self.spoof_hosts = spoof_hosts
        #: Ramping flood: the rate climbs linearly from ``rate_per_second``
        #: to ``ramp_to`` over ``ramp_seconds`` after :meth:`start` — the
        #: adaptive-defense scenario, where no static tuning fits both the
        #: quiet start and the saturated end.
        self.ramp_to = ramp_to
        self._ramp_ticks = int(ramp_seconds * TICKS_PER_SECOND)
        self._start_tick: Optional[int] = None
        #: Frame free list (see :mod:`repro.net.freelist`): the flood's
        #: frames live only from NIC to demux drop, so the driver hands
        #: them back and the attacker resprays them.
        if frame_pool is None:
            # Read at call time so A/B tests can flip the module default.
            frame_pool = freelist.FRAME_POOL_DEFAULT
        self.pool: Optional[SynFramePool] = (
            SynFramePool(self.nic.mac, server_mac, server_ip, target_port)
            if frame_pool else None)

    def current_rate(self) -> int:
        """The instantaneous send rate, including any ramp."""
        if (self.ramp_to is None or self._ramp_ticks <= 0
                or self._start_tick is None):
            return self.rate
        elapsed = self.sim.now - self._start_tick
        if elapsed >= self._ramp_ticks:
            return self.ramp_to
        return self.rate + (self.ramp_to - self.rate) * elapsed \
            // self._ramp_ticks

    def attach(self, medium) -> None:
        medium.attach(self.nic)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._start_tick = self.sim.now
        self.sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        self._running = False

    def _fire(self) -> None:
        if not self._running:
            return
        self._spoof_index += 1
        # Rotate through the spoofed hosts and the whole port space.
        src_ip = next(self.spoof_subnet.hosts(
            1, start=1 + (self._spoof_index % self.spoof_hosts)))
        src_port = 1024 + (self._spoof_index % 60_000)
        if self.pool is not None:
            frame = self.pool.acquire(src_ip, src_port)
        else:
            seg = TCPSegment(src_port, self.target_port, seq=0, ack=0,
                             flags=FLAG_SYN)
            dgram = IPDatagram(src_ip, self.server_ip, IPPROTO_TCP, seg)
            frame = EthFrame(self.nic.mac, self.server_mac,
                             ETHERTYPE_IP, dgram)
        self.nic.send(frame)
        self.sent += 1
        interval = TICKS_PER_SECOND // self.current_rate()
        self.sim.schedule(max(1, interval), self._fire)
