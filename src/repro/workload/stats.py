"""Workload measurement: completions, rates, QoS windows.

The paper reports ten-second averages measured after the load has run for
a warmup period; :class:`WorkloadStats` supports exactly that: every event
is timestamped, and rates are computed over an arbitrary window.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import TICKS_PER_SECOND


class WorkloadStats:
    """Timestamped event log per workload class."""

    #: Distinct connection outcomes beyond plain completion.  ``aborted``
    #: = the client's TCP gave up (retry budget) or was reset mid-stream;
    #: ``refused`` = actively refused before establishment (RST to a
    #: SYN); ``degraded`` = completed, but with a shed/shrunk response
    #: (the server's graceful-degradation tiers); ``retried`` = one
    #: failed *attempt* that the client's retry stack is about to redo —
    #: recorded per attempt so a failover retry is never double-counted
    #: as a fresh completion (the logical request completes at most
    #: once).  Defense experiments need these separated: an "aborted"
    #: legitimate client under an active defense is a false-positive
    #: drop, while a burst of "retried" marks a failover in progress.
    OUTCOMES = ("aborted", "refused", "degraded", "retried")

    def __init__(self) -> None:
        #: class -> sorted list of completion ticks.
        self._completions: Dict[str, List[int]] = {}
        #: class -> list of (tick, nbytes) for byte streams.
        self._bytes: Dict[str, List[Tuple[int, int]]] = {}
        self.failures: Dict[str, int] = {}
        #: (class, outcome) -> sorted list of event ticks.
        self._outcomes: Dict[Tuple[str, str], List[int]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def complete(self, cls: str, tick: int) -> None:
        self._completions.setdefault(cls, []).append(tick)

    def add_bytes(self, cls: str, tick: int, nbytes: int) -> None:
        self._bytes.setdefault(cls, []).append((tick, nbytes))

    def fail(self, cls: str) -> None:
        self.failures[cls] = self.failures.get(cls, 0) + 1

    def outcome(self, cls: str, kind: str, tick: int) -> None:
        """Record a timestamped outcome (see :data:`OUTCOMES`)."""
        if kind not in self.OUTCOMES:
            raise ValueError(f"unknown outcome {kind!r}")
        self._outcomes.setdefault((cls, kind), []).append(tick)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def completions_in(self, cls: str, start: int, end: int) -> int:
        ticks = self._completions.get(cls, [])
        return bisect_right(ticks, end) - bisect_left(ticks, start)

    def rate_per_second(self, cls: str, start: int, end: int) -> float:
        """Completions per second of ``cls`` in the window [start, end]."""
        if end <= start:
            return 0.0
        count = self.completions_in(cls, start, end)
        return count * TICKS_PER_SECOND / (end - start)

    def bytes_in(self, cls: str, start: int, end: int) -> int:
        return sum(n for t, n in self._bytes.get(cls, [])
                   if start <= t <= end)

    def bandwidth_bps(self, cls: str, start: int, end: int) -> float:
        """Bytes per second of ``cls`` in the window [start, end]."""
        if end <= start:
            return 0.0
        return self.bytes_in(cls, start, end) * TICKS_PER_SECOND / (end - start)

    def windowed_bandwidth(self, cls: str, start: int, end: int,
                           window_ticks: int) -> List[float]:
        """Per-window bandwidths (the paper's ten-second averages)."""
        out = []
        t = start
        while t + window_ticks <= end:
            out.append(self.bandwidth_bps(cls, t, t + window_ticks))
            t += window_ticks
        return out

    def outcomes_in(self, cls: str, kind: str, start: int, end: int) -> int:
        ticks = self._outcomes.get((cls, kind), [])
        return bisect_right(ticks, end) - bisect_left(ticks, start)

    def outcome_total(self, cls: str, kind: str) -> int:
        return len(self._outcomes.get((cls, kind), []))

    def outcome_summary(self, cls: str) -> Dict[str, int]:
        """Total count per outcome kind for one class (stable keys)."""
        return {kind: self.outcome_total(cls, kind)
                for kind in self.OUTCOMES}

    def total(self, cls: str) -> int:
        return len(self._completions.get(cls, []))
