"""Client and attacker workloads (paper section 4.1.2).

* :class:`~repro.workload.clients.HttpClient` — a regular client issuing a
  serial stream of requests for one document;
* :class:`~repro.workload.qos.QosReceiver` — the receiver of the 1 MBps
  guaranteed-bandwidth TCP stream;
* :class:`~repro.workload.syn_attacker.SynAttacker` — 1000 spoofed SYNs
  per second from the untrusted subnet;
* :class:`~repro.workload.cgi_attacker.CgiAttacker` — one GET per second
  for an infinite-loop CGI script.

All run on simulated client machines: no CPU model (the paper sized the
testbed so clients are never the bottleneck), but realistic per-request
overhead and per-packet turnaround latency, plus an era-faithful TCP with
delayed ACKs.
"""

from repro.workload.stats import WorkloadStats
from repro.workload.clients import HttpClient
from repro.workload.qos import QosReceiver
from repro.workload.syn_attacker import SynAttacker
from repro.workload.cgi_attacker import CgiAttacker

__all__ = [
    "WorkloadStats",
    "HttpClient",
    "QosReceiver",
    "SynAttacker",
    "CgiAttacker",
]
