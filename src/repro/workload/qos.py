"""The QoS stream receiver (paper section 4.4.2).

Opens one TCP connection, requests ``/stream``, and records received bytes
so the experiment can verify the ten-second averages stay within 1 % of the
1 MBps target while the server is under load.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.clock import seconds_to_ticks
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.workload.clients import ClientHost
from repro.workload.stats import WorkloadStats


class QosReceiver(ClientHost):
    """Receiver of the guaranteed 1 MBps stream."""

    REQUEST_BYTES = 90

    def __init__(self, sim: Simulator, ip: str, server_ip: str,
                 costs: Optional[CostModel] = None,
                 stats: Optional[WorkloadStats] = None,
                 stats_class: str = "qos"):
        super().__init__(sim, ip, costs=costs, stats=stats,
                         label=f"qos-{ip}")
        self.server_ip = server_ip
        self.stats_class = stats_class
        self.bytes_received = 0
        self.started_at: Optional[int] = None
        self.conn = None

    def start(self) -> None:
        from repro.modules.http import HTTPRequest
        self.started_at = self.sim.now
        conn = self.connect(self.server_ip, 80,
                            delayed_ack_ticks=self.costs.client_delayed_ack_ticks)
        self.conn = conn
        conn.on_established = lambda: conn.send(
            self.REQUEST_BYTES, app_data=HTTPRequest("GET", "/stream"))

        def deliver(nbytes: int, _data) -> None:
            self.bytes_received += nbytes
            self.stats.add_bytes(self.stats_class, self.sim.now, nbytes)

        conn.on_deliver = deliver

    def stop(self) -> None:
        if self.conn is not None:
            self.conn.abort()

    # ------------------------------------------------------------------
    def achieved_bandwidth(self, start_tick: int, end_tick: int) -> float:
        return self.stats.bandwidth_bps(self.stats_class, start_tick,
                                        end_tick)

    def ten_second_averages(self, start_tick: int, end_tick: int):
        return self.stats.windowed_bandwidth(
            self.stats_class, start_tick, end_tick, seconds_to_ticks(10))
