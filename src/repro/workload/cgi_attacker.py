"""The CGI attacker (paper section 4.1.2).

"A CGI Attacker performs a GET request at a rate of one every second.  The
request results in an infinite-loop thread that emulates a runaway CGI
script."  The attacker is a legitimate-looking client: it completes the
handshake and sends a well-formed GET, so the server cannot distinguish it
until the CGI thread has burned its 2 ms allowance — exactly the window
Figure 11 charges against best-effort throughput.

The runaway CGI body itself (``runaway_cgi``) is registered with the
server's HTTP module; a well-behaved ``busy_cgi`` is provided for contrast
and for the examples.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.costs import CostModel
from repro.sim.cpu import Cycles
from repro.sim.engine import Simulator
from repro.workload.clients import ClientHost
from repro.workload.stats import WorkloadStats


def runaway_cgi(stage) -> Generator:
    """The attack payload: an infinite loop that never yields usefully.

    It is killed by the runtime-limit policy; everything it allocated is
    reclaimed by ``pathKill``.
    """
    while True:
        yield Cycles(25_000)


def busy_cgi(stage) -> Generator:
    """A well-behaved CGI script: compute, then respond."""
    http = stage.module
    yield Cycles(120_000)
    yield from http.respond_from_cgi(stage, 256)


class CgiAttacker(ClientHost):
    """Launches one runaway-CGI request per second."""

    REQUEST_BYTES = 120

    def __init__(self, sim: Simulator, ip: str, server_ip: str,
                 script: str = "loop",
                 rate_per_second: float = 1.0,
                 costs: Optional[CostModel] = None,
                 stats: Optional[WorkloadStats] = None):
        super().__init__(sim, ip, costs=costs, stats=stats,
                         label=f"cgi-attacker-{ip}")
        self.server_ip = server_ip
        self.script = script
        self.interval = int(TICKS_PER_SECOND / rate_per_second)
        self.attacks_launched = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # Spread attackers across the interval deterministically.
        self.sim.schedule(self.jittered(self.interval, 0.9), self._attack)

    def stop(self) -> None:
        self._running = False

    def _attack(self) -> None:
        if not self._running:
            return
        self.attacks_launched += 1
        from repro.modules.http import HTTPRequest
        conn = self.connect(self.server_ip, 80)
        uri = f"/cgi-bin/{self.script}"
        conn.on_established = lambda: conn.send(
            self.REQUEST_BYTES, app_data=HTTPRequest("GET", uri))
        # The server will kill the path; our side eventually times out.
        # Launch the next attack on schedule regardless.
        self.sim.schedule(self.interval, self._attack)
        # Don't let dead engines accumulate timers forever: abort this
        # connection well before the next scheduled attack.
        self.sim.schedule(self.interval - 1,
                          lambda c=conn: c.abort() if not c.engine.closed
                          else None)
