"""Client machines.

:class:`ClientHost` is the shared substrate: a NIC, a static ARP map, and
per-connection TCP engines whose timers run on the simulator.  Clients have
no CPU model — the paper provisioned one PentiumPro per client process so
the clients are never the bottleneck — but they do pay a per-request
overhead (process wakeup, socket setup) and a per-packet turnaround delay,
both of which shape the sub-saturation region of Figure 8.

:class:`HttpClient` is the paper's "Client" load: a serial loop fetching
one document over and over.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.net.addressing import MacAddr
from repro.net.link import NIC
from repro.net.packet import (
    ETHERTYPE_IP,
    EthFrame,
    IPDatagram,
    IPPROTO_TCP,
    TCPSegment,
)
from repro.net.tcp import TCPActions, TCPEngine
from repro.workload.stats import WorkloadStats


class ClientConnection:
    """One TCP connection from a client host, timers included."""

    def __init__(self, host: "ClientHost", remote_ip: str, remote_port: int,
                 local_port: int, delayed_ack_ticks: int = 0):
        self.host = host
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.local_port = local_port
        self.on_deliver: Optional[Callable[[int, Any], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_fin: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[bool], None]] = None
        self._rto_ev = None
        self._delack_ev = None
        self._done = False
        #: Set when the peer actively refused (RST before establishment).
        self.refused = False
        self.engine, actions = TCPEngine.active_open(
            host.ip, local_port, remote_ip, remote_port,
            delayed_ack_ticks=delayed_ack_ticks)
        self.apply(actions)

    # ------------------------------------------------------------------
    def apply(self, actions: TCPActions) -> None:
        sim = self.host.sim
        for seg in actions.segments:
            self.host.send_segment(self.remote_ip, seg)
        for nbytes, data in actions.deliveries:
            if self.on_deliver is not None:
                self.on_deliver(nbytes, data)
        if actions.established and self.on_established is not None:
            self.on_established()
        if actions.fin_received and self.on_fin is not None:
            self.on_fin()
        if actions.refused:
            self.refused = True
        if actions.cancel_rto and self._rto_ev is not None:
            self._rto_ev.cancel()
            self._rto_ev = None
        if actions.set_rto is not None:
            if self._rto_ev is not None:
                self._rto_ev.cancel()
            self._rto_ev = sim.schedule(
                actions.set_rto, lambda: self.apply(self.engine.on_rto()))
        if actions.cancel_delack and self._delack_ev is not None:
            self._delack_ev.cancel()
            self._delack_ev = None
        if actions.set_delack is not None:
            if self._delack_ev is not None:
                self._delack_ev.cancel()
            self._delack_ev = sim.schedule(
                actions.set_delack,
                lambda: self.apply(self.engine.on_delack()))
        if actions.closed and not self._done:
            self._done = True
            self._cancel_timers()
            self.host.forget(self)
            if self.on_closed is not None:
                self.on_closed(actions.aborted)

    def _cancel_timers(self) -> None:
        for ev in (self._rto_ev, self._delack_ev):
            if ev is not None:
                ev.cancel()
        self._rto_ev = self._delack_ev = None

    # ------------------------------------------------------------------
    def receive(self, seg: TCPSegment) -> None:
        if not self._done:
            self.apply(self.engine.on_segment(seg))

    def send(self, nbytes: int, app_data: Any = None,
             fin: bool = False) -> None:
        self.apply(self.engine.send(nbytes, app_data=app_data, fin=fin))

    def close(self) -> None:
        self.apply(self.engine.close())

    def abort(self) -> None:
        self.apply(self.engine.abort())


class ClientHost:
    """A simulated client machine (200 MHz PentiumPro running Linux)."""

    def __init__(self, sim: Simulator, ip: str,
                 costs: Optional[CostModel] = None,
                 stats: Optional[WorkloadStats] = None,
                 label: str = ""):
        self.sim = sim
        self.ip = ip
        self.costs = costs or CostModel.default()
        self.stats = stats or WorkloadStats()
        self.nic = NIC(sim, label=label or f"host-{ip}")
        self.nic.on_receive = self._on_frame
        self.arp_map: Dict[str, MacAddr] = {}
        self._conns: Dict[Tuple[int, str, int], ClientConnection] = {}
        self._next_port = 10_000
        self.rng = random.Random(ip)

    # ------------------------------------------------------------------
    def attach(self, medium) -> None:
        medium.attach(self.nic)

    def learn(self, ip: str, mac: MacAddr) -> None:
        self.arp_map[ip] = mac

    def alloc_port(self) -> int:
        self._next_port += 1
        return self._next_port

    # ------------------------------------------------------------------
    def connect(self, remote_ip: str, remote_port: int,
                delayed_ack_ticks: int = 0) -> ClientConnection:
        conn = ClientConnection(self, remote_ip, remote_port,
                                self.alloc_port(),
                                delayed_ack_ticks=delayed_ack_ticks)
        key = (conn.local_port, remote_ip, remote_port)
        self._conns[key] = conn
        return conn

    def forget(self, conn: ClientConnection) -> None:
        key = (conn.local_port, conn.remote_ip, conn.remote_port)
        self._conns.pop(key, None)

    # ------------------------------------------------------------------
    def send_segment(self, dst_ip: str, seg: TCPSegment) -> None:
        mac = self.arp_map.get(dst_ip)
        if mac is None:
            return  # unresolvable: drop (testbeds always pre-seed)
        dgram = IPDatagram(self.ip, dst_ip, IPPROTO_TCP, seg)
        frame = EthFrame(self.nic.mac, mac, ETHERTYPE_IP, dgram)
        # Client-side turnaround: the process takes a moment to respond.
        self.sim.schedule(self.costs.client_turnaround_ticks,
                          lambda: self.nic.send(frame))

    def _on_frame(self, frame: EthFrame) -> None:
        dgram = frame.payload
        if not isinstance(dgram, IPDatagram) or dgram.dst_ip != self.ip:
            return
        seg = dgram.payload
        if not isinstance(seg, TCPSegment):
            return
        key = (seg.dst_port, dgram.src_ip, seg.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            conn.receive(seg)

    def jittered(self, base_ticks: int, spread: float = 0.2) -> int:
        """Deterministic per-host jitter to avoid phase lock."""
        return int(base_ticks * self.rng.uniform(1 - spread, 1 + spread))


class HttpClient(ClientHost):
    """The paper's Client load: serial requests for one document."""

    REQUEST_BYTES = 110

    def __init__(self, sim: Simulator, ip: str, server_ip: str,
                 document: str, costs: Optional[CostModel] = None,
                 stats: Optional[WorkloadStats] = None,
                 stats_class: str = "client"):
        super().__init__(sim, ip, costs=costs, stats=stats,
                         label=f"client-{ip}")
        self.server_ip = server_ip
        self.document = document
        self.stats_class = stats_class
        self.requests_started = 0
        self.requests_completed = 0
        self.requests_failed = 0
        self.requests_refused = 0
        self.requests_degraded = 0
        self.bytes_received = 0
        #: Response size of each completed request (header + body).
        self.response_sizes: list = []
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the serial request loop."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(
            self.jittered(self.costs.client_request_overhead_ticks, 1.0),
            self._begin_request)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _begin_request(self) -> None:
        if not self._running:
            return
        self.requests_started += 1
        from repro.modules.http import HTTPRequest  # avoid import cycle
        conn = self.connect(self.server_ip, 80,
                            delayed_ack_ticks=self.costs.client_delayed_ack_ticks)
        got = {"bytes": 0, "tag": None}

        conn.on_established = lambda: conn.send(
            self.REQUEST_BYTES, app_data=HTTPRequest("GET", self.document))

        def deliver(nbytes: int, data) -> None:
            got["bytes"] += nbytes
            self.bytes_received += nbytes
            if got["tag"] is None and isinstance(data, tuple) and data:
                got["tag"] = data[0]  # response status ("200", "206", ...)

        conn.on_deliver = deliver
        conn.on_fin = conn.close

        def closed(aborted: bool) -> None:
            if aborted or got["bytes"] == 0:
                # Distinguish an active refusal (RST to our SYN) from a
                # silent abort after the retry budget — the latter is the
                # signature of a defense dropping a legitimate client.
                self.requests_failed += 1
                self.stats.fail(self.stats_class)
                if conn.refused:
                    self.requests_refused += 1
                    self.stats.outcome(self.stats_class, "refused",
                                       self.sim.now)
                else:
                    self.stats.outcome(self.stats_class, "aborted",
                                       self.sim.now)
            else:
                self.requests_completed += 1
                self.response_sizes.append(got["bytes"])
                self.stats.complete(self.stats_class, self.sim.now)
                if got["tag"] in ("206", "503"):
                    # Served, but under graceful degradation (shrunk body
                    # or shed CGI).
                    self.requests_degraded += 1
                    self.stats.outcome(self.stats_class, "degraded",
                                       self.sim.now)
            if self._running:
                self.sim.schedule(
                    self.jittered(self.costs.client_request_overhead_ticks),
                    self._begin_request)

        conn.on_closed = closed
