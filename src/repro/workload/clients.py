"""Client machines.

:class:`ClientHost` is the shared substrate: a NIC, a static ARP map, and
per-connection TCP engines whose timers run on the simulator.  Clients have
no CPU model — the paper provisioned one PentiumPro per client process so
the clients are never the bottleneck — but they do pay a per-request
overhead (process wakeup, socket setup) and a per-packet turnaround delay,
both of which shape the sub-saturation region of Figure 8.

:class:`HttpClient` is the paper's "Client" load: a serial loop fetching
one document over and over.  With a :class:`RetryPolicy` attached it gains
an application-level retry stack — per-request deadlines, capped
exponential backoff with seeded jitter, and a retry *budget* — which is
what lets it survive a replica failover in the clustered testbed without
turning goodput collapse into a self-inflicted retry storm.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim.clock import seconds_to_ticks
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.net.addressing import MacAddr
from repro.net.link import NIC
from repro.net.packet import (
    ETHERTYPE_IP,
    EthFrame,
    IPDatagram,
    IPPROTO_TCP,
    TCPSegment,
)
from repro.net.tcp import TCPActions, TCPEngine
from repro.workload.stats import WorkloadStats


class ClientConnection:
    """One TCP connection from a client host, timers included."""

    def __init__(self, host: "ClientHost", remote_ip: str, remote_port: int,
                 local_port: int, delayed_ack_ticks: int = 0):
        self.host = host
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.local_port = local_port
        self.on_deliver: Optional[Callable[[int, Any], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_fin: Optional[Callable[[], None]] = None
        self.on_closed: Optional[Callable[[bool], None]] = None
        self._rto_ev = None
        self._delack_ev = None
        self._done = False
        #: Set when the peer actively refused (RST before establishment).
        self.refused = False
        self.engine, actions = TCPEngine.active_open(
            host.ip, local_port, remote_ip, remote_port,
            delayed_ack_ticks=delayed_ack_ticks)
        self.apply(actions)

    # ------------------------------------------------------------------
    def apply(self, actions: TCPActions) -> None:
        sim = self.host.sim
        for seg in actions.segments:
            self.host.send_segment(self.remote_ip, seg)
        for nbytes, data in actions.deliveries:
            if self.on_deliver is not None:
                self.on_deliver(nbytes, data)
        if actions.established and self.on_established is not None:
            self.on_established()
        if actions.fin_received and self.on_fin is not None:
            self.on_fin()
        if actions.refused:
            self.refused = True
        if actions.cancel_rto and self._rto_ev is not None:
            self._rto_ev.cancel()
            self._rto_ev = None
        if actions.set_rto is not None:
            if self._rto_ev is not None:
                self._rto_ev.cancel()
            self._rto_ev = sim.schedule(
                actions.set_rto, lambda: self.apply(self.engine.on_rto()))
        if actions.cancel_delack and self._delack_ev is not None:
            self._delack_ev.cancel()
            self._delack_ev = None
        if actions.set_delack is not None:
            if self._delack_ev is not None:
                self._delack_ev.cancel()
            self._delack_ev = sim.schedule(
                actions.set_delack,
                lambda: self.apply(self.engine.on_delack()))
        if actions.closed and not self._done:
            self._done = True
            self._cancel_timers()
            self.host.forget(self)
            on_closed = self.on_closed
            # The callbacks are closures capturing this connection (see
            # HttpClient._start_attempt), so they form reference cycles;
            # drop them now that the connection is finished so the dead
            # connection is reclaimed by refcount, not the cyclic GC.
            self.on_deliver = self.on_established = None
            self.on_fin = self.on_closed = None
            if on_closed is not None:
                on_closed(actions.aborted)

    def _cancel_timers(self) -> None:
        for ev in (self._rto_ev, self._delack_ev):
            if ev is not None:
                ev.cancel()
        self._rto_ev = self._delack_ev = None

    # ------------------------------------------------------------------
    def receive(self, seg: TCPSegment) -> None:
        if not self._done:
            self.apply(self.engine.on_segment(seg))

    def send(self, nbytes: int, app_data: Any = None,
             fin: bool = False) -> None:
        self.apply(self.engine.send(nbytes, app_data=app_data, fin=fin))

    def close(self) -> None:
        self.apply(self.engine.close())

    def abort(self) -> None:
        self.apply(self.engine.abort())


class ClientHost:
    """A simulated client machine (200 MHz PentiumPro running Linux)."""

    def __init__(self, sim: Simulator, ip: str,
                 costs: Optional[CostModel] = None,
                 stats: Optional[WorkloadStats] = None,
                 label: str = ""):
        self.sim = sim
        self.ip = ip
        self.costs = costs or CostModel.default()
        self.stats = stats or WorkloadStats()
        self.nic = NIC(sim, label=label or f"host-{ip}")
        self.nic.on_receive = self._on_frame
        self.arp_map: Dict[str, MacAddr] = {}
        self._conns: Dict[Tuple[int, str, int], ClientConnection] = {}
        self._next_port = 10_000
        self.rng = random.Random(ip)

    # ------------------------------------------------------------------
    def attach(self, medium) -> None:
        medium.attach(self.nic)

    def learn(self, ip: str, mac: MacAddr) -> None:
        self.arp_map[ip] = mac

    def alloc_port(self) -> int:
        self._next_port += 1
        return self._next_port

    # ------------------------------------------------------------------
    def connect(self, remote_ip: str, remote_port: int,
                delayed_ack_ticks: int = 0) -> ClientConnection:
        conn = ClientConnection(self, remote_ip, remote_port,
                                self.alloc_port(),
                                delayed_ack_ticks=delayed_ack_ticks)
        key = (conn.local_port, remote_ip, remote_port)
        self._conns[key] = conn
        return conn

    def forget(self, conn: ClientConnection) -> None:
        key = (conn.local_port, conn.remote_ip, conn.remote_port)
        self._conns.pop(key, None)

    # ------------------------------------------------------------------
    def send_segment(self, dst_ip: str, seg: TCPSegment) -> None:
        mac = self.arp_map.get(dst_ip)
        if mac is None:
            return  # unresolvable: drop (testbeds always pre-seed)
        dgram = IPDatagram(self.ip, dst_ip, IPPROTO_TCP, seg)
        frame = EthFrame(self.nic.mac, mac, ETHERTYPE_IP, dgram)
        # Client-side turnaround: the process takes a moment to respond.
        self.sim.schedule(self.costs.client_turnaround_ticks,
                          lambda: self.nic.send(frame))

    def _on_frame(self, frame: EthFrame) -> None:
        dgram = frame.payload
        if not isinstance(dgram, IPDatagram) or dgram.dst_ip != self.ip:
            return
        seg = dgram.payload
        if not isinstance(seg, TCPSegment):
            return
        key = (seg.dst_port, dgram.src_ip, seg.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            conn.receive(seg)

    def jittered(self, base_ticks: int, spread: float = 0.2) -> int:
        """Deterministic per-host jitter to avoid phase lock."""
        return int(base_ticks * self.rng.uniform(1 - spread, 1 + spread))


class RetryPolicy:
    """Application-level retry behaviour for :class:`HttpClient`.

    Three mechanisms, all deterministic:

    * **per-attempt deadline** — an attempt that has not completed after
      ``deadline_s`` is aborted client-side (the stalled-replica case a
      TCP RTO alone handles far too slowly for interactive goodput);
    * **capped exponential backoff with seeded jitter** — attempt *n*
      waits ``min(cap, base * 2^(n-1))`` scaled by the client host's own
      seeded RNG, so a failover does not re-synchronize every client into
      a thundering herd;
    * **retry budget** — a token account that earns ``budget_ratio``
      tokens per fresh request and spends one whole token per retry
      (fixed-point thousandths, so replay is exact).  When the budget is
      empty the failure is final: a dead server makes the clients *back
      off*, not amplify the outage into a self-inflicted retry storm.
    """

    __slots__ = ("max_attempts", "deadline_ticks", "backoff_base_ticks",
                 "backoff_cap_ticks", "jitter", "budget_ratio_mils",
                 "budget_cap_mils", "budget_initial_mils")

    def __init__(self, max_attempts: int = 4, deadline_s: float = 0.25,
                 backoff_base_s: float = 0.02, backoff_cap_s: float = 0.16,
                 jitter: float = 0.5, budget_ratio: float = 0.2,
                 budget_cap: int = 20, budget_initial: int = 5):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.deadline_ticks = seconds_to_ticks(deadline_s)
        self.backoff_base_ticks = seconds_to_ticks(backoff_base_s)
        self.backoff_cap_ticks = seconds_to_ticks(backoff_cap_s)
        self.jitter = jitter
        #: Budget arithmetic in integer thousandths of a token.
        self.budget_ratio_mils = int(budget_ratio * 1000)
        self.budget_cap_mils = budget_cap * 1000
        self.budget_initial_mils = budget_initial * 1000

    def backoff_ticks(self, attempt: int, rng: random.Random) -> int:
        """Delay before retry attempt ``attempt`` (2, 3, ...), jittered."""
        base = min(self.backoff_cap_ticks,
                   self.backoff_base_ticks << max(0, attempt - 2))
        return max(1, int(base * rng.uniform(1 - self.jitter,
                                             1 + self.jitter)))


class HttpClient(ClientHost):
    """The paper's Client load: serial requests for one document."""

    REQUEST_BYTES = 110

    def __init__(self, sim: Simulator, ip: str, server_ip: str,
                 document: str, costs: Optional[CostModel] = None,
                 stats: Optional[WorkloadStats] = None,
                 stats_class: str = "client",
                 retry: Optional[RetryPolicy] = None):
        super().__init__(sim, ip, costs=costs, stats=stats,
                         label=f"client-{ip}")
        self.server_ip = server_ip
        self.document = document
        self.stats_class = stats_class
        self.retry = retry
        self.requests_started = 0
        self.requests_completed = 0
        self.requests_failed = 0
        self.requests_refused = 0
        self.requests_degraded = 0
        #: Failed attempts redone by the retry stack (never counted as
        #: started requests or completions in their own right).
        self.requests_retried = 0
        #: Retries the budget refused (storm prevention engaging).
        self.retries_denied = 0
        #: Attempts aborted client-side by the per-request deadline.
        self.deadline_aborts = 0
        self.bytes_received = 0
        #: Response size of each completed request (header + body).
        self.response_sizes: list = []
        self._running = False
        self._budget_mils = retry.budget_initial_mils if retry else 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the serial request loop."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(
            self.jittered(self.costs.client_request_overhead_ticks, 1.0),
            self._begin_request)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _begin_request(self) -> None:
        if not self._running:
            return
        self.requests_started += 1
        if self.retry is not None:
            self._budget_mils = min(self.retry.budget_cap_mils,
                                    self._budget_mils
                                    + self.retry.budget_ratio_mils)
        self._start_attempt(1)

    def _take_retry_token(self) -> bool:
        if self._budget_mils >= 1000:
            self._budget_mils -= 1000
            return True
        return False

    def _start_attempt(self, attempt: int) -> None:
        if not self._running:
            return
        from repro.modules.http import HTTPRequest  # avoid import cycle
        conn = self.connect(self.server_ip, 80,
                            delayed_ack_ticks=self.costs.client_delayed_ack_ticks)
        got = {"bytes": 0, "tag": None}
        deadline_ev = None
        if self.retry is not None:
            def expire() -> None:
                # Attempt still open past its deadline: abort client-side
                # (emits RST) and let the closed handler decide on retry.
                self.deadline_aborts += 1
                conn.abort()
            deadline_ev = self.sim.schedule(self.retry.deadline_ticks,
                                            expire)

        conn.on_established = lambda: conn.send(
            self.REQUEST_BYTES, app_data=HTTPRequest("GET", self.document))

        def deliver(nbytes: int, data) -> None:
            got["bytes"] += nbytes
            self.bytes_received += nbytes
            if got["tag"] is None and isinstance(data, tuple) and data:
                got["tag"] = data[0]  # response status ("200", "206", ...)

        conn.on_deliver = deliver
        conn.on_fin = conn.close

        def closed(aborted: bool) -> None:
            if deadline_ev is not None:
                deadline_ev.cancel()
            if aborted or got["bytes"] == 0:
                if self._attempt_failed(attempt, conn):
                    return  # retry scheduled; the logical request stays open
            else:
                self.requests_completed += 1
                self.response_sizes.append(got["bytes"])
                self.stats.complete(self.stats_class, self.sim.now)
                if got["tag"] in ("206", "503"):
                    # Served, but under graceful degradation (shrunk body
                    # or shed CGI).
                    self.requests_degraded += 1
                    self.stats.outcome(self.stats_class, "degraded",
                                       self.sim.now)
            if self._running:
                self.sim.schedule(
                    self.jittered(self.costs.client_request_overhead_ticks),
                    self._begin_request)

        conn.on_closed = closed

    def _attempt_failed(self, attempt: int, conn: ClientConnection) -> bool:
        """One attempt died (aborted, refused, or empty).

        Returns True when a retry of the same logical request was
        scheduled; False when the failure is final (the caller then closes
        out the request and moves on).
        """
        policy = self.retry
        if policy is not None and self._running \
                and attempt < policy.max_attempts:
            if self._take_retry_token():
                # The attempt is recorded as `retried`, never as a fresh
                # start or a completion — the logical request stays open.
                self.requests_retried += 1
                self.stats.outcome(self.stats_class, "retried",
                                   self.sim.now)
                self.sim.schedule(
                    policy.backoff_ticks(attempt + 1, self.rng),
                    lambda: self._retry_attempt(attempt + 1))
                return True
            self.retries_denied += 1
        # Final failure.  Distinguish an active refusal (RST to our SYN)
        # from a silent abort after the retry budget — the latter is the
        # signature of a defense dropping a legitimate client.
        self.requests_failed += 1
        self.stats.fail(self.stats_class)
        if conn.refused:
            self.requests_refused += 1
            self.stats.outcome(self.stats_class, "refused", self.sim.now)
        else:
            self.stats.outcome(self.stats_class, "aborted", self.sim.now)
        return False

    def _retry_attempt(self, attempt: int) -> None:
        if self._running:
            self._start_attempt(attempt)
