"""Workload mix generation.

The paper's clients each fetch one fixed document (that isolates the
variable under study).  Real web traffic is a popularity distribution over
a corpus; this module generates that kind of mix so the examples and
robustness tests can run the server against something messier than the
calibration workloads:

* a document corpus with Zipf-distributed sizes and popularity (the
  classic web-traffic observation from the era's traces);
* a client population whose requests sample that distribution;
* an optional fraction of CGI requests.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.clients import HttpClient


def zipf_weights(n: int, alpha: float = 1.0) -> List[float]:
    """Normalized Zipf weights for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def make_corpus(n_documents: int = 50, seed: int = 7,
                min_bytes: int = 128,
                max_bytes: int = 64 * 1024) -> Dict[str, int]:
    """A document corpus with heavy-tailed sizes.

    Rank-1 documents are small (index pages); the tail holds the large
    objects — matching the era's server traces closely enough for load
    testing.
    """
    rng = random.Random(seed)
    corpus: Dict[str, int] = {}
    for rank in range(1, n_documents + 1):
        base = min_bytes * rank
        jitter = rng.uniform(0.5, 2.0)
        size = max(min_bytes, min(max_bytes, int(base * jitter)))
        corpus[f"/site/page-{rank:03d}"] = size
    return corpus


class MixedWorkloadClient(HttpClient):
    """A client that samples its document per request from a mix."""

    def __init__(self, sim, ip, server_ip, documents: Sequence[str],
                 weights: Sequence[float], seed: int = 0,
                 cgi_fraction: float = 0.0, cgi_uri: str = "/cgi-bin/busy",
                 **kwargs):
        super().__init__(sim, ip, server_ip, documents[0], **kwargs)
        if len(documents) != len(weights):
            raise ValueError("documents and weights must align")
        if not 0.0 <= cgi_fraction <= 1.0:
            raise ValueError("cgi_fraction must be in [0, 1]")
        self._documents = list(documents)
        self._weights = list(weights)
        self._mix_rng = random.Random(f"{ip}/{seed}")
        self.cgi_fraction = cgi_fraction
        self.cgi_uri = cgi_uri
        self.per_document_counts: Dict[str, int] = {}

    def _begin_request(self) -> None:
        if self._mix_rng.random() < self.cgi_fraction:
            self.document = self.cgi_uri
        else:
            self.document = self._mix_rng.choices(
                self._documents, weights=self._weights, k=1)[0]
        self.per_document_counts[self.document] = \
            self.per_document_counts.get(self.document, 0) + 1
        super()._begin_request()


def add_mixed_clients(testbed, count: int,
                      corpus: Optional[Dict[str, int]] = None,
                      alpha: float = 1.0, seed: int = 7,
                      cgi_fraction: float = 0.0) -> List[MixedWorkloadClient]:
    """Attach ``count`` mixed-workload clients to a Testbed.

    Installs the corpus into the server's FS (documents must exist before
    they can be fetched) and wires the clients like ``add_clients`` does.
    """
    corpus = corpus or make_corpus(seed=seed)
    for uri, size in corpus.items():
        if uri not in testbed.server.fs.documents:
            testbed.server.fs.add_document(uri, size)
    documents = sorted(corpus)
    weights = zipf_weights(len(documents), alpha=alpha)
    added = []
    for i in range(count):
        ip = f"10.1.3.{i + 1}"
        client = MixedWorkloadClient(
            testbed.sim, ip, testbed.server.ip, documents, weights,
            seed=seed, cgi_fraction=cgi_fraction,
            costs=testbed.costs, stats=testbed.stats)
        testbed._wire(client, testbed.switch)
        testbed.clients.append(client)
        added.append(client)
    return added
