"""Exporters: JSONL/JSON and Prometheus text dumps of an obs session.

Three files land in the obs directory next to the ``obs.jrnl`` sidecar:

* ``metrics.json`` — canonical (sorted-key, tight-separator) dump of the
  registry: final values plus the tick-stamped series.  These are the
  *byte-identity* bytes: two runs of the same seed must produce
  identical files, and the sha256 of these bytes is what the recorder
  stamps into its ``obs-final`` record.
* ``metrics.prom`` — Prometheus text exposition (counters/gauges/
  histograms with ``_bucket``/``_sum``/``_count``), for eyeballing or
  scraping with standard tooling.
* ``spans.jsonl`` — one span record per line, parents included, so the
  causal chains survive without the sidecar.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Tuple

__all__ = ["prom_name", "prom_text", "write_dump"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """``"tcp.demux_drops{reason=x}"`` -> ``("tcp.demux_drops", {...})``."""
    match = _KEY_RE.match(key)
    if match is None:  # pragma: no cover - keys come from metric_key
        return key, {}
    labels: Dict[str, str] = {}
    raw = match.group("labels")
    if raw:
        for part in raw.split(","):
            name, _, value = part.partition("=")
            labels[name] = value
    return match.group("name"), labels


def prom_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    return _NAME_RE.sub("_", name)


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{prom_name(k)}="{v}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def prom_text(registry) -> str:
    """Prometheus text exposition of a :class:`MetricsRegistry`."""
    lines = []
    typed = set()

    def emit(kind, table):
        for key in sorted(table):
            name, labels = _split_key(key)
            pname = prom_name(name)
            if pname not in typed:
                typed.add(pname)
                lines.append(f"# TYPE {pname} {kind}")
            lines.append(f"{pname}{_prom_labels(labels)} {table[key]}")

    emit("counter", registry.counters)
    emit("gauge", registry.gauges)
    for key in sorted(registry.histograms):
        name, labels = _split_key(key)
        pname = prom_name(name)
        if pname not in typed:
            typed.add(pname)
            lines.append(f"# TYPE {pname} histogram")
        hist = registry.histograms[key]
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.buckets):
            cumulative += count
            lab = _prom_labels({**labels, "le": str(bound)})
            lines.append(f"{pname}_bucket{lab} {cumulative}")
        lab = _prom_labels({**labels, "le": "+Inf"})
        lines.append(f"{pname}_bucket{lab} {hist.count}")
        lines.append(f"{pname}_sum{_prom_labels(labels)} {hist.total}")
        lines.append(f"{pname}_count{_prom_labels(labels)} {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_dump(obs_dir: str, session) -> Dict[str, str]:
    """Write metrics.json / metrics.prom / spans.jsonl into ``obs_dir``."""
    os.makedirs(obs_dir, exist_ok=True)
    paths = {
        "metrics_json": os.path.join(obs_dir, "metrics.json"),
        "metrics_prom": os.path.join(obs_dir, "metrics.prom"),
        "spans_jsonl": os.path.join(obs_dir, "spans.jsonl"),
    }
    with open(paths["metrics_json"], "wb") as fh:
        fh.write(session.metrics_json_bytes())
    with open(paths["metrics_prom"], "w") as fh:
        fh.write(prom_text(session.registry))
    with open(paths["spans_jsonl"], "w") as fh:
        for span in session.spans.spans:
            fh.write(json.dumps(span.to_record(), sort_keys=True,
                                separators=(",", ":")) + "\n")
    return paths
