"""ObsSession: wire the telemetry layer into one replayable run.

The session is a *pure observer*.  It never schedules an event, never
charges a cycle, never touches a kernel table — it only reads counters
at points where the machine already stops to think: defense controller
scans, watchdog scans, driver milestones, and the kernel's existing
kill-listener callback.  That is the whole determinism contract: with a
session attached, ``sim.seq``, every event's order, and the full state
digest are byte-identical to a run without one.

Sampling points (all engine-tick-driven, none per-event):

* ``DefenseController._scan``  → per-scan defense series (EWMA baselines
  vs observed rates, rung states, half-open, token buckets) + monitor
  *signal* spans when a baseline is crossed;
* ``Watchdog._scan``           → sim/kernel series (queue health, CPU
  cycle split, scheduler picks, page pool, quota throttles);
* ``Watchdog._log``            → watchdog spans (detect/defend/escalate/
  rollback/recover), parent-linked to the rung or signal that armed them;
* ``kernel.kill_listeners``    → ``pathKill`` spans (every kill, any
  cause) with the kill report's cycles/pages/threads, parent-linked to
  the watchdog detection — plus per-family kill counters and histograms;
* ``RunDriver`` milestones     → whole-machine samples (workload
  outcomes, cluster dispatcher/health state) + an fsync of the sidecar.

Runs without a watchdog or controller (plain experiments) still get the
milestone samples and kill spans; runs with them get a dense series.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, metric_key
from repro.obs.recorder import SIDECAR_NAME, FlightRecorder
from repro.obs.spans import Span, SpanLog

__all__ = ["ObsSession", "attach_obs", "run_with_obs"]


def _family(name: str) -> str:
    return name.split("-", 1)[0]


class ObsSession:
    """One run's metrics registry + span log + flight recorder."""

    def __init__(self, obs_dir: Optional[str] = None, *,
                 append: bool = False,
                 recorder: Optional[FlightRecorder] = None):
        self.registry = MetricsRegistry()
        self.spans = SpanLog(sink=self._sink_span)
        self.obs_dir = obs_dir
        if recorder is None and obs_dir is not None:
            recorder = FlightRecorder(os.path.join(obs_dir, SIDECAR_NAME),
                                      append=append)
        self.recorder = recorder
        self.driver = None
        self.bed = None
        self.sim = None
        self.kills = 0
        self.metrics_digest: Optional[str] = None

        self._wired: set = set()
        self._labels: Dict[int, Dict] = {}
        self._servers: List[Tuple[object, Dict]] = []
        # Causal-link state: signal/rung/detect/kill span ids.
        self._signal_span: Dict[Tuple, int] = {}
        self._detect_span: Dict[Tuple, int] = {}
        self._detect_family: Dict[Tuple, int] = {}
        self._kill_span: Dict[Tuple, int] = {}
        self._last_signal_id: Optional[int] = None
        self._last_rung_id: Optional[int] = None
        self._last_recorded: Dict[str, float] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, driver) -> "ObsSession":
        """Attach to a built :class:`~repro.snapshot.driver.RunDriver`."""
        driver.obs = self
        self.driver = driver
        self.bed = driver.run.bed
        self.sim = self.bed.sim
        if self.recorder is not None:
            self.recorder.record({"kind": "obs-meta",
                                  "spec": driver.run.spec()})
            self.recorder.sync()
        self._wire()
        return self

    def _wire(self) -> None:
        """Discover servers/controllers/watchdogs; safe to call again.

        Controllers and watchdogs can be created as late as the boot
        milestone (policies apply at build or boot depending on the run
        kind), so every milestone re-scans for new attachment points.
        """
        bed = self.bed
        replicas = getattr(bed, "replicas", None)
        if replicas:
            for index, replica in enumerate(replicas):
                self._wire_server(replica.server, {"replica": index})
        else:
            server = getattr(bed, "server", None)
            if server is not None:
                self._wire_server(server, {})

    def _wire_server(self, server, labels: Dict) -> None:
        if id(server) not in self._wired:
            self._wired.add(id(server))
            self._labels[id(server)] = labels
            self._servers.append((server, labels))
            server.kernel.kill_listeners.append(
                lambda owner, report, _l=labels, _k=server.kernel:
                    self._on_kill(_k, owner, report, _l))
        labels = self._labels[id(server)]
        watchdog = getattr(server.kernel, "watchdog", None)
        if watchdog is not None and getattr(watchdog, "obs", None) is not self:
            watchdog.obs = self
            self._labels[id(watchdog)] = labels
        controller = getattr(server, "defense", None)
        if controller is not None \
                and getattr(controller, "obs", None) is not self:
            controller.obs = self
            self._labels[id(controller)] = labels

    def _lbl(self, obj) -> Dict:
        return self._labels.get(id(obj), {})

    @staticmethod
    def _lkey(labels: Dict) -> Tuple:
        return tuple(sorted(labels.items()))

    # ------------------------------------------------------------------
    # Notification points (called by the instrumented subsystems)
    # ------------------------------------------------------------------
    def on_defense_scan(self, controller, sig) -> None:
        """One controller scan: defense series + monitor signal spans."""
        labels = self._lbl(controller)
        reg = self.registry

        def k(name, **extra):
            return metric_key("defense", name, **{**labels, **extra})

        reg.counter_abs(k("scans"), controller.scans)
        reg.counter_abs(k("absorbed"), controller.absorbed)
        reg.gauge(k("half_open"), sig.half_open)
        reg.gauge(k("free_pages"), sig.free_pages)
        reg.gauge(k("active_paths"), sig.active_paths)
        reg.gauge(k("trap_delta"), sig.trap_delta)
        reg.gauge(k("buckets"), len(controller.buckets))
        for rung, active in sorted(controller.rung_active.items()):
            reg.gauge(k("rung_active", rung=rung), int(active))
        baselines = controller.monitor.baselines
        for prefix in sorted(sig.syn_rates):
            reg.gauge(k("syn_rate", prefix=prefix),
                      round(sig.syn_rates[prefix], 3))
            reg.gauge(k("syn_score", prefix=prefix),
                      round(sig.syn_scores.get(prefix, 0.0), 3))
            base = baselines.get(prefix)
            if base is not None and base.mean is not None:
                reg.gauge(k("syn_baseline", prefix=prefix),
                          round(base.mean, 3))

        lk = self._lkey(labels)
        now = sig.at
        for prefix in sig.hot_prefixes(controller.score_on,
                                       controller.prefix_rate_floor):
            skey = (lk, "syn", prefix)
            if skey in self._signal_span:
                continue
            rate = sig.syn_rates.get(prefix, 0.0)
            score = sig.syn_scores.get(prefix, 0.0)
            base = baselines.get(prefix)
            mean = (base.mean or 0.0) if base is not None else 0.0
            span = self.spans.add(
                "signal", f"{prefix}.0/24",
                f"syn rate {rate:.0f}/s scored {score:.1f} MADs over "
                f"baseline {mean:.0f}/s", tick=now,
                rate=round(rate, 3), score=round(score, 3),
                baseline=round(mean, 3))
            self._signal_span[skey] = span.id
            self._last_signal_id = span.id
        if sig.half_open >= controller.halfopen_on:
            skey = (lk, "halfopen", "")
            if skey not in self._signal_span:
                span = self.spans.add(
                    "signal", "half-open",
                    f"{sig.half_open} half-open connections >= watermark "
                    f"{controller.halfopen_on}", tick=now,
                    half_open=sig.half_open,
                    watermark=controller.halfopen_on)
                self._signal_span[skey] = span.id
                self._last_signal_id = span.id
        if sig.trap_delta > 0:
            skey = (lk, "traps", "")
            if skey not in self._signal_span:
                span = self.spans.add(
                    "signal", "runaway-traps",
                    f"{sig.trap_delta} runaway trap(s) this window",
                    tick=now, trap_delta=sig.trap_delta)
                self._signal_span[skey] = span.id
                self._last_signal_id = span.id
        if sig.free_pages <= controller.pages_on:
            skey = (lk, "pages", "")
            if skey not in self._signal_span:
                span = self.spans.add(
                    "signal", "page-pool",
                    f"{sig.free_pages} free pages <= watermark "
                    f"{controller.pages_on}", tick=now,
                    free_pages=sig.free_pages,
                    watermark=controller.pages_on)
                self._signal_span[skey] = span.id
                self._last_signal_id = span.id

        self._sample_server(controller.server, labels)
        reg.sample(now)
        self._record_sample(now)

    def on_defense_transition(self, controller, action) -> None:
        """One ladder transition: a rung span linked to its signal."""
        labels = self._lbl(controller)
        lk = self._lkey(labels)
        now = self.sim.now if self.sim is not None else 0
        self.registry.inc(metric_key(
            "defense", "transitions",
            **{**labels, "kind": action.kind, "rung": action.rung}))

        if action.kind == "absorb":
            # Non-lethal containment of a watchdog-flagged owner: link it
            # to the detection that flagged the owner, like a kill.
            subject = action.detail.split(" throttled", 1)[0]
            parent = (self._detect_span.get((lk, subject))
                      or self._detect_family.get((lk, _family(subject))))
            self.spans.add("absorb", subject, action.detail,
                           tick=now, parent=parent)
            return

        parent = None
        rung = action.rung
        if rung == "ratelimit":
            prefix = action.detail.split(".0/24", 1)[0]
            skey = (lk, "syn", prefix)
            parent = self._signal_span.get(skey)
            if action.kind == "deescalate":
                self._signal_span.pop(skey, None)
        elif rung == "syncookies":
            skey = (lk, "halfopen", "")
            parent = self._signal_span.get(skey)
            if action.kind == "deescalate":
                self._signal_span.pop(skey, None)
        elif rung == "quota":
            skey = (lk, "traps", "")
            parent = self._signal_span.get(skey)
            if action.kind == "deescalate":
                self._signal_span.pop(skey, None)
        elif rung == "degrade":
            parent = (self._signal_span.get((lk, "traps", ""))
                      or self._signal_span.get((lk, "pages", "")))
            if action.kind == "deescalate":
                self._signal_span.pop((lk, "pages", ""), None)
        span = self.spans.add("rung", rung,
                              f"{action.kind}: {action.detail}",
                              tick=now, parent=parent, action=action.kind)
        if action.kind == "escalate":
            self._last_rung_id = span.id

    def on_watchdog_scan(self, watchdog) -> None:
        """One watchdog scan: sim + kernel series."""
        labels = self._lbl(watchdog)
        reg = self.registry

        def k(name, **extra):
            return metric_key("watchdog", name, **{**labels, **extra})

        reg.counter_abs(k("scans"), watchdog.scans)
        reg.counter_abs(k("kills"), watchdog.kills)
        reg.counter_abs(k("escalations"), watchdog.escalations)
        reg.counter_abs(k("rollbacks"), watchdog.rollbacks)
        self._sample_kernel(watchdog.kernel, labels)
        self._sample_sim()
        now = self.sim.now if self.sim is not None else 0
        reg.sample(now)
        self._record_sample(now)

    def on_watchdog_action(self, watchdog, action) -> None:
        """One watchdog log entry becomes a parent-linked span."""
        labels = self._lbl(watchdog)
        lk = self._lkey(labels)
        kind = action.kind
        self.registry.inc(metric_key("watchdog", "actions",
                                     **{**labels, "kind": kind}))
        if kind == "kill":
            # The pathKill span comes from the kernel kill listener
            # (which sees every kill, not only watchdog-recorded ones).
            return
        now = self.sim.now if self.sim is not None else 0
        subject = action.subject
        if kind == "detect":
            parent = self._last_rung_id or self._last_signal_id
            span = self.spans.add("watchdog", subject,
                                  f"detect: {action.detail}", tick=now,
                                  parent=parent, action=kind)
            self._detect_span[(lk, subject)] = span.id
            self._detect_family[(lk, _family(subject))] = span.id
            return
        if kind in ("defend", "rollback", "escalate"):
            parent = (self._detect_span.get((lk, subject))
                      or self._detect_family.get((lk, _family(subject))))
        elif kind == "recover":
            parent = self._kill_span.get((lk, subject))
        else:  # shed-on | shed-off | fault
            parent = None
        self.spans.add("watchdog", subject,
                       f"{kind}: {action.detail}" if action.detail
                       else kind,
                       tick=now, parent=parent, action=kind)

    def _on_kill(self, kernel, owner, report, labels: Dict) -> None:
        """Kernel kill listener: the terminal link of every kill chain."""
        if not (kernel.kill_reports and kernel.kill_reports[-1] is report):
            # The final sweep of a graceful pathDestroy (record=False):
            # bookkeeping, not containment — count it, no span.
            self.registry.inc(metric_key("kernel", "reclaims", **labels))
            return
        lk = self._lkey(labels)
        now = self.sim.now if self.sim is not None else 0
        self.kills += 1
        family = _family(owner.name)
        reg = self.registry
        reg.inc(metric_key("kernel", "kills", **labels))
        reg.inc(metric_key("kernel", "kills_by_family",
                           **{**labels, "family": family}))
        reg.inc(metric_key("kernel", "killed_cycles",
                           **{**labels, "family": family}), report.cycles)
        reg.inc(metric_key("kernel", "killed_pages",
                           **{**labels, "family": family}), report.pages)
        reg.observe(metric_key("kernel", "kill_cycles", **labels),
                    report.cycles)
        reg.observe(metric_key("kernel", "kill_pages", **labels),
                    report.pages,
                    bounds=(1, 4, 16, 64, 256, 1024, 4096))
        parent = (self._detect_span.get((lk, owner.name))
                  or self._detect_family.get((lk, family))
                  or self._last_rung_id)
        span = self.spans.add(
            "pathKill", owner.name,
            f"reclaimed {report.pages} pages, {report.threads} threads, "
            f"{report.events} events (cost {report.cycles} cycles)",
            tick=now, parent=parent, cycles=report.cycles,
            pages=report.pages, threads=report.threads,
            events=report.events)
        self._kill_span[(lk, owner.name)] = span.id

    def on_milestone(self, driver, name: str) -> None:
        """Driver milestone: whole-machine sample + durable sidecar."""
        self._wire()
        now = self.sim.now if self.sim is not None else 0
        self.spans.add("milestone", name, tick=now)
        self.registry.inc(metric_key("run", "milestones"))
        self._sample_all()
        self.registry.sample(now)
        self._record_sample(now)
        if self.recorder is not None:
            self.recorder.sync()

    def note_attempt(self, attempt: int, resume_info: Dict) -> None:
        """Mark a supervised attempt boundary in the sidecar."""
        if self.recorder is not None:
            self.recorder.record({"kind": "obs-meta", "attempt": attempt,
                                  "resume": resume_info})
            self.recorder.sync()

    # ------------------------------------------------------------------
    # Samplers (pure reads)
    # ------------------------------------------------------------------
    def _sample_sim(self) -> None:
        if self.sim is None:
            return
        reg = self.registry
        for key, value in self.sim.queue_health().items():
            reg.gauge(metric_key("sim", key), value)
        attacker = getattr(self.bed, "syn_attacker", None)
        pool = getattr(attacker, "pool", None)
        if pool is not None:
            for key, value in pool.stats().items():
                reg.gauge(metric_key("net", f"frame_pool_{key}"), value)

    def _sample_kernel(self, kernel, labels: Dict) -> None:
        reg = self.registry

        def k(name):
            return metric_key("kernel", name, **labels)

        reg.gauge(k("free_pages"), kernel.allocator.free_pages)
        reg.counter_abs(k("runaway_traps"), kernel.runaway_traps)
        reg.counter_abs(k("sheds"), kernel.sheds)
        reg.counter_abs(k("quota_throttles"), len(kernel.quotas.throttles))
        reg.counter_abs(k("quota_violations"),
                        len(kernel.quotas.violations))
        cpu = kernel.cpu
        reg.counter_abs(metric_key("cpu", "busy_cycles", **labels),
                        cpu.busy_cycles)
        reg.counter_abs(metric_key("cpu", "idle_cycles", **labels),
                        cpu.idle_cycles)
        reg.counter_abs(metric_key("cpu", "interrupt_cycles", **labels),
                        cpu.interrupt_cycles)
        reg.counter_abs(metric_key("cpu", "scheduler_picks", **labels),
                        cpu.picks)

    def _sample_server(self, server, labels: Dict) -> None:
        reg = self.registry
        tcp = server.tcp
        for reason in sorted(tcp.demux_drops):
            reg.counter_abs(
                metric_key("tcp", "demux_drops",
                           **{**labels, "reason": reason}),
                tcp.demux_drops[reason])
        reg.counter_abs(metric_key("tcp", "syncookies_sent", **labels),
                        tcp.syncookies_sent)
        reg.counter_abs(metric_key("tcp", "syncookies_accepted", **labels),
                        tcp.syncookies_accepted)
        reg.gauge(metric_key("tcp", "half_open", **labels),
                  tcp.half_open())
        http = server.http
        reg.counter_abs(metric_key("http", "requests_served", **labels),
                        http.requests_served)
        reg.counter_abs(metric_key("http", "cgi_shed", **labels),
                        http.cgi_shed)
        reg.gauge(metric_key("http", "degrade_level", **labels),
                  http.degrade_level)

    def _sample_cluster(self) -> None:
        bed = self.bed
        dispatcher = getattr(bed, "dispatcher", None)
        if dispatcher is None:
            return
        reg = self.registry
        for name in ("forwarded_in", "forwarded_out", "edge_shed",
                     "drops_no_replica", "drained_conns", "rst_sent"):
            reg.counter_abs(metric_key("cluster", name),
                            getattr(dispatcher, name))
        health = getattr(bed, "health", None)
        if health is not None:
            reg.counter_abs(metric_key("cluster", "failovers"),
                            sum(1 for _, _, kind in health.transitions
                                if kind == "down"))
            for h in health.replicas:
                reg.gauge(metric_key("cluster", "replica_up",
                                     replica=h.index), int(h.up))
                reg.gauge(metric_key("cluster", "probe_score",
                                     replica=h.index), round(h.score, 6))
                reg.counter_abs(metric_key("cluster", "probes_sent",
                                           replica=h.index), h.probes_sent)
                reg.counter_abs(metric_key("cluster", "probe_misses",
                                           replica=h.index), h.misses)

    def _sample_workload(self) -> None:
        stats = getattr(self.bed, "stats", None)
        if stats is None:
            return
        classes = set(stats._completions) | {c for c, _ in stats._outcomes}
        for cls in sorted(classes):
            self.registry.counter_abs(
                metric_key("workload", "completions", cls=cls),
                stats.total(cls))
            for outcome in stats.OUTCOMES:
                total = stats.outcome_total(cls, outcome)
                if total:
                    self.registry.counter_abs(
                        metric_key("workload", "outcomes",
                                   cls=cls, outcome=outcome), total)

    def _sample_all(self) -> None:
        self._sample_sim()
        for server, labels in self._servers:
            self._sample_kernel(server.kernel, labels)
            self._sample_server(server, labels)
        self._sample_cluster()
        self._sample_workload()

    # ------------------------------------------------------------------
    # Recorder plumbing
    # ------------------------------------------------------------------
    def _sink_span(self, record: Dict) -> None:
        if self.recorder is not None:
            self.recorder.record({"kind": "span", **record})

    def _record_sample(self, tick: int) -> None:
        """Stream only the metrics that changed since the last record."""
        if self.recorder is None:
            return
        changed = {}
        for table in (self.registry.counters, self.registry.gauges):
            for key, value in table.items():
                if self._last_recorded.get(key) != value:
                    changed[key] = value
                    self._last_recorded[key] = value
        if changed:
            self.recorder.record({
                "kind": "sample", "tick": tick,
                "metrics": {k: changed[k] for k in sorted(changed)}})

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def metrics_json_bytes(self) -> bytes:
        """The canonical metrics dump — the byte-identity artifact."""
        return (json.dumps(self.registry.dump(), sort_keys=True,
                           separators=(",", ":")) + "\n").encode()

    def finish(self) -> Dict:
        """Final sample, final record, dump files; returns a summary."""
        if self._finished:
            return self._summary()
        self._finished = True
        now = self.sim.now if self.sim is not None else 0
        self._sample_all()
        self.registry.sample(now)
        self._record_sample(now)
        blob = self.metrics_json_bytes()
        self.metrics_digest = hashlib.sha256(blob).hexdigest()
        if self.recorder is not None:
            self.recorder.record({
                "kind": "obs-final",
                "samples": self.registry.samples_taken,
                "spans": len(self.spans),
                "kills": self.kills,
                "metrics_digest": self.metrics_digest,
            })
            self.recorder.close()
        if self.obs_dir is not None:
            from repro.obs.export import write_dump
            write_dump(self.obs_dir, self)
        return self._summary()

    def _summary(self) -> Dict:
        return {
            "obs_dir": self.obs_dir,
            "samples": self.registry.samples_taken,
            "series": len(self.registry.series),
            "spans": len(self.spans),
            "kills": self.kills,
            "metrics_digest": self.metrics_digest,
        }

    def describe(self) -> str:
        s = self._summary()
        line = (f"obs: {s['samples']} samples over {s['series']} series, "
                f"{s['spans']} spans, {s['kills']} kill(s)")
        if self.obs_dir:
            line += (f" -> {self.obs_dir}\n"
                     f"obs: query with `python -m repro obs summary "
                     f"--obs-dir {self.obs_dir}`")
        return line


def attach_obs(driver, obs_dir: Optional[str] = None, *,
               append: bool = False) -> ObsSession:
    """Create a session (with a sidecar when ``obs_dir``) and attach it."""
    return ObsSession(obs_dir, append=append).attach(driver)


def run_with_obs(run, obs_dir: Optional[str] = None):
    """Drive ``run`` to completion with telemetry; returns
    ``(result, session)``."""
    from repro.snapshot.driver import RunDriver

    driver = RunDriver(run)
    session = attach_obs(driver, obs_dir)
    result = driver.run_all()
    session.finish()
    return result, session
