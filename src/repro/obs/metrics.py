"""The deterministic metrics registry.

Every metric is keyed ``subsystem.name{label=value,...}`` (labels sorted,
so a key has exactly one spelling) and carries only values derived from
simulated state — ticks, cycle counts, rates computed on the simulated
clock.  Nothing here reads the wall clock or allocates per simulated
event, which is what makes the registry safe to leave attached to a
deterministic run: the same seed produces the same key set, the same
tick-stamped series, and a byte-identical :meth:`MetricsRegistry.dump`.

Three metric kinds, mirroring the Prometheus model:

* **counters** — monotonically increasing totals (``inc``), or absolute
  mirrors of counters the machine already maintains (``counter_abs``);
* **gauges** — point-in-time values (``gauge``);
* **histograms** — fixed-bound bucket counts plus sum/count
  (``observe``), for per-kill resource distributions.

``sample(tick)`` snapshots every counter and gauge into its tick-stamped
series; consecutive identical values are collapsed so an idle metric
costs one entry, not one per sample.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (cycles/pages scale).
DEFAULT_BOUNDS: Tuple[int, ...] = (
    10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)

__all__ = ["DEFAULT_BOUNDS", "Histogram", "MetricsRegistry", "metric_key"]


def metric_key(subsystem: str, name: str, **labels) -> str:
    """Canonical metric key: ``subsystem.name{a=1,b=x}`` (labels sorted)."""
    base = f"{subsystem}.{name}"
    if not labels:
        return base
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{base}{{{inner}}}"


class Histogram:
    """Fixed-bound bucket counts with sum and count."""

    __slots__ = ("bounds", "buckets", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +inf bucket last
        self.total = 0
        self.count = 0

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> Dict:
        out = {}
        for bound, n in zip(self.bounds, self.buckets):
            out[f"le_{bound}"] = n
        out["le_inf"] = self.buckets[-1]
        return {"buckets": out, "sum": self.total, "count": self.count}


class MetricsRegistry:
    """Counters, gauges and histograms with tick-stamped series."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: key -> [(tick, value), ...]; consecutive duplicates collapsed.
        self.series: Dict[str, List[Tuple[int, float]]] = {}
        self.samples_taken = 0
        self.last_sample_tick: Optional[int] = None

    # -- writes --------------------------------------------------------
    def inc(self, key: str, delta: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + delta

    def counter_abs(self, key: str, value) -> None:
        """Mirror a counter the machine maintains itself (absolute)."""
        self.counters[key] = value

    def gauge(self, key: str, value) -> None:
        self.gauges[key] = value

    def observe(self, key: str, value,
                bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram(bounds)
        hist.observe(value)

    # -- sampling ------------------------------------------------------
    def sample(self, tick: int) -> None:
        """Snapshot every counter and gauge into its series at ``tick``."""
        self.samples_taken += 1
        self.last_sample_tick = tick
        for table in (self.counters, self.gauges):
            for key, value in table.items():
                points = self.series.get(key)
                if points is None:
                    points = self.series[key] = []
                if points and points[-1][1] == value:
                    continue
                points.append((tick, value))

    # -- reads ---------------------------------------------------------
    def value(self, key: str):
        if key in self.counters:
            return self.counters[key]
        return self.gauges.get(key)

    def keys(self) -> List[str]:
        return sorted(set(self.counters) | set(self.gauges)
                      | set(self.histograms))

    def snapshot(self) -> Dict:
        """Final values only (no series) — the ``summary`` view."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: h.snapshot()
                           for k, h in sorted(self.histograms.items())},
            "samples_taken": self.samples_taken,
            "last_sample_tick": self.last_sample_tick,
        }

    def dump(self) -> Dict:
        """Everything, canonically ordered — the byte-identity artifact."""
        out = self.snapshot()
        out["series"] = {k: [[t, v] for t, v in pts]
                         for k, pts in sorted(self.series.items())}
        return out
