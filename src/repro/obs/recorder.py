"""The flight recorder: CRC-framed telemetry that survives SIGKILL.

Telemetry streams into a journal *sidecar* (``obs.jrnl``) using the
ESCJRNL framing from :mod:`repro.snapshot.journal` — the same header
line, the same ``<crc32 hex8> <json>\\n`` records, the same crash-only
scan where the first torn or corrupt line ends the trustworthy prefix.
Record kinds::

    obs-meta       run spec + attempt marker (one per writer attach)
    sample         {"tick": T, "metrics": {key: value, ...}}
    span           a parent-linked span record (see repro.obs.spans)
    obs-final      sample/span totals + sha256 of the final metrics dump

Durability policy differs from the run journal on purpose: the run
journal fsyncs every record because resume *correctness* depends on it;
the recorder only ``flush``\\ es per record (the OS page cache survives a
SIGKILLed process) and fsyncs at milestones via :meth:`FlightRecorder.
sync` — telemetry is evidence, not ground truth, so it buys back the
per-record fsync cost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.snapshot.journal import (JOURNAL_HEADER_LINE, JournalError,
                                    decode_record, encode_record)

#: Default sidecar filename inside an obs directory.
SIDECAR_NAME = "obs.jrnl"

__all__ = ["FlightRecorder", "ObsScan", "SIDECAR_NAME", "scan_obs"]


@dataclass
class ObsScan:
    """Everything a reader recovered from a telemetry sidecar."""

    meta: List[Dict] = field(default_factory=list)
    samples: List[Dict] = field(default_factory=list)
    span_records: List[Dict] = field(default_factory=list)
    finals: List[Dict] = field(default_factory=list)
    torn_tail: bool = False
    records: int = 0

    @property
    def complete(self) -> bool:
        """True when the run wrote its final record (no crash mid-run)."""
        return bool(self.finals) and not self.torn_tail

    def final_metrics(self) -> Dict[str, float]:
        """Last-seen value of every metric, from the sample stream.

        Works on a torn (crashed) sidecar too — that is the point of the
        flight recorder: the evidence up to the last flushed record.
        """
        out: Dict[str, float] = {}
        for sample in self.samples:
            out.update(sample.get("metrics", {}))
        return out

    def series(self, key: str) -> List:
        """Tick-stamped values of one metric across the sample stream."""
        points = []
        last = None
        for sample in self.samples:
            metrics = sample.get("metrics", {})
            if key in metrics and metrics[key] != last:
                last = metrics[key]
                points.append((sample["tick"], last))
        return points


def scan_obs(path: str) -> ObsScan:
    """Read the trustworthy prefix of a telemetry sidecar."""
    scan = ObsScan()
    try:
        with open(path, "rb") as fh:
            lines = fh.readlines()
    except OSError:
        return scan
    if not lines:
        return scan
    if lines[0] != JOURNAL_HEADER_LINE:
        raise JournalError(
            f"{path}: not a telemetry sidecar (bad header "
            f"{lines[0][:24]!r})")
    for line in lines[1:]:
        record = decode_record(line)
        if record is None:
            scan.torn_tail = True
            break
        scan.records += 1
        kind = record.get("kind")
        if kind == "obs-meta":
            scan.meta.append(record)
        elif kind == "sample":
            scan.samples.append(record)
        elif kind == "span":
            scan.span_records.append(record)
        elif kind == "obs-final":
            scan.finals.append(record)
    return scan


class FlightRecorder:
    """Append-only CRC-framed telemetry writer.

    ``append=False`` (the default) truncates and starts a fresh sidecar;
    ``append=True`` extends an existing one (a supervised child resuming
    after SIGKILL keeps the pre-crash telemetry and marks the new
    attempt with its own ``obs-meta`` record).
    """

    def __init__(self, path: str, append: bool = False):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fresh = (not append or not os.path.exists(path)
                 or os.path.getsize(path) == 0)
        if not fresh:
            scan_obs(path)  # validates the header; raises if alien
        self._fh = open(path, "wb" if fresh or not append else "ab")
        if fresh:
            self._fh.write(JOURNAL_HEADER_LINE)
            self._fh.flush()
        self.records_written = 0

    def record(self, record: Dict) -> None:
        """Frame and write one record; flushed so SIGKILL cannot eat it."""
        self._fh.write(encode_record(record))
        self._fh.flush()
        self.records_written += 1

    def sync(self) -> None:
        """fsync — called at milestones, not per record (see module doc)."""
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
