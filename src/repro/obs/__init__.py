"""Deterministic observability: metrics, causal spans, flight recorder.

The obs package watches a replayable run without perturbing it.  An
:class:`ObsSession` attaches to a :class:`~repro.snapshot.driver.
RunDriver` and hangs off hook points the machine already has — defense
controller scans, watchdog scans, kernel kill listeners, driver
milestones — so with a session attached the event order, ``sim.seq``
and every digest stay byte-identical to an unobserved run, and two runs
of the same seed produce byte-identical telemetry.

Layers:

* :mod:`repro.obs.metrics`  — the registry (counters/gauges/histograms
  keyed ``subsystem.name{labels}`` with tick-stamped series);
* :mod:`repro.obs.spans`    — parent-linked causal spans (signal →
  rung → watchdog → pathKill chains);
* :mod:`repro.obs.recorder` — the CRC-framed ``obs.jrnl`` sidecar that
  survives SIGKILL (ESCJRNL framing shared with the run journal);
* :mod:`repro.obs.export`   — JSON / Prometheus-text / JSONL dumps;
* :mod:`repro.obs.session`  — the wiring;
* :mod:`repro.obs.cli`      — ``python -m repro obs``.
"""

from repro.obs.metrics import (DEFAULT_BOUNDS, Histogram, MetricsRegistry,
                               metric_key)
from repro.obs.recorder import (SIDECAR_NAME, FlightRecorder, ObsScan,
                                scan_obs)
from repro.obs.session import ObsSession, attach_obs, run_with_obs
from repro.obs.spans import Span, SpanLog

__all__ = [
    "DEFAULT_BOUNDS", "FlightRecorder", "Histogram", "MetricsRegistry",
    "ObsScan", "ObsSession", "SIDECAR_NAME", "Span", "SpanLog",
    "attach_obs", "metric_key", "run_with_obs", "scan_obs",
]
