"""Parent-linked causal spans.

The ring-buffer :class:`~repro.sim.trace.Tracer` records flat events; a
:class:`SpanLog` upgrades that into a causal structure: each span may
name a parent, so a ``pathKill`` links back through the watchdog
detection and the defense rung that armed it to the monitor signal that
started the episode.  ``repro obs explain --kill <path>`` walks exactly
this chain.

Span ids are a per-log counter starting at 1 — fully deterministic, so
two runs of the same seed emit identical span streams.  A ``Tracer``
built with ``span_log=`` forwards its flat records here too (parentless),
which keeps the two views consistent without double instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.clock import TICKS_PER_SECOND

__all__ = ["Span", "SpanLog"]


@dataclass
class Span:
    """One causal point-event: what happened, when, and because of what."""

    id: int
    parent: Optional[int]
    tick: int
    kind: str        # signal | rung | watchdog | pathKill | absorb | ...
    subject: str
    detail: str = ""
    values: Dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.tick / TICKS_PER_SECOND

    def to_record(self) -> Dict:
        return {"id": self.id, "parent": self.parent, "tick": self.tick,
                "span": self.kind, "subject": self.subject,
                "detail": self.detail, "values": self.values}

    @classmethod
    def from_record(cls, record: Dict) -> "Span":
        return cls(id=record["id"], parent=record.get("parent"),
                   tick=record["tick"], kind=record["span"],
                   subject=record.get("subject", ""),
                   detail=record.get("detail", ""),
                   values=record.get("values", {}))

    def __str__(self) -> str:
        head = (f"[{self.seconds:10.6f}s] #{self.id:<4d} "
                f"{self.kind:8s} {self.subject}")
        if self.detail:
            head += f" — {self.detail}"
        return head


class SpanLog:
    """Append-only span store with deterministic ids and chain walking."""

    def __init__(self, sink: Optional[Callable[[Dict], None]] = None):
        self.spans: List[Span] = []
        self.by_id: Dict[int, Span] = {}
        self._next = 1
        #: Optional callable invoked with each new span's record (the
        #: flight recorder streams spans to disk through this).
        self.sink = sink

    def add(self, kind: str, subject: str, detail: str = "", *,
            tick: int, parent: Optional[int] = None, **values) -> Span:
        span = Span(id=self._next, parent=parent, tick=tick, kind=kind,
                    subject=subject, detail=detail, values=values)
        self._next += 1
        self.spans.append(span)
        self.by_id[span.id] = span
        if self.sink is not None:
            self.sink(span.to_record())
        return span

    def load(self, record: Dict) -> Span:
        """Rebuild a span from a decoded record (query-side use)."""
        span = Span.from_record(record)
        self.spans.append(span)
        self.by_id[span.id] = span
        self._next = max(self._next, span.id + 1)
        return span

    # -- queries -------------------------------------------------------
    def find(self, kind: Optional[str] = None,
             subject_contains: str = "") -> List[Span]:
        out = []
        for span in self.spans:
            if kind is not None and span.kind != kind:
                continue
            if subject_contains and subject_contains not in span.subject:
                continue
            out.append(span)
        return out

    def chain(self, span: Span) -> List[Span]:
        """``span`` and its ancestors, root first."""
        out = [span]
        seen = {span.id}
        while span.parent is not None:
            parent = self.by_id.get(span.parent)
            if parent is None or parent.id in seen:
                break
            out.append(parent)
            seen.add(parent.id)
            span = parent
        out.reverse()
        return out

    def __len__(self) -> int:
        return len(self.spans)
