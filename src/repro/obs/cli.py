"""``python -m repro obs`` — query a run's telemetry sidecar.

Every subcommand reads the ``obs.jrnl`` flight-recorder sidecar (the
ESCJRNL-framed stream a run with ``--obs`` leaves behind) — including a
torn one from a SIGKILLed run, in which case the trustworthy prefix is
what you get:

* ``summary``            — record counts, final metric values, kills;
* ``series KEY``         — one metric's tick-stamped series;
* ``explain --kill PATH`` — the causal chain behind a path kill:
  monitor signal → defense rung → watchdog detection → pathKill;
* ``diff DIR_A DIR_B``   — compare two runs' final metrics (exit 1 on
  any difference; the determinism gate runs the same cell twice and
  expects exit 0).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.recorder import SIDECAR_NAME, ObsScan, scan_obs
from repro.obs.spans import SpanLog
from repro.sim.clock import TICKS_PER_SECOND
from repro.snapshot.journal import JournalError

__all__ = ["obs_main"]


def _load(obs_dir: str) -> ObsScan:
    import os
    return scan_obs(os.path.join(obs_dir, SIDECAR_NAME))


def _span_log(scan: ObsScan) -> SpanLog:
    log = SpanLog()
    for record in scan.span_records:
        log.load(record)
    return log


def _summary_cmd(args) -> int:
    scan = _load(args.obs_dir)
    if not scan.records:
        print(f"no telemetry under {args.obs_dir} "
              f"(expected {args.obs_dir}/{SIDECAR_NAME})", file=sys.stderr)
        return 2
    for meta in scan.meta:
        spec = meta.get("spec")
        if spec is not None:
            kind = spec.get("kind") or spec.get("run") or "?"
            print(f"run: {kind} {spec}")
        if "attempt" in meta:
            print(f"attempt {meta['attempt']} "
                  f"(resume: {meta.get('resume')})")
    state = "complete" if scan.complete else \
        ("torn tail (crashed mid-run)" if scan.torn_tail else
         "no final record (crashed or still running)")
    print(f"sidecar: {scan.records} records, {len(scan.samples)} samples, "
          f"{len(scan.span_records)} spans — {state}")
    if scan.finals:
        final = scan.finals[-1]
        print(f"final: {final['samples']} registry samples, "
              f"{final['kills']} kill(s), metrics digest "
              f"{final['metrics_digest'][:16]}...")
    metrics = scan.final_metrics()
    shown = 0
    for key in sorted(metrics):
        if args.prefix and not key.startswith(args.prefix):
            continue
        print(f"  {key} = {metrics[key]}")
        shown += 1
    if args.prefix and not shown:
        print(f"  (no metrics match prefix {args.prefix!r})")
    return 0


def _series_cmd(args) -> int:
    scan = _load(args.obs_dir)
    if not scan.records:
        print(f"no telemetry under {args.obs_dir}", file=sys.stderr)
        return 2
    points = scan.series(args.key)
    if not points:
        known = sorted(scan.final_metrics())
        print(f"no series for {args.key!r}", file=sys.stderr)
        hits = [k for k in known if args.key in k]
        for key in hits[:20]:
            print(f"  did you mean: {key}", file=sys.stderr)
        return 2
    for tick, value in points:
        print(f"{tick / TICKS_PER_SECOND:10.6f}s  {value}")
    return 0


def _explain_cmd(args) -> int:
    scan = _load(args.obs_dir)
    if not scan.records:
        print(f"no telemetry under {args.obs_dir}", file=sys.stderr)
        return 2
    log = _span_log(scan)
    kills = log.find("pathKill", subject_contains=args.kill or "")
    if not kills:
        available = log.find("pathKill")
        if args.kill and available:
            print(f"no pathKill matching {args.kill!r}; kills in this run:")
            for span in available:
                print(f"  {span.subject}")
        else:
            print("no path kills in this run")
        return 2
    for n, kill in enumerate(kills):
        if n:
            print()
        chain = log.chain(kill)
        print(f"kill chain for {kill.subject} "
              f"({len(chain)} link{'s' if len(chain) != 1 else ''}):")
        for depth, span in enumerate(chain):
            indent = "  " * depth + ("└─ " if depth else "")
            line = f"{indent}{span}"
            if span.values:
                vals = ", ".join(f"{k}={v}"
                                 for k, v in sorted(span.values.items()))
                line += f"  [{vals}]"
            print(line)
    return 0


def _diff_cmd(args) -> int:
    scans = []
    for obs_dir in (args.dir_a, args.dir_b):
        scan = _load(obs_dir)
        if not scan.records:
            print(f"no telemetry under {obs_dir}", file=sys.stderr)
            return 2
        scans.append(scan)
    a, b = (s.final_metrics() for s in scans)
    differing = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            differing.append((key, va, vb))
    digests = [s.finals[-1]["metrics_digest"] if s.finals else None
               for s in scans]
    if not differing and None not in digests \
            and digests[0] == digests[1]:
        print(f"identical: {len(a)} metrics, metrics digest "
              f"{digests[0][:16]}... on both sides")
        return 0
    if not differing:
        if None in digests:
            print(f"final metrics identical ({len(a)} keys) but at least "
                  f"one side has no final record (crashed/running); "
                  f"digests not compared")
            return 1
        print(f"final metrics identical ({len(a)} keys) but metrics "
              f"digests differ: {digests[0][:16]} != {digests[1][:16]} "
              f"(series histories diverged)")
        return 1
    print(f"{len(differing)} metric(s) differ:")
    for key, va, vb in differing[:args.limit]:
        print(f"  {key}: {va} != {vb}")
    if len(differing) > args.limit:
        print(f"  ... and {len(differing) - args.limit} more")
    return 1


def obs_main(argv) -> int:
    """``python -m repro obs {summary,series,explain,diff} ...``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Query the telemetry sidecar a run with --obs wrote.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summary",
                           help="record counts and final metric values")
    p_sum.add_argument("--obs-dir", default="obs-out")
    p_sum.add_argument("--prefix", default="",
                       help="only show metrics starting with this prefix")

    p_ser = sub.add_parser("series",
                           help="one metric's tick-stamped series")
    p_ser.add_argument("key", help="metric key, e.g. "
                                   "'defense.half_open' or "
                                   "'sim.events_processed'")
    p_ser.add_argument("--obs-dir", default="obs-out")

    p_exp = sub.add_parser(
        "explain",
        help="walk the causal chain behind a path kill")
    p_exp.add_argument("--kill", default="", metavar="PATH",
                       help="substring of the killed path's name "
                            "(default: every kill in the run)")
    p_exp.add_argument("--obs-dir", default="obs-out")

    p_diff = sub.add_parser(
        "diff", help="compare two runs' final metrics (exit 1 on drift)")
    p_diff.add_argument("dir_a")
    p_diff.add_argument("dir_b")
    p_diff.add_argument("--limit", type=int, default=40,
                        help="max differing keys to print (default 40)")

    args = parser.parse_args(argv)
    handler = {"summary": _summary_cmd, "series": _series_cmd,
               "explain": _explain_cmd, "diff": _diff_cmd}[args.command]
    try:
        return handler(args)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Piped into `head` and the reader closed early — normal use.
        sys.stderr.close()
        return 0
