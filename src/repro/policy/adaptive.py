"""The adaptive policy: static defenses wrapped in a feedback loop.

``AdaptivePolicy`` composes zero or more static policies (their listen
specs and knobs apply unchanged as the *initial* configuration) and then
attaches the closed-loop :class:`~repro.defense.DefenseController`, which
adjusts the machine online: rate limits appear on sources that turn hot,
SYN handling goes stateless past a half-open watermark, quotas flip to
throttle-first, and the webserver degrades gracefully instead of
collapsing — each rung releasing again when its trigger signal recovers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.policy.base import Policy


class AdaptivePolicy(Policy):
    """Wrap static policies with the closed-loop defense controller."""

    def __init__(self, *wrapped: Policy, **controller_kwargs):
        self.wrapped: List[Policy] = list(wrapped)
        self.controller_kwargs = controller_kwargs
        self.controller = None

    def listen_specs(self) -> Optional[List]:
        specs: Optional[List] = None
        for policy in self.wrapped:
            inner = policy.listen_specs()
            if inner is not None:
                specs = (specs or []) + list(inner)
        return specs

    def apply(self, server) -> None:
        from repro.defense import DefenseController
        for policy in self.wrapped:
            policy.apply(server)
        self.controller = DefenseController(server, **self.controller_kwargs)
        self.controller.start()
        watchdog = server.kernel.watchdog
        if watchdog is not None and hasattr(watchdog, "attach_defense"):
            watchdog.attach_defense(self.controller)

    def describe(self) -> str:
        inner = ", ".join(p.describe() for p in self.wrapped) or "none"
        return f"AdaptivePolicy(wrapping: {inner})"
