"""Policy interface.

Policies configure mechanisms; they are applied to a server either before
boot (``listen_specs`` shape the passive paths HTTP creates) or after
construction (``apply`` sets kernel/module knobs).  Escort's four
enforcement levels — ACL, module graph, paths, filters — are all reachable
from here.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.modules.http import ListenSpec
    from repro.server.webserver import ScoutWebServer


class Policy:
    """Base policy: no-op."""

    def listen_specs(self) -> Optional[List["ListenSpec"]]:
        """Passive-path layout this policy requires, or None."""
        return None

    def apply(self, server: "ScoutWebServer") -> None:
        """Configure the server's mechanisms."""

    def describe(self) -> str:
        return type(self).__name__
