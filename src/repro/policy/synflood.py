"""The SYN-flood policy (paper section 4.4.1).

"Escort implements this policy by providing different passive paths: one
accepts SYN requests from the trusted subnet and the other from the
untrusted subnet.  The passive paths also keep track of the number of
active paths they have created which are in the SYN_RCVD state ...  used
to drop SYN requests for a passive path if the outstanding number of paths
in SYN_RCVD state becomes too high.  The important point is that the
policy decides this during demultiplexing time."

Everything here is configuration; the enforcement lives in the TCP demux
function (the count check) and the ETH driver (the cheap early drop).
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.addressing import Subnet
from repro.policy.base import Policy


class SynFloodPolicy(Policy):
    """Trusted/untrusted passive paths with SYN_RCVD caps."""

    def __init__(self, trusted_subnet: Subnet,
                 untrusted_cap: int = 64,
                 trusted_cap: Optional[int] = None):
        if untrusted_cap <= 0:
            raise ValueError("untrusted cap must be positive")
        self.trusted_subnet = trusted_subnet
        self.untrusted_cap = untrusted_cap
        self.trusted_cap = trusted_cap

    def listen_specs(self) -> List:
        from repro.modules.http import ListenSpec
        # Registration order matters: first match wins, so the trusted
        # subnet is carved out before the catch-all untrusted path.
        return [
            ListenSpec(port=80, subnet=self.trusted_subnet,
                       name="passive-trusted", syn_cap=self.trusted_cap),
            ListenSpec(port=80, subnet=Subnet("0.0.0.0/0"),
                       name="passive-untrusted", syn_cap=self.untrusted_cap),
        ]

    def apply(self, server) -> None:
        # Nothing post-boot: the listen specs carry the whole policy.
        pass

    # ------------------------------------------------------------------
    def dropped_syns(self, server) -> int:
        """How many SYNs the demux-time cap has rejected so far."""
        return server.tcp.demux_drops.get("syn-cap", 0)

    def describe(self) -> str:
        return (f"SynFloodPolicy(trusted={self.trusted_subnet.cidr}, "
                f"untrusted_cap={self.untrusted_cap})")
