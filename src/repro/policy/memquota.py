"""The memory-quota policy: detection for memory-shaped attacks.

The paper's distributed-file-system example (section 1) is about resources
that outlive their consumer — cached blocks, device buffers, connection
state.  In Escort all of those are charged to the owning path, which makes
a simple policy possible: bound what one connection may hold, and kill
(and thereby fully reclaim) any connection that exceeds the bound.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.quota import ResourceQuota
from repro.policy.base import Policy
from repro.sim.clock import millis_to_ticks
from repro.sim.cpu import Cycles

SWEEP_COST_CYCLES = 600


class MemoryQuotaPolicy(Policy):
    """Bound each connection path's memory footprint."""

    def __init__(self, max_pages: Optional[int] = 16,
                 max_kmem: Optional[int] = 256 * 1024,
                 max_heap_bytes: Optional[int] = 64 * 1024,
                 sweep_ms: float = 10.0):
        self.quota = ResourceQuota(max_pages=max_pages,
                                   max_kmem=max_kmem,
                                   max_heap_bytes=max_heap_bytes)
        self.sweep_ms = sweep_ms
        self._server = None

    def apply(self, server) -> None:
        self._server = server
        server.tcp.active_path_quota = self.quota
        kernel = server.kernel

        def sweep_body():
            yield Cycles(SWEEP_COST_CYCLES)
            kernel.quotas.sweep(list(server.tcp.conn_table.values()))

        kernel.create_event(kernel.kernel_owner, sweep_body,
                            delay_ticks=millis_to_ticks(self.sweep_ms),
                            periodic=True, name="quota-sweep")

    # ------------------------------------------------------------------
    def violations(self):
        if self._server is None:
            return []
        return list(self._server.kernel.quotas.violations)

    def describe(self) -> str:
        q = self.quota
        return (f"MemoryQuotaPolicy(pages<={q.max_pages}, "
                f"kmem<={q.max_kmem}, heap<={q.max_heap_bytes})")
