"""The runaway-CPU policy (paper sections 4.3.2 and 4.4.3).

"Escort then times out the thread after 2ms and destroys the owner."  The
mechanism is the per-owner maximum thread runtime without yields, enforced
by the CPU, plus ``pathKill``, which reclaims every resource the path holds
in every protection domain.
"""

from __future__ import annotations

from repro.sim.clock import SERVER_CYCLE_HZ
from repro.policy.base import Policy


class RunawayPolicy(Policy):
    """Kill any path whose thread runs more than ``max_runtime_ms``."""

    def __init__(self, max_runtime_ms: float = 2.0):
        if max_runtime_ms <= 0:
            raise ValueError("runtime limit must be positive")
        self.max_runtime_ms = max_runtime_ms
        self._server = None

    @property
    def limit_cycles(self) -> int:
        return int(self.max_runtime_ms * SERVER_CYCLE_HZ / 1000)

    def apply(self, server) -> None:
        # Every active path gets the limit at creation; the kernel's
        # default runaway handler destroys the offending owner, which is
        # exactly this policy's containment step.
        server.tcp.active_path_runtime_limit = self.limit_cycles
        self._server = server

    # ------------------------------------------------------------------
    def kills(self) -> int:
        if self._server is None:
            return 0
        return self._server.kernel.runaway_traps

    def kill_reports(self):
        if self._server is None:
            return []
        return list(self._server.kernel.kill_reports)

    def describe(self) -> str:
        return f"RunawayPolicy({self.max_runtime_ms} ms)"
