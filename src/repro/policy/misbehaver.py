"""The penalty-box policy (paper section 4.4.4).

"Clients that have previously violated some resource bound — e.g., the CGI
attackers in our example — can be identified and their future connection
request packets demultiplexed to a different distinct passive path with a
very small resource allocation (or a very low priority)."

Mechanically: the policy adds one *penalty* passive path to the listener,
wires a predicate ("is this source a known offender?") into demux-time
selection, and hooks the kernel's runaway handler to record the peer IP of
every path killed for exceeding its runtime limit.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.policy.base import Policy


class MisbehaverPolicy(Policy):
    """Demux known offenders to a low-allocation penalty passive path."""

    def __init__(self, penalty_cap: int = 2, penalty_tickets: int = 1,
                 forget_after_offenses: Optional[int] = None):
        if penalty_cap <= 0:
            raise ValueError("penalty cap must be positive")
        self.penalty_cap = penalty_cap
        self.penalty_tickets = penalty_tickets
        self.offenders: Set[str] = set()
        self.offenses_recorded = 0
        self._server = None

    # ------------------------------------------------------------------
    def listen_specs(self) -> List:
        from repro.modules.http import ListenSpec
        # The penalty path plus a catch-all: when composed with another
        # policy that already provides passive paths (e.g. the SYN-flood
        # split), the extra catch-all is simply never reached.
        return [ListenSpec(port=80, name="passive-penalty",
                           syn_cap=self.penalty_cap,
                           tickets=self.penalty_tickets,
                           penalty=True),
                ListenSpec(port=80, name="passive-default")]

    def apply(self, server) -> None:
        self._server = server
        server.tcp.penalty_predicate = self.is_offender
        original = server.kernel.runaway_policy

        def record_and_kill(thread):
            owner = thread.owner
            attrs = getattr(owner, "attributes", None)
            peer = attrs.get("peer_ip") if attrs is not None else None
            original(thread)
            if peer is not None:
                self.record_offender(peer)

        server.kernel.runaway_policy = record_and_kill

    # ------------------------------------------------------------------
    def record_offender(self, ip: str) -> None:
        self.offenses_recorded += 1
        self.offenders.add(ip)

    def is_offender(self, ip: str) -> bool:
        return ip in self.offenders

    def pardon(self, ip: str) -> None:
        self.offenders.discard(ip)

    def penalty_path(self):
        if self._server is None:
            return None
        listener = self._server.tcp.listeners.get(80)
        return listener.penalty_path if listener else None

    def describe(self) -> str:
        return (f"MisbehaverPolicy(cap={self.penalty_cap}, "
                f"offenders={len(self.offenders)})")
