"""Denial-of-service policies (paper section 4.4).

The paper is explicit that it "does not offer any novel denial of service
policies" — it provides the *mechanisms* (accounting, paths, early demux,
pathKill) and demonstrates three representative policies, which are the
three classes here:

* :class:`~repro.policy.synflood.SynFloodPolicy` — trusted/untrusted
  passive paths with SYN_RCVD caps, dropping floods at demux time;
* :class:`~repro.policy.runaway.RunawayPolicy` — a 2 ms maximum thread
  runtime, with the offender's path killed and fully reclaimed;
* :class:`~repro.policy.qos.QosPolicy` — a proportional-share reservation
  sized to guarantee a stream's bandwidth.
"""

from repro.policy.base import Policy
from repro.policy.synflood import SynFloodPolicy
from repro.policy.runaway import RunawayPolicy
from repro.policy.qos import QosPolicy
from repro.policy.misbehaver import MisbehaverPolicy
from repro.policy.memquota import MemoryQuotaPolicy
from repro.policy.adaptive import AdaptivePolicy

__all__ = ["Policy", "SynFloodPolicy", "RunawayPolicy", "QosPolicy",
           "MisbehaverPolicy", "MemoryQuotaPolicy", "AdaptivePolicy"]
