"""The QoS reservation policy (paper section 4.4.2).

"A proportional share scheduler is used to ensure that the path
responsible for this connection receives this bandwidth.  The web server
can only guarantee that enough resources for this stream are available on
the server."  The reservation is a ticket grant: the stream's path gets
enough tickets that even with every best-effort path runnable, its
guaranteed CPU share covers the cycles the stream needs.
"""

from __future__ import annotations

from repro.sim.clock import SERVER_CYCLE_HZ
from repro.policy.base import Policy


class QosPolicy(Policy):
    """Reserve CPU for QoS stream paths via proportional-share tickets."""

    def __init__(self, bandwidth_bps: int = 1_000_000,
                 cycles_per_byte: float = 40.0,
                 pd_cycles_per_byte: float = 155.0,
                 max_competing_owners: int = 80):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.cycles_per_byte = cycles_per_byte
        self.pd_cycles_per_byte = pd_cycles_per_byte
        self.max_competing_owners = max_competing_owners
        self._pd_enabled = False

    def required_share(self, pd_enabled: bool = False) -> float:
        """CPU fraction the stream needs (sending + ACK processing).

        Protection domains multiply the per-byte cost: every data segment
        pays the TCP->IP->ETH crossings on top of the protocol work.
        """
        per_byte = self.pd_cycles_per_byte if pd_enabled \
            else self.cycles_per_byte
        return min(0.9, (self.bandwidth_bps * per_byte) / SERVER_CYCLE_HZ)

    def tickets(self, pd_enabled: bool = False) -> int:
        """Tickets such that share >= required even against a full house
        of single-ticket best-effort owners."""
        f = self.required_share(pd_enabled)
        n = self.max_competing_owners
        return max(1, int(f * n / (1 - f)) + 1)

    def apply(self, server) -> None:
        self._pd_enabled = server.kernel.pd_enabled
        server.http.stream_tickets = self.tickets(self._pd_enabled)
        server.http.stream_rate_bps = self.bandwidth_bps
        if server.kernel.config.scheduler == "edf":
            # Under EDF the reservation is expressed as a period instead
            # of tickets: the stream becomes the (only) periodic task and
            # always preempts the background best-effort paths at its
            # deadlines.
            from repro.modules.http import STREAM_INTERVAL_TICKS
            server.http.stream_period_ticks = STREAM_INTERVAL_TICKS

    def describe(self) -> str:
        return (f"QosPolicy({self.bandwidth_bps} B/s, "
                f"share>={self.required_share(self._pd_enabled):.0%}, "
                f"tickets={self.tickets(self._pd_enabled)})")
