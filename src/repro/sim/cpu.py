"""The virtual CPU.

This module models the server's 300 MHz Alpha: a single processor that
executes *non-preemptive* threads (paper section 3.2) and charges every cycle
it consumes — thread execution, interrupt handling, and idle time alike — to
an *owner*.  Escort's central claim (Table 1 of the paper) is that this
charging covers virtually 100 % of measured cycles; here it covers exactly
100 % by construction, and the experiment harness verifies it by comparing
ledger sums against the wall clock.

Thread bodies are Python generators that yield *instructions*:

``Cycles(n, owner=None)``
    Consume ``n`` CPU cycles, charged to ``owner`` (default: the thread's
    owner).  The explicit-owner form models the paper's softclock/TCP-master
    split, where one thread does work on behalf of several principals.
``Block(waitable)``
    Block until the waitable wakes the thread; the value passed to the wake
    call becomes the result of the ``yield``.
``Sleep(ticks)``
    Block for a fixed amount of simulated time.
``YieldCPU()``
    Voluntarily yield the processor (resets the runaway burst counter).

Interrupts model device/timer activity: they preempt the current thread's
cycle consumption (hardware interrupts are exempt from the non-preemption
rule), consume their own cycles charged to their own owners, then let the
thread resume.  This is what lets a 1000 SYN/s attack steal cycles from best
effort paths in Figure 9 even though threads are non-preemptive.

Runaway detection: each owner may carry a ``runtime_limit_cycles`` (the
paper's "maximum thread runtime without yields", 2 ms in the CGI experiment).
The CPU stops a consuming thread exactly at the limit and invokes the
``on_runaway`` hook, which the kernel wires to its kill policy.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Tuple

from repro.sim.engine import Simulator


class ThreadKilled(Exception):
    """Raised inside a thread generator when its owner is destroyed."""


# ----------------------------------------------------------------------
# Instructions yielded by thread bodies
# ----------------------------------------------------------------------
class Cycles:
    """Consume ``n`` cycles, charged to ``owner`` (default thread owner)."""

    __slots__ = ("n", "owner")

    def __init__(self, n: int, owner=None):
        if n < 0:
            raise ValueError(f"negative cycle count: {n}")
        self.n = n
        self.owner = owner


class Block:
    """Block on a waitable (any object with ``add_waiter(thread)``)."""

    __slots__ = ("waitable",)

    def __init__(self, waitable):
        self.waitable = waitable


class Sleep:
    """Block for ``ticks`` simulated ticks."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: int):
        if ticks < 0:
            raise ValueError(f"negative sleep: {ticks}")
        self.ticks = ticks


class YieldCPU:
    """Voluntarily yield the CPU; resets the runaway burst counter."""

    __slots__ = ()


class Interrupt:
    """A device/timer interrupt.

    ``charges`` is a list of ``(owner, cycles)`` pairs consumed while
    handling the interrupt (e.g. the paper charges raw softclock ticks to the
    kernel but per-connection timeout work to the connection's path).
    ``on_complete`` runs after the cycles have been consumed; it typically
    enqueues data and wakes threads.
    """

    __slots__ = ("charges", "on_complete", "label")

    def __init__(self, charges: List[Tuple[object, int]],
                 on_complete: Optional[Callable[[], None]] = None,
                 label: str = ""):
        self.charges = charges
        self.on_complete = on_complete
        self.label = label

    def total_cycles(self) -> int:
        return sum(c for _, c in self.charges)


# ----------------------------------------------------------------------
# Threads
# ----------------------------------------------------------------------
_RUNNABLE = "runnable"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_DEAD = "dead"
_NEW = "new"


class SimThread:
    """A simulated thread: a generator plus an owner to charge.

    ``owner`` is duck-typed; it must provide ``charge_cycles(n)`` and may
    provide ``runtime_limit_cycles`` (``None`` = unlimited) and ``name``.
    """

    # "escort" is the kernel's backref slot (kernel.attach_thread assigns
    # it from outside); declared here because __slots__ forbids ad-hoc
    # attributes.
    __slots__ = ("tid", "body", "owner", "name", "state", "burst_cycles",
                 "_wake_value", "_exit_callbacks", "escort")

    _next_id = 1

    def __init__(self, body: Generator, owner, name: str = ""):
        self.tid = SimThread._next_id
        SimThread._next_id += 1
        self.body = body
        self.owner = owner
        self.name = name or f"thread-{self.tid}"
        self.state = _NEW
        self.burst_cycles = 0  # consumed since last yield/block
        self._wake_value = None
        self._exit_callbacks: List[Callable[["SimThread"], None]] = []
        self.escort = None

    def on_exit(self, fn: Callable[["SimThread"], None]) -> None:
        """Register ``fn`` to run when the thread finishes or is killed."""
        self._exit_callbacks.append(fn)

    @property
    def alive(self) -> bool:
        return self.state not in (_DONE, _DEAD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name} {self.state}>"


class FIFOScheduler:
    """Minimal round-robin scheduler used by unit tests and as a fallback.

    The real Escort schedulers (priority, proportional share, EDF) live in
    :mod:`repro.kernel.sched` and implement the same four methods.
    """

    def __init__(self) -> None:
        self._queue: Deque[SimThread] = deque()

    def enqueue(self, thread: SimThread) -> None:
        self._queue.append(thread)

    def dequeue(self, thread: SimThread) -> None:
        try:
            self._queue.remove(thread)
        except ValueError:
            pass

    def pick(self) -> Optional[SimThread]:
        while self._queue:
            t = self._queue.popleft()
            if t.alive:
                return t
        return None

    def on_charge(self, thread: SimThread, cycles: int) -> None:
        pass


# ----------------------------------------------------------------------
# The CPU
# ----------------------------------------------------------------------
class CPU:
    """Single simulated processor with exact per-owner cycle accounting.

    Parameters
    ----------
    sim:
        The shared simulator (clock + event queue).
    ticks_per_cycle:
        Clock conversion; 2 for the 300 MHz server on the 600 MHz tick.
    scheduler:
        Object with ``enqueue/dequeue/pick/on_charge``.
    idle_owner:
        Owner charged for cycles during which nothing is runnable.
    """

    def __init__(self, sim: Simulator, ticks_per_cycle: int,
                 scheduler=None, idle_owner=None):
        self.sim = sim
        self.tpc = ticks_per_cycle
        self.scheduler = scheduler or FIFOScheduler()
        self.idle_owner = idle_owner
        self.on_runaway: Optional[Callable[[SimThread], None]] = None
        #: Fault containment hook: when set, an exception escaping a thread
        #: body is delivered here instead of unwinding into the event loop.
        #: The thread is finished (exit callbacks run) before the hook sees
        #: it, so the hook may reclaim the thread's owner safely.
        self.on_thread_fault: Optional[
            Callable[[SimThread, BaseException], None]] = None
        #: Exception classes the containment hook absorbs.  Whoever installs
        #: ``on_thread_fault`` (the kernel's ``enable_fault_containment``)
        #: names the *simulated* fault family here; anything outside it —
        #: a TypeError from a harness bug, say — is recorded in
        #: ``escaped_faults`` and re-raised so campaign runs cannot
        #: silently swallow an invariant-relevant crash as a path fault.
        self.containable_exceptions: Tuple[type, ...] = ()
        #: ``(thread_name, repr(exc))`` pairs for exceptions that escaped
        #: containment (see above); surfaced by the resilience oracle.
        self.escaped_faults: List[Tuple[str, str]] = []
        self.charge_listeners: List[Callable[[object, int], None]] = []

        self.current: Optional[SimThread] = None
        self._completion_event = None
        # In-flight consume chunk:
        # (thread, charge_owner, total, start_tick, trap, requested).
        # At most one chunk is in flight, so its completion callback is the
        # pre-bound method below reading this tuple — no per-chunk closure.
        self._chunk: Optional[
            Tuple[SimThread, object, int, int, bool, int]] = None
        self._chunk_done_cb = self._chunk_done
        # The interrupt whose cycle-consumption event is in flight (at most
        # one: the service loop is strictly sequential); same pattern.
        self._intr: Optional[Interrupt] = None
        self._intr_done_cb = self._intr_done
        # First tick at which the pipeline is free again.  Interrupts can
        # arrive at arbitrary ticks; charging stays exact because all cycle
        # consumption is aligned to cycle boundaries from this watermark.
        self._free_at = 0
        self._pending_interrupts: Deque[Interrupt] = deque()
        self._in_interrupt = False
        # Thread preempted mid-consume by an interrupt, to resume after.
        self._resume: Optional[Tuple[SimThread, object, int]] = None
        self._idle_since: Optional[int] = sim.now

        self.busy_cycles = 0
        self.idle_cycles = 0
        self.interrupt_cycles = 0
        #: Successful scheduler dispatches (observability counter only;
        #: never part of the state digest).
        self.picks = 0

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def _charge(self, owner, cycles: int) -> None:
        if cycles <= 0:
            return
        if owner is not None:
            owner.charge_cycles(cycles)
        for fn in self.charge_listeners:
            fn(owner, cycles)

    def _leave_idle(self) -> None:
        """Account idle time ending now."""
        if self._idle_since is None:
            return
        since = self._idle_since
        self._idle_since = None
        elapsed = self.sim.now - since
        if elapsed > 0:
            cycles = elapsed // self.tpc
            self.idle_cycles += cycles
            self._charge(self.idle_owner, cycles)
            end = since + cycles * self.tpc
            if end > self._free_at:
                self._free_at = end

    def _enter_idle(self) -> None:
        if self._idle_since is None:
            now = self.sim.now
            free_at = self._free_at
            self._idle_since = free_at if free_at > now else now

    def finalize_idle(self) -> None:
        """Flush the idle accumulator (call at the end of a measurement)."""
        if self._idle_since is not None:
            self._leave_idle()
            self._enter_idle()

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def spawn(self, body: Generator, owner, name: str = "") -> SimThread:
        """Create a thread and make it runnable."""
        t = SimThread(body, owner, name=name)
        self.make_runnable(t)
        return t

    def make_runnable(self, thread: SimThread, value=None) -> None:
        """Put a new or blocked thread on the run queue."""
        if not thread.alive:
            return
        if thread.state in (_RUNNABLE, _RUNNING):
            return
        thread._wake_value = value
        thread.state = _RUNNABLE
        self.scheduler.enqueue(thread)
        self._maybe_dispatch()

    def kill_thread(self, thread: SimThread) -> None:
        """Destroy a thread immediately (the only preemption Escort allows).

        The generator is closed, so ``finally`` blocks inside the thread body
        run — but module destructors are a kernel-level concept and are *not*
        invoked here; that distinction is what separates ``pathDestroy`` from
        ``pathKill``.
        """
        if not thread.alive:
            return
        was_current = thread is self.current
        thread.state = _DEAD
        self.scheduler.dequeue(thread)
        if was_current:
            self.current = None
            if self._completion_event is not None:
                self._completion_event.cancel()
                self._completion_event = None
                self._chunk = None
        if self._resume is not None and self._resume[0] is thread:
            self._resume = None
        try:
            thread.body.close()
        except RuntimeError:
            # Closing a generator that is currently executing (kill from a
            # hook invoked at an instruction boundary) — the frame is
            # abandoned instead.
            pass
        for fn in thread._exit_callbacks:
            fn(thread)
        self._sever_thread(thread)
        if was_current:
            self._maybe_dispatch()

    # ------------------------------------------------------------------
    # Interrupts
    # ------------------------------------------------------------------
    def post_interrupt(self, interrupt: Interrupt) -> None:
        """Deliver an interrupt; preempts the current consume chunk."""
        self._pending_interrupts.append(interrupt)
        if self._in_interrupt:
            return  # drained by the in-progress service loop
        if self.current is not None and self._chunk is not None:
            self._preempt_current()
        else:
            self._leave_idle()
        self._service_interrupts()

    def _preempt_current(self) -> None:
        thread, owner, total, start, _trap, _req = self._chunk  # type: ignore[misc]
        self._completion_event.cancel()
        self._completion_event = None
        self._chunk = None
        elapsed = self.sim.now - start
        if elapsed < 0:
            elapsed = 0
        consumed = min(total, -(-elapsed // self.tpc))  # ceil div
        self._charge(owner, consumed)
        self.busy_cycles += consumed
        self.scheduler.on_charge(thread, consumed)
        thread.burst_cycles += consumed
        # The partial cycle the interrupt landed in still belongs to the
        # thread; the interrupt starts at the next cycle boundary.  The
        # rest of the chunk's reservation is released (assignment, not
        # max: _start_chunk reserved through the whole chunk).
        self._free_at = start + consumed * self.tpc
        remaining = total - consumed
        self._resume = (thread, owner, remaining)
        self.current = None

    def _service_interrupts(self) -> None:
        if not self._pending_interrupts:
            self._finish_interrupts()
            return
        self._in_interrupt = True
        intr = self._pending_interrupts.popleft()
        cost = intr.total_cycles()
        self._intr = intr
        if cost > 0:
            now = self.sim.now
            base = self._free_at
            if now > base:
                base = now
            self._free_at = base + cost * self.tpc
            self.sim.at(self._free_at, self._intr_done_cb)
        else:
            self._intr_done()

    def _intr_done(self) -> None:
        """Charge the serviced interrupt and continue draining the queue."""
        intr = self._intr
        self._intr = None
        for owner, cycles in intr.charges:
            self._charge(owner, cycles)
            self.interrupt_cycles += cycles
        if intr.on_complete is not None:
            intr.on_complete()
        self._service_interrupts()

    def _finish_interrupts(self) -> None:
        self._in_interrupt = False
        if self._resume is not None:
            thread, owner, remaining = self._resume
            self._resume = None
            if thread.alive:
                self.current = thread
                thread.state = _RUNNING
                self._start_chunk(thread, owner, remaining)
                return
        self._maybe_dispatch()

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _maybe_dispatch(self) -> None:
        if self.current is not None or self._in_interrupt:
            return
        thread = self.scheduler.pick()
        if thread is None:
            self._enter_idle()
            return
        self.picks += 1
        self._leave_idle()
        self.current = thread
        thread.state = _RUNNING
        self._advance(thread, thread._wake_value)

    def _advance(self, thread: SimThread, value) -> None:
        """Drive the thread generator until it consumes time or blocks."""
        while True:
            try:
                if thread.state == _DEAD:
                    return
                instr = thread.body.send(value)
            except StopIteration:
                self._thread_done(thread)
                return
            except Exception as exc:
                if self.on_thread_fault is None:
                    raise
                if not isinstance(exc, self.containable_exceptions or
                                  Exception):
                    # Not a simulated fault: record it so post-mortems see
                    # what happened, then let it unwind into the event loop
                    # — a harness bug must fail the run, not kill a path.
                    self.escaped_faults.append((thread.name, repr(exc)))
                    raise
                self._thread_faulted(thread, exc)
                return
            value = None

            # Exact-class checks: instruction types are final in practice,
            # and identity comparison beats isinstance in this loop.
            cls = instr.__class__
            if cls is Cycles or isinstance(instr, Cycles):
                owner = instr.owner if instr.owner is not None else thread.owner
                if instr.n == 0:
                    continue
                self._start_chunk(thread, owner, instr.n)
                return
            if cls is Block or isinstance(instr, Block):
                thread.state = _BLOCKED
                thread.burst_cycles = 0
                self.current = None
                instr.waitable.add_waiter(thread)
                self._maybe_dispatch()
                return
            if cls is Sleep or isinstance(instr, Sleep):
                thread.state = _BLOCKED
                thread.burst_cycles = 0
                self.current = None
                self.sim.schedule(instr.ticks,
                                  lambda t=thread: self.make_runnable(t))
                self._maybe_dispatch()
                return
            if cls is YieldCPU or isinstance(instr, YieldCPU):
                thread.state = _RUNNABLE
                thread.burst_cycles = 0
                thread._wake_value = None
                self.current = None
                self.scheduler.enqueue(thread)
                self._maybe_dispatch()
                return
            raise TypeError(f"thread {thread.name} yielded {instr!r}")

    def _start_chunk(self, thread: SimThread, owner, n: int) -> None:
        """Begin consuming ``n`` cycles, splitting at the runaway limit."""
        requested = n
        limit = getattr(thread.owner, "runtime_limit_cycles", None)
        trap = False
        if limit is not None:
            allowance = limit - thread.burst_cycles
            if allowance <= 0:
                self._runaway(thread, owner, requested)
                return
            if n > allowance:
                n = allowance
                trap = True
        start = self.sim.now
        if self._free_at > start:
            start = self._free_at
        end = start + n * self.tpc
        self._chunk = (thread, owner, n, start, trap, requested)
        self._free_at = end
        self._completion_event = self.sim.at(end, self._chunk_done_cb)

    def _chunk_done(self) -> None:
        """The in-flight consume chunk ran to completion (not preempted)."""
        thread, owner, n, _start, trap, requested = self._chunk
        self._completion_event = None
        self._chunk = None
        self._charge(owner, n)
        self.busy_cycles += n
        self.scheduler.on_charge(thread, n)
        thread.burst_cycles += n
        if trap:
            self._runaway(thread, owner, requested - n)
            return
        self._advance(thread, None)

    def _runaway(self, thread: SimThread, owner, remaining: int) -> None:
        """The thread exhausted its owner's runtime allowance.

        ``remaining`` is the unfinished portion of the instruction that hit
        the limit; if the policy spares the thread, it resumes consuming
        that remainder with a fresh allowance.
        """
        hook = self.on_runaway
        if hook is not None:
            hook(thread)
        if thread.alive:
            thread.burst_cycles = 0
            if thread is self.current:
                if remaining > 0:
                    self._start_chunk(thread, owner, remaining)
                else:
                    self._advance(thread, None)
            return
        # kill_thread already re-dispatched.

    def _thread_done(self, thread: SimThread) -> None:
        thread.state = _DONE
        self.current = None
        for fn in thread._exit_callbacks:
            fn(thread)
        self._sever_thread(thread)
        self._maybe_dispatch()

    def _thread_faulted(self, thread: SimThread, exc: BaseException) -> None:
        """An exception escaped the thread body: finish the thread, then
        let the containment hook decide what happens to its owner."""
        thread.state = _DONE
        self.current = None
        for fn in thread._exit_callbacks:
            fn(thread)
        self.on_thread_fault(thread, exc)
        self._sever_thread(thread)
        self._maybe_dispatch()

    @staticmethod
    def _sever_thread(thread: SimThread) -> None:
        """Break the exited thread's reference cycles.

        Every spawned thread carries a SimThread <-> EscortThread 2-cycle
        (the kernel's ``escort`` backref plus the escort's exit callback),
        which refcounting cannot reclaim.  Busy runs retire tens of
        thousands of threads, so left alone these islands become cyclic-GC
        pressure on the event hot path.  The callbacks have all run by the
        time this is called, and ``escort`` is a kernel-lookup convenience
        with no post-exit readers.
        """
        thread._exit_callbacks = []
        thread.escort = None
