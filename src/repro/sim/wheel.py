"""A hierarchical timing wheel: the cancellable-timer front end of the engine.

The simulator's heap is perfect for the *near* future — the next few events
pop in strict ``(time, seq)`` order with C-level tuple comparisons — but it
is a poor home for the timer class of event: TCP retransmit and delayed-ACK
timers, health probes, softclock ticks.  Those are scheduled far ahead and
then usually *cancelled* before they fire, so each one costs a heap sift on
the way in and leaves a lazily-deleted corpse that later costs a sift on
the way out (or a compaction pass).  A timing wheel (Varghese & Lauck's
hashed hierarchical wheel) makes both directions O(1): scheduling appends
to a slot bucket, and a cancelled timer is simply skipped — its bucket is
dropped wholesale when the clock sweeps past, so it never touches the heap
at all.

Determinism is preserved by making the wheel a *deferral* stage, not a
second ordering authority.  Entries are ``(time, seq, event)`` triples —
the same keys the heap sorts — and the wheel never fires anything itself:
when the engine is about to execute an event at time ``T`` it first *pours*
every wheel slot covering times ``<= T`` into the heap, and the heap then
interleaves poured and resident entries into the exact global ``(time,
seq)`` order.  Pouring early is always harmless (the heap re-sorts);
pouring late is impossible because the engine checks ``poured_until``
before trusting the heap's head.  ``live_events()`` reads wheel residents
alongside the heap, so state digests and replay fingerprints are
byte-identical with the wheel on or off — ``tests/test_sim_wheel.py``
proves that the same way the fast-lane tests prove lane-routing opacity.

Geometry: level 0 has 256 slots of 4096 ticks (~6.8 us) covering ~1.75 ms;
levels 1-3 have 64 slots each, every level 64x coarser, for a total
horizon of 2^38 ticks (~7.6 simulated minutes).  Delays shorter than two
slots stay on the heap (they would pour almost immediately), and times
beyond the horizon or behind ``poured_until`` overflow to the heap as
well; the engine makes that routing decision in ``schedule``/``at``.
"""

from __future__ import annotations

from heapq import heappush
from typing import List, Tuple

#: log2 of the level-0 slot width in ticks (4096 ticks ~= 6.8 us).
GRANULARITY_BITS = 12
#: log2 of the level-0 slot count (256 slots ~= 1.75 ms horizon).
LEVEL0_BITS = 8
#: log2 of the slot count of each upper level (64 slots).
UPPER_BITS = 6

_G = GRANULARITY_BITS
_L0_SLOTS = 1 << LEVEL0_BITS
_L0_MASK = _L0_SLOTS - 1
_UP_SLOTS = 1 << UPPER_BITS
_UP_MASK = _UP_SLOTS - 1

#: Level-k (k >= 1) absolute-slot shift *relative to level-0 slots*:
#: level 1 slots are 256 level-0 slots wide, each further level 64x wider.
_SHIFT1 = LEVEL0_BITS                    # 8
_SHIFT2 = LEVEL0_BITS + UPPER_BITS       # 14
_SHIFT3 = LEVEL0_BITS + 2 * UPPER_BITS   # 20

#: One past the last schedulable level-0 slot index (2^26 slots = 2^38 ticks).
HORIZON_SLOTS = 1 << (LEVEL0_BITS + 3 * UPPER_BITS)

#: Minimum delay for wheel placement (~3.5 simulated ms).  The wheel pays
#: for itself on the *timer band* — retransmit, delayed-ACK, health-probe
#: delays that are long and frequently cancelled before firing, where O(1)
#: slot-drop beats heap lazy-deletion debt.  Short delays (CPU chunk
#: completions, link serialization) almost always fire, in near-FIFO
#: order, so routing them through the wheel only adds a pour step on top
#: of the same eventual heap traffic; they stay on the heap.  Exported for
#: the engine's routing decision.
MIN_WHEEL_DELAY = 1 << 21


class TimerWheel:
    """Four-level timing wheel over ``(time, seq, event)`` heap entries.

    The wheel stores events whose ``in_wheel`` flag it owns: set on
    placement, cleared when the entry is poured into the heap.  Cancelled
    entries are carried (their callbacks were already dropped by
    ``Event.cancel``) and discarded at pour time; ``advance`` reports how
    many it discarded so the engine can keep its lazy-deletion ledger
    exact.
    """

    __slots__ = ("count", "scheduled", "poured", "cascades",
                 "_cur0", "poured_until",
                 "_slots0", "_slots1", "_slots2", "_slots3",
                 "_occ0", "_occ1", "_occ2", "_occ3",
                 "_n0", "_n1", "_n2", "_n3")

    def __init__(self) -> None:
        #: Entries currently stored, cancelled ones included.
        self.count = 0
        #: Lifetime counters for queue_health reporting.
        self.scheduled = 0
        self.poured = 0
        self.cascades = 0
        #: Absolute index of the next level-0 slot to pour.
        self._cur0 = 0
        #: Every stored entry has ``time >= poured_until``; the engine
        #: checks this bound before trusting the heap's head, and routes
        #: times below it straight to the heap.
        self.poured_until = 0
        self._slots0: List[List[Tuple]] = [[] for _ in range(_L0_SLOTS)]
        self._slots1: List[List[Tuple]] = [[] for _ in range(_UP_SLOTS)]
        self._slots2: List[List[Tuple]] = [[] for _ in range(_UP_SLOTS)]
        self._slots3: List[List[Tuple]] = [[] for _ in range(_UP_SLOTS)]
        # Per-level occupancy bitmaps (bit i == slot list i non-empty),
        # so sweeps skip empty stretches with integer bit tricks instead
        # of probing every slot.
        self._occ0 = 0
        self._occ1 = 0
        self._occ2 = 0
        self._occ3 = 0
        self._n0 = 0
        self._n1 = 0
        self._n2 = 0
        self._n3 = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def add(self, time: int, seq: int, ev) -> bool:
        """Store one entry; False if ``time`` lies beyond the horizon.

        The caller must guarantee ``time >= poured_until`` (the engine's
        routing check); a placed event gets ``in_wheel = True``.
        """
        if not self._place(time, seq, ev, self._cur0):
            return False
        ev.in_wheel = True
        self.scheduled += 1
        return True

    def _place(self, time: int, seq: int, ev, cur0: int) -> bool:
        """Slot an entry relative to base slot ``cur0``; shared with
        cascading, which re-places a coarser slot's entries mid-sweep."""
        s0 = time >> _G
        d = s0 - cur0
        if d < _L0_SLOTS:
            idx = s0 & _L0_MASK
            self._slots0[idx].append((time, seq, ev))
            self._occ0 |= 1 << idx
            self._n0 += 1
        elif (s0 >> _SHIFT1) - (cur0 >> _SHIFT1) < _UP_SLOTS:
            idx = (s0 >> _SHIFT1) & _UP_MASK
            self._slots1[idx].append((time, seq, ev))
            self._occ1 |= 1 << idx
            self._n1 += 1
        elif (s0 >> _SHIFT2) - (cur0 >> _SHIFT2) < _UP_SLOTS:
            idx = (s0 >> _SHIFT2) & _UP_MASK
            self._slots2[idx].append((time, seq, ev))
            self._occ2 |= 1 << idx
            self._n2 += 1
        elif (s0 >> _SHIFT3) - (cur0 >> _SHIFT3) < _UP_SLOTS:
            idx = (s0 >> _SHIFT3) & _UP_MASK
            self._slots3[idx].append((time, seq, ev))
            self._occ3 |= 1 << idx
            self._n3 += 1
        else:
            return False
        self.count += 1
        return True

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def advance(self, to_time: int, queue: List[Tuple]) -> int:
        """Pour every slot covering times ``<= to_time`` into ``queue``.

        Live entries are heap-pushed with their original ``(time, seq)``
        keys (the heap restores global order); cancelled entries are
        discarded.  Returns the number discarded so the engine can move
        them from its pending-debt to its removed-debt ledger.
        """
        target = (to_time >> _G) + 1
        cur = self._cur0
        if cur >= target:
            return 0
        if self.count == 0:
            # Nothing stored at any level: no pours, no cascades.
            self._cur0 = target
            self.poured_until = target << _G
            return 0
        dropped = 0
        slots0 = self._slots0
        while cur < target:
            if cur & _L0_MASK == 0:
                self._cascade(1, cur)
            if self._n0 == 0:
                boundary = (cur | _L0_MASK) + 1
                cur = boundary if boundary < target else target
                continue
            rel = self._occ0 >> (cur & _L0_MASK)
            boundary = (cur | _L0_MASK) + 1
            if rel == 0:
                cur = boundary if boundary < target else target
                continue
            nxt = cur + ((rel & -rel).bit_length() - 1)
            if nxt >= boundary or nxt >= target:
                cur = boundary if boundary < target else target
                continue
            idx = nxt & _L0_MASK
            bucket = slots0[idx]
            slots0[idx] = []
            self._occ0 &= ~(1 << idx)
            n = len(bucket)
            self._n0 -= n
            self.count -= n
            for entry in bucket:
                ev = entry[2]
                ev.in_wheel = False
                if ev.cancelled:
                    dropped += 1
                else:
                    heappush(queue, entry)
                    self.poured += 1
            cur = nxt + 1
        self._cur0 = cur
        self.poured_until = cur << _G
        return dropped

    def _cascade(self, level: int, cur0: int) -> None:
        """Entering a new level-``level - 1`` window: re-place the level-
        ``level`` slot covering ``cur0`` one level down (top levels first,
        so grandparent entries trickle through their parent)."""
        if level == 1:
            a = cur0 >> _SHIFT1
            if a & _UP_MASK == 0:
                self._cascade(2, cur0)
            idx = a & _UP_MASK
            bucket = self._slots1[idx]
            if not bucket:
                return
            self._slots1[idx] = []
            self._occ1 &= ~(1 << idx)
            self._n1 -= len(bucket)
        elif level == 2:
            a = cur0 >> _SHIFT2
            if a & _UP_MASK == 0:
                self._cascade(3, cur0)
            idx = a & _UP_MASK
            bucket = self._slots2[idx]
            if not bucket:
                return
            self._slots2[idx] = []
            self._occ2 &= ~(1 << idx)
            self._n2 -= len(bucket)
        else:
            a = cur0 >> _SHIFT3
            idx = a & _UP_MASK
            bucket = self._slots3[idx]
            if not bucket:
                return
            self._slots3[idx] = []
            self._occ3 &= ~(1 << idx)
            self._n3 -= len(bucket)
        self.count -= len(bucket)
        self.cascades += 1
        # Cancelled entries are re-placed too: they fall through to the
        # level-0 pour, the single point where the engine's ledger moves.
        for time, seq, ev in bucket:
            self._place(time, seq, ev, cur0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def min_bound(self) -> int:
        """Lower bound on the earliest stored entry's time.

        Exact to one slot at the level holding the earliest entry; the
        engine advances to this bound (cascading coarser levels down) and
        re-examines.  Only called when heap and lane are empty, so it can
        afford bit-scans.  Undefined when ``count == 0``.
        """
        cur0 = self._cur0
        if self._n0:
            base = cur0 & ~_L0_MASK
            best = None
            occ = self._occ0
            while occ:
                i = (occ & -occ).bit_length() - 1
                occ &= occ - 1
                a = base | i
                if a < cur0:
                    a += _L0_SLOTS
                if best is None or a < best:
                    best = a
            return best << _G
        for shift, occ, n in ((_SHIFT1, self._occ1, self._n1),
                              (_SHIFT2, self._occ2, self._n2),
                              (_SHIFT3, self._occ3, self._n3)):
            if not n:
                continue
            cur = cur0 >> shift
            base = cur & ~_UP_MASK
            best = None
            while occ:
                i = (occ & -occ).bit_length() - 1
                occ &= occ - 1
                a = base | i
                if a < cur:
                    a += _UP_SLOTS
                if best is None or a < best:
                    best = a
            return best << (shift + _G)
        raise ValueError("min_bound() on an empty wheel")

    def live_keys(self) -> List[Tuple[int, int]]:
        """Unsorted ``(time, seq)`` keys of every live stored entry.

        Merged (and sorted) with the heap's keys by
        :meth:`Simulator.live_events`, which is what state digests read —
        wheel residency is invisible to them by construction.
        """
        keys = []
        for level in (self._slots0, self._slots1, self._slots2,
                      self._slots3):
            for bucket in level:
                for time, seq, ev in bucket:
                    if not ev.cancelled:
                        keys.append((time, seq))
        return keys

    def cancelled_count(self) -> int:
        """Cancelled entries still stored (diagnostics; O(count))."""
        total = 0
        for level in (self._slots0, self._slots1, self._slots2,
                      self._slots3):
            for bucket in level:
                for _, _, ev in bucket:
                    if ev.cancelled:
                        total += 1
        return total
