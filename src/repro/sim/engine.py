"""The discrete-event engine.

A :class:`Simulator` owns the virtual clock and a priority queue of pending
:class:`Event` objects.  Everything in the reproduction — packet arrivals,
CPU burst completions, softclock ticks, TCP retransmission timers — is an
event scheduled here.

Events are cancellable: cancelling marks the event dead and the main loop
skips it when popped (lazy deletion, the standard trick for heap-backed
simulators).  When cancelled events outnumber live ones the queue is
compacted in place, so long runs that cancel many timers (TCP retransmits
are the classic case) neither grow the heap nor pin the cancelled
callbacks' closures.  Ties in time are broken by insertion order, which
keeps runs deterministic; the snapshot/replay subsystem
(:mod:`repro.snapshot`) verifies that guarantee by digest comparison.

Performance notes (this is the hottest loop in the repository — every
simulated run funnels through the engine millions of times):

* The heap stores ``(time, seq, event)`` tuples, not Event objects, so
  sift comparisons happen on C-level int tuples instead of calling a
  Python ``__lt__`` half a million times per simulated second.
* Zero-delay scheduling — an event scheduled *at the current tick* — is
  the module-graph hand-off pattern, and it never needs the heap at all:
  such events land on a same-tick FIFO *fast lane* (a deque) and are
  popped in O(1).  Ordering is unchanged: every event already in the heap
  for the current tick carries a smaller ``seq`` than any fast-lane entry
  (it was scheduled earlier), so the loop drains due heap entries first
  and then the lane in FIFO order — exactly the global ``(time, seq)``
  order.  The lane is provably empty whenever the clock advances.
* Timer-class events — delays of at least :data:`~repro.sim.wheel.
  MIN_WHEEL_DELAY`, the retransmit/softclock/health-probe band — go to a
  hierarchical timing wheel (:mod:`repro.sim.wheel`) instead of the heap:
  O(1) to schedule, and O(1) to cancel because a cancelled timer's slot is
  simply dropped when the clock sweeps past, with no heap sift and no
  compaction debt.  The wheel *pours* due slots into the heap before the
  loop trusts the heap's head, so execution order stays exactly global
  ``(time, seq)`` order.
* ``step``/``step_until`` fuse the old ``_pop_cancelled`` helper into the
  loop body and bind the queue/lane to locals; ``run(until)`` carries its
  own fused copy of the loop so steady-state runs do not pay a Python
  call per event.
* Fast-lane events fire and die within one tick, and nothing may retain a
  handle to one past its firing (their only use is the hand-off pattern),
  so their Event shells are recycled through a small free list.  Heap and
  wheel events are never recycled: user code holds those handles to
  cancel retransmit timers, sometimes after they fired.

None of this is observable: ``seq``, ``events_processed``, ``now`` and
``live_events()`` — everything the replay fingerprints and state digests
read — are byte-identical with the fast lane, the timer wheel, and the
event pool on or off (the ``fast_lane`` / ``timer_wheel`` / ``event_pool``
constructor flags exist so tests can prove that).

The ledger is exact: every scheduled event is, at any instant, in exactly
one of four states — executed (``events_processed``), stored live, stored
cancelled (``cancelled_pending`` + the wheel's share), or cancelled and
discarded (``cancelled_removed``) — so
``seq == events_processed + pending() + cancelled_removed`` always holds;
:meth:`Simulator.check_invariant` asserts it and the tier-1 suite calls it
after full runs.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.sim.wheel import MIN_WHEEL_DELAY, TimerWheel

#: Compaction is considered once the queue is at least this large; below
#: it the lazy-deletion garbage is too small to matter.
COMPACT_MIN_QUEUE = 64

#: Compact once cancelled events exceed this fraction of the queue.
COMPACT_RATIO = 0.5

#: Module-wide default for the same-tick fast lane; ``Simulator`` instances
#: constructed without an explicit ``fast_lane`` argument follow this, so a
#: test (or an emergency) can A/B the whole system with one assignment.
FAST_LANE_DEFAULT = True

#: Module-wide default for the hierarchical timer wheel (same A/B pattern).
TIMER_WHEEL_DEFAULT = True

#: Module-wide default for fast-lane Event recycling (same A/B pattern).
EVENT_POOL_DEFAULT = True

#: Retained free-list size; beyond this, fired lane events are left to the
#: garbage collector like any other object.
EVENT_POOL_CAP = 512

#: ``poured_until`` stand-in when the wheel is disabled: no event time ever
#: reaches it, so the pour check in the loops stays a single comparison.
_NEVER = 1 << 62

#: Pour-ahead margin: every pour sweeps this far beyond the strictly
#: needed target so the run loops touch the wheel once per ~margin of
#: simulated time instead of once per pop.  Pouring early is harmless —
#: entries keep their ``(time, seq)`` heap keys, so order is unchanged —
#: but the margin must stay *below* ``MIN_WHEEL_DELAY``: a freshly
#: scheduled wheel-band timer lands at ``now + MIN_WHEEL_DELAY`` at the
#: earliest, which this bound keeps ahead of ``poured_until`` so new
#: timers are never demoted to the heap by their own routing check.
POUR_AHEAD = MIN_WHEEL_DELAY >> 1


class Event:
    """A scheduled callback.

    Created through :meth:`Simulator.schedule` / :meth:`Simulator.at`; user
    code only ever needs :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "fired", "in_wheel",
                 "sim")

    def __init__(self, time: int, seq: int, fn: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        self.in_wheel = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event dead; it will never fire.

        The callback reference is dropped immediately — a cancelled event
        may sit in the heap until popped or compacted away, and it must not
        keep its closure (and whatever the closure captures) alive.

        Cancelling an event that already fired is a no-op: the event is
        not stored anywhere, so there is nothing to cancel and no
        lazy-deletion debt to record (stale timer handles — a retransmit
        timer cancelled after it fired — hit this path constantly).
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        self.fn = None
        if self.sim is not None:
            self.sim._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        # The heap itself compares (time, seq, event) tuples and never
        # reaches the event (keys are unique); kept for user-code sorting.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        if self.fired:
            state += " fired"
        return f"<Event t={self.time} seq={self.seq}{state}>"


class Simulator:
    """Virtual clock plus event queue.

    The clock unit is the integer *tick* defined in :mod:`repro.sim.clock`.
    A single Simulator instance is shared by every component of a testbed
    (server, clients, links); components keep a reference to it and schedule
    their own events.

    Parameters
    ----------
    compact_min_queue:
        Queue size below which lazy-deletion debt is never compacted.
    compact_ratio:
        Cancelled-to-queued fraction above which the heap is rebuilt.
    fast_lane:
        Enable the same-tick FIFO bypass (default: the module-level
        :data:`FAST_LANE_DEFAULT`).  Execution order is identical either
        way; the flag exists so determinism tests can prove it.
    timer_wheel:
        Enable the hierarchical timing wheel for timer-class delays
        (default :data:`TIMER_WHEEL_DEFAULT`).  Same opacity contract.
    event_pool:
        Recycle fired fast-lane Event shells through a free list (default
        :data:`EVENT_POOL_DEFAULT`).  Contract: a handle to a zero-delay
        event must not be used after its firing tick — nothing in the
        tree does, zero-delay events being pure hand-offs.
    """

    def __init__(self, *, compact_min_queue: int = COMPACT_MIN_QUEUE,
                 compact_ratio: float = COMPACT_RATIO,
                 fast_lane: Optional[bool] = None,
                 timer_wheel: Optional[bool] = None,
                 event_pool: Optional[bool] = None) -> None:
        if compact_min_queue < 1:
            raise ValueError(
                f"compact_min_queue must be positive: {compact_min_queue}")
        if not 0.0 < compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in (0, 1]: {compact_ratio}")
        self.now: int = 0
        #: Heap of ``(time, seq, event)`` entries (C-level comparisons).
        self._queue: List[Tuple[int, int, Event]] = []
        #: Same-tick FIFO: every entry's time == ``now`` while non-empty.
        self._lane: Deque[Event] = deque()
        self._fast_lane = (FAST_LANE_DEFAULT if fast_lane is None
                           else bool(fast_lane))
        use_wheel = (TIMER_WHEEL_DEFAULT if timer_wheel is None
                     else bool(timer_wheel))
        #: Timer-class backend; ``None`` when disabled.
        self._wheel: Optional[TimerWheel] = TimerWheel() if use_wheel \
            else None
        self._event_pool = (EVENT_POOL_DEFAULT if event_pool is None
                            else bool(event_pool))
        self._free_events: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        # Cancelled events still sitting in the heap or lane (lazy debt).
        self._cancelled_pending: int = 0
        # Cancelled events still sitting in wheel slots (separate ledger:
        # wheel debt is slot-dropped for free and must not trigger heap
        # compactions).
        self._cancelled_wheel: int = 0
        # Cancelled events already discarded (popped, poured away, or
        # compacted out) — the closing entry of the exact ledger.
        self._cancelled_removed: int = 0
        self.compactions: int = 0
        self.compact_min_queue = compact_min_queue
        self.compact_ratio = compact_ratio
        #: Events that bypassed the heap via the fast lane (diagnostics).
        self.fast_lane_events: int = 0
        #: Fired lane events whose shells were reused (diagnostics).
        self.events_recycled: int = 0
        # Progress hook: an out-of-band callback fired every N executed
        # events (see set_progress_hook).  ``_progress_at`` is the next
        # events_processed threshold; _NEVER keeps the per-event check a
        # single false comparison when no hook is installed.
        self._progress_hook: Optional[Callable[[], None]] = None
        self._progress_every: int = 0
        self._progress_at: int = _NEVER

    # ------------------------------------------------------------------
    # Progress hook
    # ------------------------------------------------------------------
    def set_progress_hook(self, fn: Callable[[], None],
                          every_events: int = 1000) -> None:
        """Call ``fn()`` after every ``every_events`` executed events.

        The hook is for *out-of-band* work only — supervision heartbeats,
        crash-injection triggers, wall-clock watchdogs.  It runs between
        events (never mid-callback) and must not schedule, cancel, or
        otherwise touch simulated state: determinism is guaranteed only
        for hooks the simulation cannot observe.
        """
        if every_events < 1:
            raise ValueError(f"every_events must be >= 1: {every_events}")
        self._progress_hook = fn
        self._progress_every = every_events
        self._progress_at = self._events_processed + every_events

    def clear_progress_hook(self) -> None:
        """Remove the progress hook (the per-event check goes dormant)."""
        self._progress_hook = None
        self._progress_every = 0
        self._progress_at = _NEVER

    def _fire_progress(self) -> None:
        # Re-arm before calling: a hook that raises (or never returns —
        # an injected hang) must not be re-entered on the same threshold.
        self._progress_at = self._events_processed + self._progress_every
        self._progress_hook()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        # Body duplicated with ``at`` on purpose: together these are the
        # single hottest call pair in the repository, and the extra frame
        # of ``return self.at(...)`` was measurable.
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self.now + delay
        self._seq = seq = self._seq + 1
        if delay == 0 and self._fast_lane:
            # Same-tick hand-off: FIFO order IS (time, seq) order here,
            # because every lane entry shares ``time`` and ``seq`` is
            # monotonic.  No heap traffic.
            free = self._free_events
            if free:
                ev = free.pop()
                ev.time = time
                ev.seq = seq
                ev.fn = fn
                ev.cancelled = False
                ev.fired = False
                self.events_recycled += 1
            else:
                ev = Event(time, seq, fn, sim=self)
            self._lane.append(ev)
            return ev
        ev = Event(time, seq, fn, sim=self)
        wheel = self._wheel
        if (wheel is not None and delay >= MIN_WHEEL_DELAY
                and time >= wheel.poured_until and wheel.add(time, seq, ev)):
            return ev
        heapq.heappush(self._queue, (time, seq, ev))
        return ev

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute tick ``time`` (>= now)."""
        now = self.now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < {now}")
        self._seq = seq = self._seq + 1
        if time == now and self._fast_lane:
            free = self._free_events
            if free:
                ev = free.pop()
                ev.time = time
                ev.seq = seq
                ev.fn = fn
                ev.cancelled = False
                ev.fired = False
                self.events_recycled += 1
            else:
                ev = Event(time, seq, fn, sim=self)
            self._lane.append(ev)
            return ev
        ev = Event(time, seq, fn, sim=self)
        wheel = self._wheel
        if (wheel is not None and time - now >= MIN_WHEEL_DELAY
                and time >= wheel.poured_until and wheel.add(time, seq, ev)):
            return ev
        heapq.heappush(self._queue, (time, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self, ev: Event) -> None:
        if ev.in_wheel:
            # Wheel residents cost nothing to discard (their slot is
            # dropped wholesale at pour time), so they neither count
            # toward nor trigger heap compaction.
            self._cancelled_wheel += 1
            return
        self._cancelled_pending += 1
        queued = len(self._queue)
        if (self._cancelled_pending > queued * self.compact_ratio
                and queued >= self.compact_min_queue):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events.

        Execution order is unaffected: live events keep their unique
        ``(time, seq)`` keys, so replays are bit-identical whether or not
        a compaction happened.  In-place (slice assignment) so the fused
        run loops' local binding of the queue list stays valid.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        removed = before - len(queue)
        self._cancelled_pending -= removed
        self._cancelled_removed += removed
        self.compactions += 1

    def _pour(self, to_time: int) -> None:
        """Move due wheel slots into the heap (and settle their debt)."""
        dropped = self._wheel.advance(to_time + POUR_AHEAD, self._queue)
        if dropped:
            self._cancelled_wheel -= dropped
            self._cancelled_removed += dropped

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        queue = self._queue
        lane = self._lane
        pop = heapq.heappop
        wheel = self._wheel
        horizon = wheel.poured_until if wheel is not None else _NEVER
        while True:
            if lane and not (queue and queue[0][0] <= self.now):
                # Every due heap entry was scheduled before any lane entry
                # (smaller seq), so the lane only pops once the heap holds
                # nothing for the current tick.
                ev = lane.popleft()
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    self._cancelled_removed += 1
                    continue
                ev.fired = True
                self._events_processed += 1
                self.fast_lane_events += 1
                fn = ev.fn
                ev.fn = None
                free = self._free_events
                if self._event_pool and len(free) < EVENT_POOL_CAP:
                    free.append(ev)
                fn()
                if self._events_processed >= self._progress_at:
                    self._fire_progress()
                return True
            if queue:
                time, _seq, ev = queue[0]
                if time >= horizon and wheel.count:
                    # The wheel may hold earlier entries: pour everything
                    # due up to the candidate, then re-examine the head.
                    self._pour(time)
                    horizon = wheel.poured_until
                    continue
                if ev.cancelled:
                    pop(queue)
                    self._cancelled_pending -= 1
                    self._cancelled_removed += 1
                    continue
                pop(queue)
                self.now = time
                ev.fired = True
                self._events_processed += 1
                ev.fn()
                if self._events_processed >= self._progress_at:
                    self._fire_progress()
                return True
            if wheel is not None and wheel.count:
                self._pour(wheel.min_bound())
                horizon = wheel.poured_until
                continue
            return False

    def step_until(self, until: int) -> bool:
        """Run the next event if it is due at or before ``until``.

        Returns True when an event executed, False when the next live event
        (if any) lies beyond ``until``.  Unlike :meth:`run`, the clock is
        *not* advanced to ``until`` on False — call :meth:`finish_until`
        for that.  ``run(until=X)`` is exactly
        ``while step_until(X): pass`` followed by ``finish_until(X)``; the
        replay driver uses this decomposition to observe the machine
        between events.
        """
        queue = self._queue
        lane = self._lane
        pop = heapq.heappop
        wheel = self._wheel
        horizon = wheel.poured_until if wheel is not None else _NEVER
        while True:
            if lane and not (queue and queue[0][0] <= self.now):
                if self.now > until:
                    return False
                ev = lane.popleft()
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    self._cancelled_removed += 1
                    continue
                ev.fired = True
                self._events_processed += 1
                self.fast_lane_events += 1
                fn = ev.fn
                ev.fn = None
                free = self._free_events
                if self._event_pool and len(free) < EVENT_POOL_CAP:
                    free.append(ev)
                fn()
                if self._events_processed >= self._progress_at:
                    self._fire_progress()
                return True
            if queue:
                time, _seq, ev = queue[0]
                if ev.cancelled:
                    pop(queue)
                    self._cancelled_pending -= 1
                    self._cancelled_removed += 1
                    continue
                if time > until:
                    if (wheel is not None and wheel.count
                            and horizon <= until
                            and wheel.min_bound() <= until):
                        self._pour(wheel.min_bound())
                        horizon = wheel.poured_until
                        continue
                    return False
                if time >= horizon and wheel.count:
                    self._pour(time)
                    horizon = wheel.poured_until
                    continue
                pop(queue)
                self.now = time
                ev.fired = True
                self._events_processed += 1
                ev.fn()
                if self._events_processed >= self._progress_at:
                    self._fire_progress()
                return True
            if (wheel is not None and wheel.count and horizon <= until
                    and wheel.min_bound() <= until):
                # Advance only to the wheel's own earliest bound, never
                # blindly to ``until``: a premature sweep far past ``now``
                # would push ``poured_until`` ahead of future timer
                # placements and demote them all to the heap.
                self._pour(wheel.min_bound())
                horizon = wheel.poured_until
                continue
            return False

    def finish_until(self, until: int) -> None:
        """Advance the clock to exactly ``until`` (if it is not there yet)."""
        if self.now < until:
            self.now = until

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so measurement windows have a
        well-defined end time.
        """
        if until is None:
            while self.step():
                pass
            return
        # Fused copy of the step_until loop: steady-state runs execute
        # every event here, and the per-event Python call into step_until
        # (plus its local re-binds) was the single largest engine cost.
        queue = self._queue
        lane = self._lane
        pop = heapq.heappop
        push_free = self._free_events.append
        pool = self._event_pool
        wheel = self._wheel
        horizon = wheel.poured_until if wheel is not None else _NEVER
        while True:
            if lane and not (queue and queue[0][0] <= self.now):
                ev = lane.popleft()
                if ev.cancelled:
                    self._cancelled_pending -= 1
                    self._cancelled_removed += 1
                    continue
                ev.fired = True
                self._events_processed += 1
                self.fast_lane_events += 1
                fn = ev.fn
                ev.fn = None
                if pool and len(self._free_events) < EVENT_POOL_CAP:
                    push_free(ev)
                fn()
                if self._events_processed >= self._progress_at:
                    self._fire_progress()
                continue
            if queue:
                time, _seq, ev = queue[0]
                if ev.cancelled:
                    pop(queue)
                    self._cancelled_pending -= 1
                    self._cancelled_removed += 1
                    continue
                if time > until:
                    if (wheel is not None and wheel.count
                            and horizon <= until
                            and wheel.min_bound() <= until):
                        self._pour(wheel.min_bound())
                        horizon = wheel.poured_until
                        continue
                    break
                if time >= horizon and wheel.count:
                    self._pour(time)
                    horizon = wheel.poured_until
                    continue
                pop(queue)
                self.now = time
                ev.fired = True
                self._events_processed += 1
                ev.fn()
                if self._events_processed >= self._progress_at:
                    self._fire_progress()
                continue
            if (wheel is not None and wheel.count and horizon <= until
                    and wheel.min_bound() <= until):
                self._pour(wheel.min_bound())
                horizon = wheel.poured_until
                continue
            break
        self.finish_until(until)

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` ticks from the current time."""
        self.run(until=self.now + duration)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for engine diagnostics)."""
        return self._events_processed

    @property
    def seq(self) -> int:
        """Total events ever scheduled (monotonic; part of state digests)."""
        return self._seq

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events, wheel included."""
        n = len(self._queue) + len(self._lane)
        if self._wheel is not None:
            n += self._wheel.count
        return n

    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap or fast-lane slots."""
        return self._cancelled_pending

    def cancelled_removed(self) -> int:
        """Cancelled events already discarded from storage."""
        return self._cancelled_removed

    def live_events(self) -> List[Tuple[int, int]]:
        """Sorted ``(time, seq)`` keys of every live queued event.

        This is the queue's *shape* independent of its internal layout
        (and of whether an event sits in the heap, the lane, or a wheel
        slot), so digests built from it are stable across compactions,
        fast-lane routing, and wheel residency.
        """
        keys = [(time, seq) for time, seq, ev in self._queue
                if not ev.cancelled]
        keys.extend((ev.time, ev.seq) for ev in self._lane
                    if not ev.cancelled)
        if self._wheel is not None:
            keys.extend(self._wheel.live_keys())
        keys.sort()
        return keys

    def check_invariant(self) -> None:
        """Assert the exact scheduling ledger (cheap; O(1)).

        Every scheduled event is executed, stored, or cancelled-and-
        discarded — no event is ever lost or double-counted.  Raises
        AssertionError with the full ledger on breach.
        """
        stored = self.pending()
        total = self._events_processed + stored + self._cancelled_removed
        if total != self._seq:
            raise AssertionError(
                f"event ledger breach: scheduled={self._seq} != "
                f"processed={self._events_processed} + stored={stored} + "
                f"cancelled_removed={self._cancelled_removed} "
                f"(= {total}); health={self.queue_health()}")

    def queue_health(self) -> dict:
        """Engine-health counters for perf runs (see :mod:`repro.sim.trace`)."""
        wheel = self._wheel
        return {
            "now": self.now,
            "events_processed": self._events_processed,
            "scheduled": self._seq,
            "pending": self.pending(),
            "cancelled_pending": self._cancelled_pending,
            "cancelled_wheel": self._cancelled_wheel,
            "cancelled_removed": self._cancelled_removed,
            "compactions": self.compactions,
            "fast_lane_events": self.fast_lane_events,
            "events_recycled": self.events_recycled,
            "wheel_pending": wheel.count if wheel is not None else 0,
            "wheel_scheduled": wheel.scheduled if wheel is not None else 0,
            "wheel_poured": wheel.poured if wheel is not None else 0,
            "wheel_cascades": wheel.cascades if wheel is not None else 0,
        }
