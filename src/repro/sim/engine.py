"""The discrete-event engine.

A :class:`Simulator` owns the virtual clock and a priority queue of pending
:class:`Event` objects.  Everything in the reproduction — packet arrivals,
CPU burst completions, softclock ticks, TCP retransmission timers — is an
event scheduled here.

Events are cancellable: cancelling marks the event dead and the main loop
skips it when popped (lazy deletion, the standard trick for heap-backed
simulators).  When cancelled events outnumber live ones the queue is
compacted in place, so long runs that cancel many timers (TCP retransmits
are the classic case) neither grow the heap nor pin the cancelled
callbacks' closures.  Ties in time are broken by insertion order, which
keeps runs deterministic; the snapshot/replay subsystem
(:mod:`repro.snapshot`) verifies that guarantee by digest comparison.

Performance notes (this is the hottest loop in the repository — every
simulated run funnels through :meth:`Simulator.step` millions of times):

* The heap stores ``(time, seq, event)`` tuples, not Event objects, so
  sift comparisons happen on C-level int tuples instead of calling a
  Python ``__lt__`` half a million times per simulated second.
* Zero-delay scheduling — an event scheduled *at the current tick* — is
  the module-graph hand-off pattern, and it never needs the heap at all:
  such events land on a same-tick FIFO *fast lane* (a deque) and are
  popped in O(1).  Ordering is unchanged: every event already in the heap
  for the current tick carries a smaller ``seq`` than any fast-lane entry
  (it was scheduled earlier), so the loop drains due heap entries first
  and then the lane in FIFO order — exactly the global ``(time, seq)``
  order.  The lane is provably empty whenever the clock advances.
* ``step``/``step_until`` fuse the old ``_pop_cancelled`` helper into the
  loop body and bind the queue/lane to locals, eliminating per-event
  attribute churn.

None of this is observable: ``seq``, ``events_processed``, ``now`` and
``live_events()`` — everything the replay fingerprints and state digests
read — are byte-identical with the fast lane on or off (the
``fast_lane`` constructor flag exists so tests can prove that).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

#: Compaction is considered once the queue is at least this large; below
#: it the lazy-deletion garbage is too small to matter.
COMPACT_MIN_QUEUE = 64

#: Compact once cancelled events exceed this fraction of the queue.
COMPACT_RATIO = 0.5

#: Module-wide default for the same-tick fast lane; ``Simulator`` instances
#: constructed without an explicit ``fast_lane`` argument follow this, so a
#: test (or an emergency) can A/B the whole system with one assignment.
FAST_LANE_DEFAULT = True


class Event:
    """A scheduled callback.

    Created through :meth:`Simulator.schedule` / :meth:`Simulator.at`; user
    code only ever needs :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "sim")

    def __init__(self, time: int, seq: int, fn: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event dead; it will never fire.

        The callback reference is dropped immediately — a cancelled event
        may sit in the heap until popped or compacted away, and it must not
        keep its closure (and whatever the closure captures) alive.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        if self.sim is not None:
            self.sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        # The heap itself compares (time, seq, event) tuples and never
        # reaches the event (keys are unique); kept for user-code sorting.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class Simulator:
    """Virtual clock plus event queue.

    The clock unit is the integer *tick* defined in :mod:`repro.sim.clock`.
    A single Simulator instance is shared by every component of a testbed
    (server, clients, links); components keep a reference to it and schedule
    their own events.

    Parameters
    ----------
    compact_min_queue:
        Queue size below which lazy-deletion debt is never compacted.
    compact_ratio:
        Cancelled-to-queued fraction above which the heap is rebuilt.
    fast_lane:
        Enable the same-tick FIFO bypass (default: the module-level
        :data:`FAST_LANE_DEFAULT`).  Execution order is identical either
        way; the flag exists so determinism tests can prove it.
    """

    def __init__(self, *, compact_min_queue: int = COMPACT_MIN_QUEUE,
                 compact_ratio: float = COMPACT_RATIO,
                 fast_lane: Optional[bool] = None) -> None:
        if compact_min_queue < 1:
            raise ValueError(
                f"compact_min_queue must be positive: {compact_min_queue}")
        if not 0.0 < compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in (0, 1]: {compact_ratio}")
        self.now: int = 0
        #: Heap of ``(time, seq, event)`` entries (C-level comparisons).
        self._queue: List[Tuple[int, int, Event]] = []
        #: Same-tick FIFO: every entry's time == ``now`` while non-empty.
        self._lane: Deque[Event] = deque()
        self._fast_lane = (FAST_LANE_DEFAULT if fast_lane is None
                           else bool(fast_lane))
        self._seq: int = 0
        self._events_processed: int = 0
        # Cancelled events still sitting in the heap or lane (lazy debt).
        self._cancelled_pending: int = 0
        self.compactions: int = 0
        self.compact_min_queue = compact_min_queue
        self.compact_ratio = compact_ratio
        #: Events that bypassed the heap via the fast lane (diagnostics).
        self.fast_lane_events: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn)

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute tick ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        ev = Event(time, self._seq, fn, sim=self)
        if time == self.now and self._fast_lane:
            # Same-tick hand-off: FIFO order IS (time, seq) order here,
            # because every lane entry shares ``time`` and ``seq`` is
            # monotonic.  No heap traffic.
            self._lane.append(ev)
        else:
            heapq.heappush(self._queue, (time, self._seq, ev))
        return ev

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        queued = len(self._queue)
        if (self._cancelled_pending > queued * self.compact_ratio
                and queued >= self.compact_min_queue):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events.

        Execution order is unaffected: live events keep their unique
        ``(time, seq)`` keys, so replays are bit-identical whether or not
        a compaction happened.
        """
        self._queue = [entry for entry in self._queue
                       if not entry[2].cancelled]
        heapq.heapify(self._queue)
        # Cancelled fast-lane entries (rare, and gone by the next clock
        # advance) are the only remaining debt.
        self._cancelled_pending = sum(1 for ev in self._lane
                                      if ev.cancelled)
        self.compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        queue = self._queue
        lane = self._lane
        pop = heapq.heappop
        while True:
            if lane and not (queue and queue[0][0] <= self.now):
                # Every due heap entry was scheduled before any lane entry
                # (smaller seq), so the lane only pops once the heap holds
                # nothing for the current tick.
                ev = lane.popleft()
                if ev.cancelled:
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                self._events_processed += 1
                self.fast_lane_events += 1
                ev.fn()
                return True
            if not queue:
                return False
            time, _seq, ev = queue[0]
            if ev.cancelled:
                pop(queue)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                continue
            pop(queue)
            self.now = time
            self._events_processed += 1
            ev.fn()
            return True

    def step_until(self, until: int) -> bool:
        """Run the next event if it is due at or before ``until``.

        Returns True when an event executed, False when the next live event
        (if any) lies beyond ``until``.  Unlike :meth:`run`, the clock is
        *not* advanced to ``until`` on False — call :meth:`finish_until`
        for that.  ``run(until=X)`` is exactly
        ``while step_until(X): pass`` followed by ``finish_until(X)``; the
        replay driver uses this decomposition to observe the machine
        between events.
        """
        queue = self._queue
        lane = self._lane
        pop = heapq.heappop
        while True:
            if lane and not (queue and queue[0][0] <= self.now):
                if self.now > until:
                    return False
                ev = lane.popleft()
                if ev.cancelled:
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                self._events_processed += 1
                self.fast_lane_events += 1
                ev.fn()
                return True
            if not queue:
                return False
            time, _seq, ev = queue[0]
            if ev.cancelled:
                pop(queue)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                continue
            if time > until:
                return False
            pop(queue)
            self.now = time
            self._events_processed += 1
            ev.fn()
            return True

    def finish_until(self, until: int) -> None:
        """Advance the clock to exactly ``until`` (if it is not there yet)."""
        if self.now < until:
            self.now = until

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so measurement windows have a
        well-defined end time.
        """
        if until is None:
            while self.step():
                pass
            return
        while self.step_until(until):
            pass
        self.finish_until(until)

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` ticks from the current time."""
        self.run(until=self.now + duration)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for engine diagnostics)."""
        return self._events_processed

    @property
    def seq(self) -> int:
        """Total events ever scheduled (monotonic; part of state digests)."""
        return self._seq

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue) + len(self._lane)

    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap or fast-lane slots."""
        return self._cancelled_pending

    def live_events(self) -> List[Tuple[int, int]]:
        """Sorted ``(time, seq)`` keys of every live queued event.

        This is the heap's *shape* independent of its internal array
        layout (and of which lane an event sits in), so digests built from
        it are stable across compactions and fast-lane routing.
        """
        keys = [(time, seq) for time, seq, ev in self._queue
                if not ev.cancelled]
        keys.extend((ev.time, ev.seq) for ev in self._lane
                    if not ev.cancelled)
        keys.sort()
        return keys

    def queue_health(self) -> dict:
        """Engine-health counters for perf runs (see :mod:`repro.sim.trace`)."""
        return {
            "now": self.now,
            "events_processed": self._events_processed,
            "scheduled": self._seq,
            "pending": self.pending(),
            "cancelled_pending": self._cancelled_pending,
            "compactions": self.compactions,
            "fast_lane_events": self.fast_lane_events,
        }
