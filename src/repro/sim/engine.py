"""The discrete-event engine.

A :class:`Simulator` owns the virtual clock and a priority queue of pending
:class:`Event` objects.  Everything in the reproduction — packet arrivals,
CPU burst completions, softclock ticks, TCP retransmission timers — is an
event scheduled here.

Events are cancellable: cancelling marks the event dead and the main loop
skips it when popped (lazy deletion, the standard trick for heap-backed
simulators).  When cancelled events outnumber live ones the queue is
compacted in place, so long runs that cancel many timers (TCP retransmits
are the classic case) neither grow the heap nor pin the cancelled
callbacks' closures.  Ties in time are broken by insertion order, which
keeps runs deterministic; the snapshot/replay subsystem
(:mod:`repro.snapshot`) verifies that guarantee by digest comparison.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Compaction is considered once the queue is at least this large; below
#: it the lazy-deletion garbage is too small to matter.
COMPACT_MIN_QUEUE = 64


class Event:
    """A scheduled callback.

    Created through :meth:`Simulator.schedule` / :meth:`Simulator.at`; user
    code only ever needs :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "sim")

    def __init__(self, time: int, seq: int, fn: Callable[[], None],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event dead; it will never fire.

        The callback reference is dropped immediately — a cancelled event
        may sit in the heap until popped or compacted away, and it must not
        keep its closure (and whatever the closure captures) alive.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        if self.sim is not None:
            self.sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class Simulator:
    """Virtual clock plus event queue.

    The clock unit is the integer *tick* defined in :mod:`repro.sim.clock`.
    A single Simulator instance is shared by every component of a testbed
    (server, clients, links); components keep a reference to it and schedule
    their own events.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        # Cancelled events still sitting in the heap (lazy deletion debt).
        self._cancelled_pending: int = 0
        self.compactions: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn)

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute tick ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        ev = Event(time, self._seq, fn, sim=self)
        heapq.heappush(self._queue, ev)
        return ev

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        if (self._cancelled_pending * 2 > len(self._queue)
                and len(self._queue) >= COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events.

        Execution order is unaffected: live events keep their unique
        ``(time, seq)`` keys, so replays are bit-identical whether or not
        a compaction happened.
        """
        self._queue = [ev for ev in self._queue if not ev.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self.compactions += 1

    def _pop_cancelled(self) -> None:
        heapq.heappop(self._queue)
        if self._cancelled_pending > 0:
            self._cancelled_pending -= 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._queue:
            if self._queue[0].cancelled:
                self._pop_cancelled()
                continue
            ev = heapq.heappop(self._queue)
            self.now = ev.time
            self._events_processed += 1
            ev.fn()
            return True
        return False

    def step_until(self, until: int) -> bool:
        """Run the next event if it is due at or before ``until``.

        Returns True when an event executed, False when the next live event
        (if any) lies beyond ``until``.  Unlike :meth:`run`, the clock is
        *not* advanced to ``until`` on False — call :meth:`finish_until`
        for that.  ``run(until=X)`` is exactly
        ``while step_until(X): pass`` followed by ``finish_until(X)``; the
        replay driver uses this decomposition to observe the machine
        between events.
        """
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                self._pop_cancelled()
                continue
            if ev.time > until:
                return False
            heapq.heappop(self._queue)
            self.now = ev.time
            self._events_processed += 1
            ev.fn()
            return True
        return False

    def finish_until(self, until: int) -> None:
        """Advance the clock to exactly ``until`` (if it is not there yet)."""
        if self.now < until:
            self.now = until

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so measurement windows have a
        well-defined end time.
        """
        if until is None:
            while self.step():
                pass
            return
        while self.step_until(until):
            pass
        self.finish_until(until)

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` ticks from the current time."""
        self.run(until=self.now + duration)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for engine diagnostics)."""
        return self._events_processed

    @property
    def seq(self) -> int:
        """Total events ever scheduled (monotonic; part of state digests)."""
        return self._seq

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_pending

    def live_events(self) -> List[Tuple[int, int]]:
        """Sorted ``(time, seq)`` keys of every live queued event.

        This is the heap's *shape* independent of its internal array
        layout, so digests built from it are stable across compactions.
        """
        return sorted((ev.time, ev.seq) for ev in self._queue
                      if not ev.cancelled)
