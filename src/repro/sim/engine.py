"""The discrete-event engine.

A :class:`Simulator` owns the virtual clock and a priority queue of pending
:class:`Event` objects.  Everything in the reproduction — packet arrivals,
CPU burst completions, softclock ticks, TCP retransmission timers — is an
event scheduled here.

Events are cancellable: cancelling marks the event dead and the main loop
skips it when popped (lazy deletion, the standard trick for heap-backed
simulators).  Ties in time are broken by insertion order, which keeps runs
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class Event:
    """A scheduled callback.

    Created through :meth:`Simulator.schedule` / :meth:`Simulator.at`; user
    code only ever needs :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will never fire."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class Simulator:
    """Virtual clock plus event queue.

    The clock unit is the integer *tick* defined in :mod:`repro.sim.clock`.
    A single Simulator instance is shared by every component of a testbed
    (server, clients, links); components keep a reference to it and schedule
    their own events.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` ticks from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn)

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute tick ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        ev = Event(time, self._seq, fn)
        heapq.heappush(self._queue, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self._events_processed += 1
            ev.fn()
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so measurement windows have a
        well-defined end time.
        """
        if until is None:
            while self.step():
                pass
            return
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                heapq.heappop(self._queue)
                continue
            if ev.time > until:
                break
            heapq.heappop(self._queue)
            self.now = ev.time
            self._events_processed += 1
            ev.fn()
        if self.now < until:
            self.now = until

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` ticks from the current time."""
        self.run(until=self.now + duration)

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for engine diagnostics)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)
