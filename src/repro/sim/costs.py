"""The calibrated cycle-cost model.

Every constant that stands in for "how long does this take on the paper's
300 MHz Alpha" lives here, with a derivation comment.  The calibration
targets come from the paper's evaluation:

* Figure 8 plateaus (64 clients, 1-byte documents): Scout ~800 conn/s,
  Accounting ~740 conn/s (-8 %), Accounting_PD ~180 conn/s (>4x slower),
  Linux/Apache ~400 conn/s.
* Figure 8, 10 KB documents: 50-60 % of the 1 KB connection rate at
  saturation; substantially slowed below ~16 clients by TCP congestion
  control (initial cwnd of 1 segment against delayed ACKs).
* Table 1: >92 % of non-idle cycles charged to the active path; the passive
  path a few percent; TCP master event and softclock ~0 %.
* Table 2: pathKill costs ~18 k cycles (Accounting), ~112 k (Accounting_PD,
  ~10 % of a 1-byte request), ~11 k for a Linux kill+waitpid.
* Figure 9: a 1000 SYN/s flood costs <5 % (Accounting) / <15 %
  (Accounting_PD) of best-effort throughput once the policy drops floods at
  demux time.
* Figure 10: a 1 MBps QoS stream costs best-effort traffic ~15 %
  (Accounting) / ~50 % (Accounting_PD).

All values are in server CPU cycles unless the name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.sim.clock import millis_to_ticks, micros_to_ticks


@dataclass
class CostModel:
    """Cycle costs for kernel, module, and device operations."""

    # ------------------------------------------------------------------
    # Interrupt / demux path (charged before a thread runs)
    # ------------------------------------------------------------------
    #: Raw NIC interrupt: ack the device, pull the frame off the ring.
    eth_rx_interrupt: int = 3_000
    #: Demux work per module consulted (Scout's incremental demux).
    demux_per_module: int = 900
    #: Extra demux cost per module when protection domains are enabled —
    #: the paper attributes the Figure 9 gap to TLB misses during demux
    #: because each crossing invalidates the whole TLB (OSF1 PAL bug).
    demux_pd_penalty: int = 8_000
    #: Dropping a packet at demux time (the early-drop that makes the SYN
    #: policy cheap).
    demux_drop: int = 300

    # ------------------------------------------------------------------
    # Protection domain crossings
    # ------------------------------------------------------------------
    #: One hardware-enforced crossing: trap, stack switch, full TLB
    #: invalidate and the subsequent refill misses.  Calibrated so that the
    #: ~70 crossings of a 1-byte request add the >4x slowdown of Figure 8
    #: (each additional domain ~25 % of the single-domain request cost).
    pd_crossing: int = 38_000

    # ------------------------------------------------------------------
    # Accounting mechanism
    # ------------------------------------------------------------------
    #: Bookkeeping per accountable kernel operation (allocation, free,
    #: charge transfer, thread switch).  A 1-byte request performs ~27 such
    #: operations, so 1100 cycles each yields the paper's ~8 % overhead.
    accounting_op: int = 800

    # ------------------------------------------------------------------
    # Per-module packet processing (charged to the path's thread)
    # ------------------------------------------------------------------
    eth_rx: int = 3_000
    eth_tx: int = 4_500
    ip_rx: int = 4_500
    ip_tx: int = 5_000
    tcp_rx_segment: int = 14_000
    #: Processing a pure ACK (no payload, no SYN/FIN) is much cheaper.
    tcp_rx_ack: int = 7_000
    tcp_tx_segment: int = 18_000
    tcp_handshake_step: int = 12_000   # SYN / SYN-ACK / FIN extra work
    http_parse_request: int = 30_000
    http_build_response: int = 24_000
    #: Copying payload bytes between IOBuffers / the wire (cycles per byte).
    copy_per_byte_num: int = 7       # 20/1 cycles per byte => bulk data
    copy_per_byte_den: int = 1        # dominates large transfers

    # ------------------------------------------------------------------
    # File system / disk
    # ------------------------------------------------------------------
    fs_lookup: int = 8_000
    fs_read_cached: int = 7_000
    scsi_request: int = 8_000
    #: Rotational + seek latency for an uncached disk read.
    disk_latency_ticks: int = millis_to_ticks(8)
    disk_bytes_per_tick_num: int = 1  # 10 MB/s transfer rate
    disk_bytes_per_tick_den: int = 60

    # ------------------------------------------------------------------
    # Path lifecycle
    # ------------------------------------------------------------------
    path_create_kernel: int = 24_000
    module_open: int = 8_000          # per module visited by pathCreate
    module_destroy: int = 2_500       # per module, pathDestroy only
    path_teardown_kernel: int = 9_000

    # pathKill reclamation costs (Table 2): walking the Owner tracking
    # lists and freeing each object class.
    kill_base: int = 4_000
    kill_per_page: int = 350
    kill_per_thread: int = 4_000
    kill_per_stack: int = 1_200
    kill_per_iobuf: int = 650
    kill_per_event: int = 800
    kill_per_semaphore: int = 800
    kill_per_heap_alloc: int = 600
    #: Visiting one protection domain during pathKill: switch in, unmap the
    #: path's stacks/IOBuffers, tear down the IPC crossing state.
    kill_per_domain: int = 13_600

    # ------------------------------------------------------------------
    # Threads, events, timers
    # ------------------------------------------------------------------
    thread_spawn: int = 2_000
    thread_switch: int = 900
    thread_handoff: int = 1_500
    semaphore_op: int = 250
    event_schedule: int = 350
    #: Softclock tick work (increment timer, scan the wheel) — charged to
    #: the kernel, every millisecond.
    softclock_tick: int = 400
    softclock_period_ticks: int = millis_to_ticks(1)
    #: TCP master event: periodic scan for connection timeouts, charged to
    #: the protection domain containing TCP (Table 1).
    tcp_master_event: int = 1_200
    tcp_master_period_ticks: int = millis_to_ticks(200)
    #: Per-connection timeout processing, charged to the connection's path.
    tcp_timeout_per_conn: int = 300

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    page_alloc: int = 900
    page_free: int = 500
    heap_alloc: int = 300
    heap_free: int = 200
    iobuf_alloc: int = 1_100
    iobuf_cached_alloc: int = 350     # reuse from the buffer cache
    iobuf_lock: int = 450
    iobuf_unlock: int = 350
    iobuf_map_per_domain: int = 800   # mapping changes when PDs are on

    # ------------------------------------------------------------------
    # Linux / Apache baseline (monolithic kernel, process per connection)
    # ------------------------------------------------------------------
    linux_per_request: int = 610_000
    linux_per_data_segment: int = 52_000
    linux_kill_process: int = 11_000  # Table 2: kill + waitpid
    linux_syn_cost: int = 9_000       # no early demux: full stack per SYN

    # ------------------------------------------------------------------
    # Client hosts (200 MHz PentiumPro running Linux)
    # ------------------------------------------------------------------
    #: Per-request client-side latency outside the measurement window —
    #: process wakeup, socket setup, user-level HTTP client work.  Sets the
    #: Figure 8 knee: ~10 ms serial latency saturates a 800 conn/s server
    #: at ~8 clients.
    client_request_overhead_ticks: int = millis_to_ticks(7)
    #: Client-side turnaround for responding to a packet (ACKs, the GET).
    client_turnaround_ticks: int = micros_to_ticks(120)
    #: Delayed-ACK timer on the client TCP (paper-era Linux).  This is what
    #: slows the 10 KB document below ~16 clients: the first data flight is
    #: one segment (cwnd=1) and sits on the delayed-ACK timer.
    client_delayed_ack_ticks: int = millis_to_ticks(30)

    # ------------------------------------------------------------------
    # Network elements
    # ------------------------------------------------------------------
    link_latency_ticks: int = micros_to_ticks(30)    # cable + PHY
    switch_latency_ticks: int = micros_to_ticks(40)  # store-and-forward
    hub_latency_ticks: int = micros_to_ticks(10)

    #: Free-form overrides recorded by calibration runs.
    notes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Payload sizes repeat heavily (1-byte documents, MSS-sized
        # segments), so copy costs are memoized per size.  The byte-rate
        # fields are fixed after construction — sweeps that vary costs go
        # through ``dataclasses.replace``, which builds a fresh instance
        # (and a fresh cache).
        self._copy_cache: Dict[int, int] = {}

    def copy_cost(self, nbytes: int) -> int:
        """Cycles to copy ``nbytes`` of payload."""
        cached = self._copy_cache.get(nbytes)
        if cached is None:
            cached = (nbytes * self.copy_per_byte_num) // self.copy_per_byte_den
            self._copy_cache[nbytes] = cached
        return cached

    def disk_transfer_ticks(self, nbytes: int) -> int:
        """Ticks to transfer ``nbytes`` from the simulated disk."""
        return (nbytes * self.disk_bytes_per_tick_den) // self.disk_bytes_per_tick_num

    @classmethod
    def default(cls) -> "CostModel":
        """The calibrated model used by all experiments."""
        return cls()


class DemuxCostTable:
    """Per-classification demux cycle costs, precomputed for one kernel.

    The cost formula (``modules * per_module [+ switches * pd_penalty]
    [+ drop]``) is re-derived on every incoming packet in the hot path;
    with the kernel configuration fixed at boot the products can be read
    from small tuples instead.  The demultiplexer bounds a classification
    at ``max_hops`` modules, so the tables cover every reachable index.
    """

    __slots__ = ("module_cost", "switch_cost", "drop_cost")

    def __init__(self, costs: CostModel, pd_enabled: bool,
                 max_hops: int = 32):
        self.module_cost = tuple(i * costs.demux_per_module
                                 for i in range(max_hops + 1))
        per_switch = costs.demux_pd_penalty if pd_enabled else 0
        self.switch_cost = tuple(i * per_switch
                                 for i in range(max_hops + 1))
        self.drop_cost = costs.demux_drop

    def cost(self, modules_consulted: int, domain_switches: int,
             dropped: bool) -> int:
        cycles = (self.module_cost[modules_consulted]
                  + self.switch_cost[domain_switches])
        return cycles + self.drop_cost if dropped else cycles
