"""Discrete-event simulation substrate.

The paper's testbed is real hardware: a 300 MHz AlphaPC 21064 server, 200 MHz
PentiumPro clients, and a shared 100 Mbps Ethernet.  This package provides the
virtual equivalents: an integer-tick simulated clock (:mod:`repro.sim.clock`),
an event engine (:mod:`repro.sim.engine`), a virtual CPU that executes
non-preemptive threads and charges every consumed cycle to an owner
(:mod:`repro.sim.cpu`), and the calibrated cost model
(:mod:`repro.sim.costs`).
"""

from repro.sim.clock import (
    TICKS_PER_SECOND,
    SERVER_CYCLE_HZ,
    SERVER_TICKS_PER_CYCLE,
    seconds_to_ticks,
    millis_to_ticks,
    micros_to_ticks,
    ticks_to_seconds,
    server_cycles_to_ticks,
    ticks_to_server_cycles,
)
from repro.sim.engine import Event, Simulator
from repro.sim.cpu import (
    CPU,
    SimThread,
    Cycles,
    Block,
    Sleep,
    YieldCPU,
    Interrupt,
    ThreadKilled,
)
from repro.sim.costs import CostModel
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "TICKS_PER_SECOND",
    "SERVER_CYCLE_HZ",
    "SERVER_TICKS_PER_CYCLE",
    "seconds_to_ticks",
    "millis_to_ticks",
    "micros_to_ticks",
    "ticks_to_seconds",
    "server_cycles_to_ticks",
    "ticks_to_server_cycles",
    "Event",
    "Simulator",
    "CPU",
    "SimThread",
    "Cycles",
    "Block",
    "Sleep",
    "YieldCPU",
    "Interrupt",
    "ThreadKilled",
    "CostModel",
    "TraceEvent",
    "Tracer",
]
