"""Simulated time units.

All simulation time is kept in integer *ticks* to make event ordering and
cycle accounting exact (no floating-point drift).  One tick is 1/600,000,000
of a second, chosen so that every clock in the paper's testbed divides it
evenly:

* the server's 300 MHz Alpha 21064 cycle is exactly 2 ticks,
* the clients' 200 MHz PentiumPro cycle is exactly 3 ticks,
* one bit on the 100 Mbps Ethernet takes exactly 6 ticks.

Helpers convert between human units (seconds/milliseconds/microseconds),
server CPU cycles, and ticks.  Conversions from seconds round to the nearest
tick; cycle conversions are exact by construction.
"""

from __future__ import annotations

#: Number of simulation ticks per simulated second.
TICKS_PER_SECOND = 600_000_000

#: Clock rate of the simulated web-server CPU (300 MHz AlphaPC 21064).
SERVER_CYCLE_HZ = 300_000_000

#: Ticks per server CPU cycle (exact: 600 MHz / 300 MHz).
SERVER_TICKS_PER_CYCLE = TICKS_PER_SECOND // SERVER_CYCLE_HZ

#: Clock rate of the simulated client CPUs (200 MHz PentiumPro).
CLIENT_CYCLE_HZ = 200_000_000

#: Ticks per client CPU cycle (exact: 600 MHz / 200 MHz).
CLIENT_TICKS_PER_CYCLE = TICKS_PER_SECOND // CLIENT_CYCLE_HZ

#: Ticks needed to serialize one bit onto the 100 Mbps Ethernet.
TICKS_PER_ETHERNET_BIT = TICKS_PER_SECOND // 100_000_000


def seconds_to_ticks(s: float) -> int:
    """Convert seconds to ticks, rounding to the nearest tick."""
    return round(s * TICKS_PER_SECOND)


def millis_to_ticks(ms: float) -> int:
    """Convert milliseconds to ticks, rounding to the nearest tick."""
    return round(ms * (TICKS_PER_SECOND / 1_000))


def micros_to_ticks(us: float) -> int:
    """Convert microseconds to ticks, rounding to the nearest tick."""
    return round(us * (TICKS_PER_SECOND / 1_000_000))


def ticks_to_seconds(ticks: int) -> float:
    """Convert ticks to (floating point) seconds."""
    return ticks / TICKS_PER_SECOND


def server_cycles_to_ticks(cycles: int) -> int:
    """Convert server CPU cycles to ticks (exact)."""
    return cycles * SERVER_TICKS_PER_CYCLE


def ticks_to_server_cycles(ticks: int) -> int:
    """Convert ticks to server CPU cycles, rounding up to a whole cycle.

    Rounding up matches how a real CPU charges time: a partial cycle still
    occupies the pipeline for the full cycle.
    """
    q, r = divmod(ticks, SERVER_TICKS_PER_CYCLE)
    return q + (1 if r else 0)
