"""Execution tracing for debugging simulations.

A :class:`Tracer` records structured events — packet classifications, path
lifecycle, kills, quota violations, cycle charges — into a bounded ring
buffer that can be filtered and dumped.  Instrumentation is wrapper-based:
``instrument_server`` decorates the hot entry points of a built server, so
the production code paths carry no tracing overhead unless a tracer is
attached.

Typical use::

    bed = Testbed.escort()
    tracer = Tracer(bed.sim, capacity=10_000)
    tracer.instrument_server(bed.server)
    bed.run(...)
    print(tracer.dump(kinds={"kill", "path-create"}))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Set

from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.engine import Simulator


@dataclass
class TraceEvent:
    """One recorded event."""

    tick: int
    kind: str
    subject: str
    detail: str = ""

    @property
    def seconds(self) -> float:
        return self.tick / TICKS_PER_SECOND

    def __str__(self) -> str:
        return f"[{self.seconds:10.6f}] {self.kind:12s} {self.subject} {self.detail}".rstrip()


class Tracer:
    """Bounded structured event recorder."""

    def __init__(self, sim: Simulator, capacity: int = 10_000,
                 span_log=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.enabled = True
        self.counts: Dict[str, int] = {}
        #: Optional :class:`~repro.obs.spans.SpanLog` — every recorded
        #: event is forwarded there too (parentless), so the flat ring
        #: buffer and the causal span view stay consistent without
        #: double instrumentation.
        self.span_log = span_log

    # ------------------------------------------------------------------
    def record(self, kind: str, subject: str, detail: str = "") -> None:
        if not self.enabled:
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self.sim.now, kind, subject, detail))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.span_log is not None:
            self.span_log.add(kind, subject, detail, tick=self.sim.now)

    def events(self, kinds: Optional[Set[str]] = None,
               subject_contains: str = "") -> List[TraceEvent]:
        out = []
        for event in self._events:
            if kinds is not None and event.kind not in kinds:
                continue
            if subject_contains and subject_contains not in event.subject:
                continue
            out.append(event)
        return out

    def dump(self, kinds: Optional[Set[str]] = None, limit: int = 200) -> str:
        lines = [str(e) for e in self.events(kinds=kinds)[-limit:]]
        if self.dropped:
            lines.append(f"... ring buffer dropped {self.dropped} events")
        return "\n".join(lines)

    def clear(self) -> None:
        self._events.clear()
        self.counts.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Engine health
    # ------------------------------------------------------------------
    def queue_health(self) -> Dict[str, int]:
        """The engine's queue-health counters at the current instant.

        Mirrors :meth:`repro.sim.engine.Simulator.queue_health` — events
        processed, scheduled, still pending, lazy-cancellation debt,
        compaction count, and fast-lane pops — so perf runs can report
        event-queue behaviour alongside the trace (see
        :func:`queue_health_line` for a printable form).
        """
        return self.sim.queue_health()

    # ------------------------------------------------------------------
    # Server instrumentation
    # ------------------------------------------------------------------
    def instrument_server(self, server) -> None:
        """Wrap a built :class:`ScoutWebServer`'s hot entry points.

        Idempotent: each wrapper is marked, and an already-instrumented
        entry point is left alone — calling this twice (or from two
        cooperating tools) must not stack wrappers, which would record
        every event twice and double the per-call overhead.
        """
        self._wrap_demux(server)
        self._wrap_paths(server)
        self._wrap_kills(server)

    @staticmethod
    def _already_wrapped(fn) -> bool:
        return getattr(fn, "_escort_traced", False)

    def _wrap_demux(self, server) -> None:
        demux = server.eth.demultiplexer
        original = demux.classify
        if self._already_wrapped(original):
            return

        def traced_classify(first_module, packet):
            result = original(first_module, packet)
            if result.kind == "path":
                self.record("demux", result.path.name,
                            f"{result.modules_consulted} modules")
            else:
                self.record("demux-drop", result.reason,
                            f"{result.modules_consulted} modules")
            return result

        traced_classify._escort_traced = True
        demux.classify = traced_classify

    def _wrap_paths(self, server) -> None:
        manager = server.path_manager
        original_create = manager.path_create
        if self._already_wrapped(original_create):
            return
        tracer = self

        def traced_create(attrs, start_module, **kwargs):
            path = yield from original_create(attrs, start_module, **kwargs)
            tracer.record("path-create", path.name,
                          "-".join(s.module.name for s in path.stages))
            return path

        traced_create._escort_traced = True
        manager.path_create = traced_create

    def _wrap_kills(self, server) -> None:
        kernel = server.kernel
        original = kernel.kill_owner
        if self._already_wrapped(original):
            return

        def traced_kill(owner, charge=True, record=True):
            report = original(owner, charge=charge, record=record)
            self.record("kill", report.owner_name,
                        f"{report.cycles} cycles, "
                        f"{report.domains_visited} domains")
            return report

        traced_kill._escort_traced = True
        kernel.kill_owner = traced_kill


def queue_health_line(sim: Simulator) -> str:
    """One-line engine-health summary for perf reports and benchmarks."""
    h = sim.queue_health()
    line = (f"events={h['events_processed']} scheduled={h['scheduled']} "
            f"pending={h['pending']} cancelled={h['cancelled_pending']} "
            f"compactions={h['compactions']} "
            f"fast_lane={h['fast_lane_events']}")
    if "wheel_scheduled" in h:
        line += (f" wheel={h['wheel_pending']}/{h['wheel_scheduled']} "
                 f"poured={h['wheel_poured']} "
                 f"cascades={h['wheel_cascades']}")
    if "events_recycled" in h:
        line += f" recycled={h['events_recycled']}"
    return line
