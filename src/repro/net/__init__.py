"""Network substrate: the testbed's wires and protocols.

This package supplies what the paper's machine room supplied: Ethernet
frames, IP datagrams and TCP segments (:mod:`repro.net.packet`), the
100 Mbps links, hub and switch of Figure 7 (:mod:`repro.net.link`), the
addressing helpers for the trusted/untrusted subnet split
(:mod:`repro.net.addressing`), and a reusable TCP state machine
(:mod:`repro.net.tcp`) shared by the Scout TCP module, the Linux baseline,
and the client hosts.
"""

from repro.net.addressing import MacAddr, Subnet, ip_to_int, int_to_ip
from repro.net.packet import (
    ETH_HEADER,
    IP_HEADER,
    TCP_HEADER,
    ETH_MTU,
    TCP_MSS,
    EthFrame,
    ArpPacket,
    IPDatagram,
    TCPSegment,
    FLAG_SYN,
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
)
from repro.net.link import Link, Hub, Switch, NIC
from repro.net.fault import FaultInjector
from repro.net.tcp import TCPEngine, TCPActions, TcpState

__all__ = [
    "MacAddr",
    "Subnet",
    "ip_to_int",
    "int_to_ip",
    "ETH_HEADER",
    "IP_HEADER",
    "TCP_HEADER",
    "ETH_MTU",
    "TCP_MSS",
    "EthFrame",
    "ArpPacket",
    "IPDatagram",
    "TCPSegment",
    "FLAG_SYN",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_RST",
    "Link",
    "Hub",
    "Switch",
    "NIC",
    "FaultInjector",
    "TCPEngine",
    "TCPActions",
    "TcpState",
]
