"""IP and MAC addressing helpers.

The SYN-flood policy distinguishes a *trusted* and an *untrusted* part of
the Internet (paper section 4.4.1); :class:`Subnet` is the prefix-matching
primitive that policy is written against.
"""

from __future__ import annotations

from typing import Iterator


def ip_to_int(addr: str) -> int:
    """Dotted-quad string to 32-bit integer."""
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {addr!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 address: {addr!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """32-bit integer to dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Subnet:
    """An IPv4 prefix, e.g. ``Subnet("10.1.0.0/16")``."""

    def __init__(self, cidr: str):
        try:
            base, prefix_s = cidr.split("/")
        except ValueError:
            raise ValueError(f"bad CIDR: {cidr!r}") from None
        self.prefix_len = int(prefix_s)
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length in {cidr!r}")
        self.mask = 0 if self.prefix_len == 0 else (
            0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF
        self.base = ip_to_int(base) & self.mask
        self.cidr = cidr

    def contains(self, addr: str) -> bool:
        return (ip_to_int(addr) & self.mask) == self.base

    def hosts(self, count: int, start: int = 1) -> Iterator[str]:
        """Yield ``count`` host addresses inside the subnet."""
        for i in range(start, start + count):
            yield int_to_ip(self.base + i)

    def __contains__(self, addr: str) -> bool:
        return self.contains(addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Subnet({self.cidr!r})"


class MacAddr:
    """A link-layer address; simulation-local, so just a small integer."""

    _next = 1

    def __init__(self, label: str = ""):
        self.value = MacAddr._next
        MacAddr._next += 1
        self.label = label or f"mac-{self.value}"

    def __hash__(self) -> int:
        return self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, MacAddr) and other.value == self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label}>"


#: The broadcast link-layer address.
BROADCAST = MacAddr("broadcast")
