"""Packet free lists for the flood hot path.

A SYN flood allocates three objects per spoofed SYN — a
:class:`~repro.net.packet.TCPSegment`, an :class:`~repro.net.packet.IPDatagram`
and an :class:`~repro.net.packet.EthFrame` — whose lifetime is a few
simulated microseconds: attacker NIC, wire, server NIC, demux, drop.  At
flood rates this dominates the allocator, so the attacker draws its frames
from a free list instead and the Ethernet driver returns them when the
demultiplexer drops the frame.

Ownership contract (what makes recycling safe and replay-exact):

* Only the frame's *producer* marks it poolable (``frame.pool`` is the
  owning pool); everything else treats the attribute as opaque.
* The frame is released exactly once, at the point its one consumer is
  finished with it — the driver's demux-drop branch.  ``release`` clears
  ``frame.pool`` first, so a second release of the same frame is a no-op.
* Anything that forks the frame's lifetime strips poolability:
  :class:`~repro.net.fault.FaultInjector` sets ``frame.pool = None`` on
  every frame entering its fault model, because duplicates, held
  (reordered) copies, and delayed copies alias the original object past
  the drop point.
* Reused objects only ever change fields the *server's* demux reads
  (spoofed source address and port); fields any bystander NIC on the
  broadcast segment may switch on (destination MAC/IP, ethertype) are
  fixed per pool, so an aliased stale read is indistinguishable from the
  unpooled run — scheduling, digests and replay fingerprints are
  byte-identical with pooling on or off.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import (
    ETHERTYPE_IP,
    EthFrame,
    FLAG_SYN,
    IPDatagram,
    IPPROTO_TCP,
    TCPSegment,
)

#: Free-list bound: a flood keeps only a wire's worth of frames in flight,
#: so a small cap captures the steady state without hoarding memory.
SYN_POOL_CAP = 512

#: Module-level default so A/B experiments can flip pooling globally,
#: mirroring ``FAST_LANE_DEFAULT`` / ``TIMER_WHEEL_DEFAULT`` in the engine.
FRAME_POOL_DEFAULT = True


class SynFramePool:
    """Recycles frame/datagram/segment triples for one SYN source.

    The destination (server MAC/IP, port 80) is fixed at construction;
    :meth:`acquire` only rewrites the spoofed source fields.
    """

    __slots__ = ("src_mac", "dst_mac", "dst_ip", "dst_port", "cap",
                 "_free", "acquired", "recycled", "released")

    def __init__(self, src_mac, dst_mac, dst_ip: str, dst_port: int = 80,
                 cap: int = SYN_POOL_CAP):
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.cap = cap
        self._free: List[EthFrame] = []
        self.acquired = 0
        self.recycled = 0
        self.released = 0

    def acquire(self, src_ip: str, src_port: int) -> EthFrame:
        """A ready-to-send SYN frame, recycled when the free list allows."""
        self.acquired += 1
        if self._free:
            self.recycled += 1
            frame = self._free.pop()
            dgram = frame.payload
            seg = dgram.payload
            # Constant-shape reset: flags/sizes/macs/destination are
            # unchanged since construction; only the spoofed source moves.
            seg.src_port = src_port
            dgram.src_ip = src_ip
            frame.pool = self
            return frame
        seg = TCPSegment(src_port, self.dst_port, seq=0, ack=0,
                         flags=FLAG_SYN)
        dgram = IPDatagram(src_ip, self.dst_ip, IPPROTO_TCP, seg)
        frame = EthFrame(self.src_mac, self.dst_mac, ETHERTYPE_IP, dgram)
        frame.pool = self
        return frame

    def release(self, frame: EthFrame) -> None:
        """Return a dead frame; double release is a structural no-op."""
        if frame.pool is not self:
            return
        frame.pool = None
        self.released += 1
        if len(self._free) < self.cap:
            self._free.append(frame)

    def stats(self) -> dict:
        """Pool counters (for queue-health reporting and tests)."""
        return {"acquired": self.acquired,
                "recycled": self.recycled,
                "released": self.released,
                "free": len(self._free)}


def strip_pool(frame: EthFrame) -> None:
    """Remove poolability from a frame whose lifetime is being forked."""
    pool: Optional[SynFramePool] = getattr(frame, "pool", None)
    if pool is not None:
        frame.pool = None


def release_frame(frame: EthFrame) -> None:
    """Return ``frame`` to its pool, if it has one (driver drop hook)."""
    pool = frame.pool
    if pool is not None:
        pool.release(frame)
