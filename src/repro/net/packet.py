"""Packet formats.

Payload *contents* are simulated — a packet carries byte counts plus an
optional application object (an HTTP request, say) — but sizes, headers and
the information protocols actually switch on (addresses, ports, sequence
numbers, flags) are real, because the experiments depend on them: wire
sizes set serialization delay on the 100 Mbps Ethernet, the MSS drives the
10 KB document's congestion-control behaviour, and demux switches on the
header fields.
"""

from __future__ import annotations

from typing import Any, Optional

#: Ethernet header + CRC bytes on the wire.
ETH_HEADER = 18
#: Minimal IPv4 header.
IP_HEADER = 20
#: Minimal TCP header.
TCP_HEADER = 20
#: Ethernet payload MTU (the paper quotes 1460 as the usable TCP MSS).
ETH_MTU = 1500
#: TCP maximum segment size = MTU - IP - TCP headers.
TCP_MSS = ETH_MTU - IP_HEADER - TCP_HEADER

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

IPPROTO_TCP = 6

FLAG_SYN = 0x1
FLAG_ACK = 0x2
FLAG_FIN = 0x4
FLAG_RST = 0x8


def flag_names(flags: int) -> str:
    """Human-readable TCP flag set, e.g. ``"SYN|ACK"``."""
    names = []
    if flags & FLAG_SYN:
        names.append("SYN")
    if flags & FLAG_ACK:
        names.append("ACK")
    if flags & FLAG_FIN:
        names.append("FIN")
    if flags & FLAG_RST:
        names.append("RST")
    return "|".join(names) or "-"


class TCPSegment:
    """A TCP segment: real header fields, simulated payload."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags",
                 "payload_len", "app_data", "size", "seq_span")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: int, payload_len: int = 0, app_data: Any = None):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_len = payload_len
        self.app_data = app_data
        # Header fields never change after construction, so the derived
        # sizes are plain attributes, not properties — these are read on
        # every hop of every packet (serialization delay, copy costs).
        self.size = TCP_HEADER + payload_len
        #: Sequence-number space consumed (payload plus SYN/FIN).
        span = payload_len
        if flags & FLAG_SYN:
            span += 1
        if flags & FLAG_FIN:
            span += 1
        self.seq_span = span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TCP {self.src_port}->{self.dst_port} "
                f"{flag_names(self.flags)} seq={self.seq} ack={self.ack} "
                f"len={self.payload_len}>")


class IPDatagram:
    """An IPv4 datagram wrapping a transport payload."""

    __slots__ = ("src_ip", "dst_ip", "proto", "payload", "size")

    def __init__(self, src_ip: str, dst_ip: str, proto: int, payload: Any):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.proto = proto
        self.payload = payload
        self.size = IP_HEADER + getattr(payload, "size", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IP {self.src_ip}->{self.dst_ip} {self.payload!r}>"


class ArpPacket:
    """ARP request/reply."""

    __slots__ = ("op", "sender_ip", "sender_mac", "target_ip", "target_mac",
                 "size")

    REQUEST = 1
    REPLY = 2

    def __init__(self, op: int, sender_ip: str, sender_mac,
                 target_ip: str, target_mac=None):
        self.op = op
        self.sender_ip = sender_ip
        self.sender_mac = sender_mac
        self.target_ip = target_ip
        self.target_mac = target_mac
        self.size = 28

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "REQ" if self.op == self.REQUEST else "REPLY"
        return f"<ARP {kind} {self.sender_ip}->{self.target_ip}>"


class EthFrame:
    """An Ethernet frame; ``wire_size`` drives serialization delay.

    ``corrupted`` marks a frame whose payload was damaged in flight (the
    fault injector's bit-flip model); receiving NICs discard such frames
    at the link-layer CRC check, exactly like real hardware.
    """

    __slots__ = ("src_mac", "dst_mac", "ethertype", "payload", "corrupted",
                 "wire_size", "pool")

    def __init__(self, src_mac, dst_mac, ethertype: int, payload: Any,
                 corrupted: bool = False):
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.ethertype = ethertype
        self.payload = payload
        self.corrupted = corrupted
        inner = getattr(payload, "size", 0)
        self.wire_size = max(64, ETH_HEADER + inner)  # minimum Ethernet frame
        #: Owning free list, when the producer drew this frame from one
        #: (see :mod:`repro.net.freelist`); None for ordinary frames.
        self.pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Eth {self.src_mac!r}->{self.dst_mac!r} {self.payload!r}>"
