"""Links, hub, and switch — the wires of Figure 7.

The paper's testbed topology: clients and CGI attackers hang off a Cisco
Cat5500 switch; the switch connects through a hub to the web server, the
QoS receiver, and the SYN attacker.  The hub is a shared half-duplex
100 Mbps segment (all hub traffic serializes); each switch port is its own
100 Mbps collision domain.

Frames are delivered after serialization delay (wire size at 100 Mbps) plus
a small fixed latency per element.  These delays are what give the
testbed a realistic LAN round-trip time — which in turn shapes the idle
fraction in Table 1 and the TCP behaviour in Figure 8.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.sim.clock import TICKS_PER_ETHERNET_BIT, micros_to_ticks
from repro.sim.engine import Simulator
from repro.net.addressing import BROADCAST, MacAddr
from repro.net.packet import EthFrame

DEFAULT_LATENCY = micros_to_ticks(10)


def serialization_ticks(frame: EthFrame) -> int:
    """Time to put ``frame`` on a 100 Mbps wire."""
    return frame.wire_size * 8 * TICKS_PER_ETHERNET_BIT


class NIC:
    """A network interface: one MAC, one medium, one receive callback."""

    def __init__(self, sim: Simulator, label: str = ""):
        self.sim = sim
        self.mac = MacAddr(label or "nic")
        self.medium: Optional["Medium"] = None
        self.on_receive: Optional[Callable[[EthFrame], None]] = None
        #: Promiscuous NICs accept frames addressed to any MAC (used by
        #: the switch's uplink bridge).
        self.promiscuous = False
        self.tx_frames = 0
        self.rx_frames = 0
        #: Frames discarded by the link-layer CRC check (corrupted in
        #: flight; see :class:`repro.net.fault.FaultInjector`).
        self.rx_crc_errors = 0

    def send(self, frame: EthFrame) -> None:
        if self.medium is None:
            raise RuntimeError(f"NIC {self.mac!r} not attached")
        self.tx_frames += 1
        self.medium.transmit(frame, self)

    def deliver(self, frame: EthFrame) -> None:
        if getattr(frame, "corrupted", False):
            self.rx_crc_errors += 1
            return
        self.rx_frames += 1
        if self.on_receive is not None:
            self.on_receive(frame)


class Medium:
    """Base: something NICs attach to."""

    def attach(self, nic: NIC) -> None:
        raise NotImplementedError

    def transmit(self, frame: EthFrame, sender: NIC) -> None:
        raise NotImplementedError


class Link(Medium):
    """Full-duplex point-to-point link between exactly two NICs."""

    def __init__(self, sim: Simulator, latency: int = DEFAULT_LATENCY):
        self.sim = sim
        self.latency = latency
        self.nics: List[NIC] = []
        self._busy_until: Dict[int, int] = {0: 0, 1: 0}
        self.frames = 0

    def attach(self, nic: NIC) -> None:
        if len(self.nics) >= 2:
            raise RuntimeError("a Link connects exactly two NICs")
        self.nics.append(nic)
        nic.medium = self

    def transmit(self, frame: EthFrame, sender: NIC) -> None:
        if len(self.nics) != 2:
            raise RuntimeError("link not fully connected")
        side = self.nics.index(sender)
        peer = self.nics[1 - side]
        self.frames += 1
        start = self.sim.now
        busy = self._busy_until[side]
        if busy > start:
            start = busy
        done = start + frame.wire_size * 8 * TICKS_PER_ETHERNET_BIT
        self._busy_until[side] = done
        self.sim.at(done + self.latency, lambda: peer.deliver(frame))


class Hub(Medium):
    """Shared half-duplex segment: one transmission at a time, broadcast.

    The testbed avoids collisions by design ("all Client and CGI Attacker
    traffic share one link... reduces the number of collisions on the
    hub"), so we model serialization without collision backoff.
    """

    def __init__(self, sim: Simulator, latency: int = DEFAULT_LATENCY):
        self.sim = sim
        self.latency = latency
        self.nics: List[NIC] = []
        self._busy_until = 0
        self.frames = 0

    def attach(self, nic: NIC) -> None:
        self.nics.append(nic)
        nic.medium = self

    def transmit(self, frame: EthFrame, sender: NIC) -> None:
        self.frames += 1
        start = self.sim.now
        if self._busy_until > start:
            start = self._busy_until
        done = start + frame.wire_size * 8 * TICKS_PER_ETHERNET_BIT
        self._busy_until = done
        deliver_at = done + self.latency
        receivers = [n for n in self.nics if n is not sender]
        self.sim.at(deliver_at, lambda: self._deliver(frame, receivers))

    def _deliver(self, frame: EthFrame, receivers: List[NIC]) -> None:
        for nic in receivers:
            if (frame.dst_mac == nic.mac or frame.dst_mac is BROADCAST
                    or nic.promiscuous):
                nic.deliver(frame)
            # NICs not addressed simply ignore the frame (no promiscuous
            # mode in the testbed).


class Switch(Medium):
    """Store-and-forward learning switch with per-port output queues."""

    def __init__(self, sim: Simulator, latency: int = DEFAULT_LATENCY):
        self.sim = sim
        self.latency = latency
        self.ports: List["SwitchPort"] = []
        self.mac_table: Dict[MacAddr, "SwitchPort"] = {}
        self.frames = 0

    def attach(self, nic: NIC) -> "SwitchPort":
        port = SwitchPort(self, nic)
        self.ports.append(port)
        nic.medium = port
        return port

    def attach_uplink(self, hub: Hub, label: str = "uplink") -> NIC:
        """Bridge this switch onto a hub segment (Figure 7's topology)."""
        bridge = NIC(self.sim, label=label)
        bridge.promiscuous = True
        hub.attach(bridge)
        port = UplinkPort(self, bridge)
        self.ports.append(port)
        bridge.on_receive = port.from_hub
        return bridge

    # ------------------------------------------------------------------
    def forward(self, frame: EthFrame, in_port: "SwitchPort") -> None:
        """Called once a frame has fully arrived at the switch."""
        self.frames += 1
        self.mac_table[frame.src_mac] = in_port
        out = self.mac_table.get(frame.dst_mac)
        if out is not None and out is not in_port:
            out.egress(frame)
            return
        if out is in_port:
            return  # hairpin: already on the right segment
        # Unknown destination or broadcast: flood.
        for port in self.ports:
            if port is not in_port:
                port.egress(frame)


class SwitchPort(Medium):
    """One switch port: ingress from its NIC, serialized egress to it."""

    def __init__(self, switch: Switch, nic: NIC):
        self.switch = switch
        self.nic = nic
        self._egress_busy_until = 0
        self._ingress_busy_until = 0

    # NIC -> switch
    def transmit(self, frame: EthFrame, sender: NIC) -> None:
        sim = self.switch.sim
        start = sim.now
        if self._ingress_busy_until > start:
            start = self._ingress_busy_until
        done = start + frame.wire_size * 8 * TICKS_PER_ETHERNET_BIT
        self._ingress_busy_until = done
        arrive = done + self.switch.latency
        sim.at(arrive, lambda: self.switch.forward(frame, self))

    def attach(self, nic: NIC) -> None:  # pragma: no cover - not used
        raise RuntimeError("switch ports bind exactly one NIC")

    # switch -> NIC
    def egress(self, frame: EthFrame) -> None:
        sim = self.switch.sim
        start = sim.now
        if self._egress_busy_until > start:
            start = self._egress_busy_until
        done = start + frame.wire_size * 8 * TICKS_PER_ETHERNET_BIT
        self._egress_busy_until = done
        sim.at(done + self.switch.latency,
               lambda: self.nic.deliver(frame))


class UplinkPort(SwitchPort):
    """The port bridging the switch onto the hub."""

    def from_hub(self, frame: EthFrame) -> None:
        """A frame arrived from the hub side; forward into the switch."""
        self.switch.forward(frame, self)

    def egress(self, frame: EthFrame) -> None:
        """Switch-side frame leaving toward the hub."""
        self.nic.send(frame)
