"""A reusable TCP state machine.

Used three ways: wrapped by the Scout TCP module (where its cycle costs are
charged to paths), by the Linux baseline server, and by the client hosts.
The engine is *pure*: every entry point returns a :class:`TCPActions`
record describing segments to transmit, data delivered to the application,
state transitions, and timer requests; the environment applies them.  That
keeps protocol logic identical across all three environments, which is
exactly the property the experiments need — the configurations must differ
only in OS structure, not in TCP behaviour.

Era-faithful details that matter to the paper's figures:

* initial congestion window of **one** segment (RFC 2001) and slow start —
  with the clients' delayed ACKs this is what slows the 10 KB document
  below ~16 parallel clients in Figure 8;
* delayed ACKs: a receiver holding less than two full segments of unacked
  data waits for the delayed-ACK timer unless a FIN/push forces immediacy;
* exponential RTO backoff with connection abort after a retry budget —
  this is how half-open connections created by the SYN attacker eventually
  expire.

TIME_WAIT is optional: with ``time_wait_ticks=0`` (the default, used by
the experiments) the active closer collapses straight to CLOSED; with a
positive value the engine holds TIME_WAIT for that long, re-ACKing any
retransmitted FIN, before closing — the RFC 793 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.sim.clock import millis_to_ticks, seconds_to_ticks
from repro.net.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    TCP_MSS,
    TCPSegment,
)


class TcpState:
    """Connection states (classic names)."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    CLOSING = "CLOSING"
    TIME_WAIT = "TIME_WAIT"


@dataclass
class TCPActions:
    """What the environment must do after an engine call."""

    segments: List[TCPSegment] = field(default_factory=list)
    #: In-order application deliveries: (nbytes, app_data) pairs.
    deliveries: List[Tuple[int, Any]] = field(default_factory=list)
    established: bool = False
    fin_received: bool = False
    closed: bool = False
    aborted: bool = False
    #: The peer actively refused the connection (RST before establishment)
    #: — distinct from an abort after the retry budget, so workloads can
    #: report refused vs timed-out connections separately.
    refused: bool = False
    set_rto: Optional[int] = None
    cancel_rto: bool = False
    set_delack: Optional[int] = None
    cancel_delack: bool = False

    def merge(self, other: "TCPActions") -> None:
        self.segments.extend(other.segments)
        self.deliveries.extend(other.deliveries)
        self.established = self.established or other.established
        self.fin_received = self.fin_received or other.fin_received
        self.closed = self.closed or other.closed
        self.aborted = self.aborted or other.aborted
        self.refused = self.refused or other.refused
        if other.set_rto is not None:
            self.set_rto = other.set_rto
            self.cancel_rto = False
        if other.cancel_rto:
            self.cancel_rto = True
            self.set_rto = None
        if other.set_delack is not None:
            self.set_delack = other.set_delack
            self.cancel_delack = False
        if other.cancel_delack:
            self.cancel_delack = True
            self.set_delack = None


@dataclass
class _SentSegment:
    seq: int
    payload_len: int
    flags: int
    app_data: Any = None

    @property
    def span(self) -> int:
        span = self.payload_len
        if self.flags & FLAG_SYN:
            span += 1
        if self.flags & FLAG_FIN:
            span += 1
        return span


class TCPEngine:
    """One connection's sender+receiver state machine."""

    DEFAULT_RTO = seconds_to_ticks(1.5)
    MAX_RTO = seconds_to_ticks(48)
    MAX_RETRIES = 7
    MAX_SYN_RETRIES = 3

    def __init__(self, local_ip: str, local_port: int,
                 remote_ip: str, remote_port: int,
                 mss: int = TCP_MSS,
                 initial_cwnd_segments: int = 1,
                 delayed_ack_ticks: int = 0,
                 rto_ticks: Optional[int] = None,
                 time_wait_ticks: int = 0):
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.mss = mss
        self.state = TcpState.CLOSED

        # Send side (absolute byte offsets from our ISS of 0).
        self.snd_una = 0
        self.snd_nxt = 0
        self._unacked: List[_SentSegment] = []
        self._queue: List[Tuple[int, Any]] = []  # (bytes remaining, app_data)
        self._queued_bytes = 0
        self.fin_pending = False
        self.fin_sent = False
        self.fin_acked = False

        # Receive side.
        self.rcv_nxt = 0
        self.fin_received = False
        self._unacked_rx_bytes = 0

        # Congestion control.
        self.cwnd = initial_cwnd_segments * mss
        self.ssthresh = 64 * 1024

        # Timers (logical armed-state lives here; env schedules).
        self.rto_base = rto_ticks if rto_ticks is not None else self.DEFAULT_RTO
        self.rto_current = self.rto_base
        self.rto_armed = False
        self.retries = 0
        self.delayed_ack_ticks = delayed_ack_ticks
        self.delack_armed = False
        self.time_wait_ticks = time_wait_ticks

        # Statistics.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmits = 0

    # ------------------------------------------------------------------
    # Opens
    # ------------------------------------------------------------------
    @classmethod
    def active_open(cls, local_ip: str, local_port: int,
                    remote_ip: str, remote_port: int,
                    **kwargs) -> Tuple["TCPEngine", TCPActions]:
        """Client side: returns the engine and the SYN to transmit."""
        eng = cls(local_ip, local_port, remote_ip, remote_port, **kwargs)
        eng.state = TcpState.SYN_SENT
        syn = _SentSegment(seq=eng.snd_nxt, payload_len=0, flags=FLAG_SYN)
        eng.snd_nxt += 1
        eng._unacked.append(syn)
        actions = TCPActions(segments=[eng._materialize(syn)])
        actions.set_rto = eng._arm_rto()
        return eng, actions

    @classmethod
    def passive_open(cls, local_ip: str, local_port: int,
                     syn: TCPSegment, remote_ip: str,
                     **kwargs) -> Tuple["TCPEngine", TCPActions]:
        """Server side: consume a SYN, return engine + SYN-ACK."""
        if not syn.flags & FLAG_SYN:
            raise ValueError("passive_open requires a SYN segment")
        eng = cls(local_ip, local_port, remote_ip, syn.src_port, **kwargs)
        eng.state = TcpState.SYN_RCVD
        eng.rcv_nxt = syn.seq + 1
        synack = _SentSegment(seq=eng.snd_nxt, payload_len=0,
                              flags=FLAG_SYN | FLAG_ACK)
        eng.snd_nxt += 1
        eng._unacked.append(synack)
        actions = TCPActions(segments=[eng._materialize(synack)])
        actions.set_rto = eng._arm_rto()
        return eng, actions

    @classmethod
    def from_syncookie(cls, local_ip: str, local_port: int,
                       ack_seg: TCPSegment, remote_ip: str,
                       cookie: int, **kwargs) -> "TCPEngine":
        """Server side, stateless-fallback path: rebuild an ESTABLISHED
        engine from the final ACK of a cookie handshake.

        No state was allocated when the SYN arrived; the cookie we issued
        as our ISS comes back (plus one) in the ACK.  All sequence
        arithmetic is absolute, so the engine simply starts with
        ``snd_una == snd_nxt == cookie + 1`` and ``rcv_nxt`` at the ACK's
        sequence number — from here the connection is indistinguishable
        from one that went through ``passive_open``.
        """
        eng = cls(local_ip, local_port, remote_ip, ack_seg.src_port,
                  **kwargs)
        eng.state = TcpState.ESTABLISHED
        eng.snd_una = eng.snd_nxt = cookie + 1
        eng.rcv_nxt = ack_seg.seq
        return eng

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send(self, nbytes: int, app_data: Any = None,
             fin: bool = False) -> TCPActions:
        """Queue application bytes; transmit as the window allows.

        ``fin=True`` closes the connection after these bytes, letting the
        FIN piggyback on the final data segment (how the web server ends a
        response).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.state in (TcpState.CLOSED,):
            raise RuntimeError("send on closed connection")
        if nbytes:
            self._queue.append((nbytes, app_data))
            self._queued_bytes += nbytes
        if fin:
            return self.close()
        return self._transmit_window()

    def close(self) -> TCPActions:
        """Application close: send FIN once the queue drains."""
        if self.fin_pending or self.state == TcpState.CLOSED:
            return TCPActions()
        self.fin_pending = True
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state == TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        return self._transmit_window()

    def abort(self) -> TCPActions:
        """Application abort: emit RST and drop everything."""
        actions = TCPActions(aborted=True, closed=True,
                             cancel_rto=True, cancel_delack=True)
        if self.state != TcpState.CLOSED:
            rst = TCPSegment(self.local_port, self.remote_port,
                             self.snd_nxt, self.rcv_nxt,
                             FLAG_RST | FLAG_ACK)
            actions.segments.append(rst)
        self._enter_closed()
        return actions

    # ------------------------------------------------------------------
    # Segment arrival
    # ------------------------------------------------------------------
    def on_segment(self, seg: TCPSegment) -> TCPActions:
        """Process one arriving segment; returns the actions to apply."""
        actions = TCPActions()
        if self.state == TcpState.CLOSED:
            return actions

        if seg.flags & FLAG_RST:
            if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
                actions.refused = True
            self._enter_closed()
            actions.closed = True
            actions.aborted = True
            actions.cancel_rto = True
            actions.cancel_delack = True
            return actions

        if self.state == TcpState.TIME_WAIT:
            # 2MSL hold: the only job left is re-ACKing a retransmitted
            # FIN from a peer that missed our final ACK.
            if seg.flags & FLAG_FIN:
                actions.segments.append(self._pure_ack())
            return actions

        if seg.flags & FLAG_SYN:
            self._handle_syn_phase(seg, actions)
            return actions

        if seg.flags & FLAG_ACK:
            self._process_ack(seg.ack, actions)

        if self.state == TcpState.SYN_RCVD and seg.flags & FLAG_ACK \
                and self.snd_una >= 1:
            self.state = TcpState.ESTABLISHED
            actions.established = True

        if seg.payload_len or seg.flags & FLAG_FIN:
            self._process_data(seg, actions)

        actions.merge(self._transmit_window())
        return actions

    def _handle_syn_phase(self, seg: TCPSegment, actions: TCPActions) -> None:
        if self.state == TcpState.SYN_SENT and seg.flags & FLAG_ACK:
            # SYN-ACK of our SYN.
            self.rcv_nxt = seg.seq + 1
            self._process_ack(seg.ack, actions)
            if self.snd_una >= 1:
                self.state = TcpState.ESTABLISHED
                actions.established = True
                actions.segments.append(self._pure_ack())
                actions.merge(self._transmit_window())
            return
        if self.state == TcpState.SYN_RCVD:
            # Duplicate SYN: retransmit our SYN-ACK.
            for sent in self._unacked:
                if sent.flags & FLAG_SYN:
                    actions.segments.append(self._materialize(sent))
                    return

    def _process_ack(self, ack: int, actions: TCPActions) -> None:
        if ack <= self.snd_una:
            return
        self.snd_una = ack
        self.retries = 0
        self.rto_current = self.rto_base
        payload_acked = 0
        while self._unacked and (self._unacked[0].seq
                                 + self._unacked[0].span) <= ack:
            sent = self._unacked.pop(0)
            payload_acked += sent.payload_len
            if sent.flags & FLAG_FIN:
                self.fin_acked = True
        # Congestion window growth, per ACK that advances over *data* —
        # handshake and FIN acknowledgements do not open the window.
        if payload_acked:
            if self.cwnd < self.ssthresh:
                self.cwnd += self.mss                 # slow start
            else:
                self.cwnd += max(1, self.mss * self.mss // self.cwnd)
        if self._unacked:
            actions.set_rto = self._arm_rto()
        else:
            self.rto_armed = False
            actions.cancel_rto = True
        if self.fin_acked:
            if self.state == TcpState.FIN_WAIT_1:
                self.state = TcpState.FIN_WAIT_2
            elif self.state == TcpState.CLOSING:
                self._enter_time_wait(actions)
            elif self.state == TcpState.LAST_ACK:
                self._enter_closed()
                actions.closed = True

    def _process_data(self, seg: TCPSegment, actions: TCPActions) -> None:
        if seg.seq != self.rcv_nxt:
            # Out of order / duplicate: re-ACK what we have.
            actions.segments.append(self._pure_ack())
            return
        if seg.payload_len:
            self.rcv_nxt += seg.payload_len
            self.bytes_received += seg.payload_len
            actions.deliveries.append((seg.payload_len, seg.app_data))
            self._unacked_rx_bytes += seg.payload_len
        fin = bool(seg.flags & FLAG_FIN)
        if fin:
            self.rcv_nxt += 1
            self.fin_received = True
            actions.fin_received = True
            if self.state == TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT
            elif self.state == TcpState.FIN_WAIT_1:
                self.state = TcpState.CLOSING
            elif self.state == TcpState.FIN_WAIT_2:
                self._enter_time_wait(actions)
        # ACK policy: immediate on FIN or >= 2 MSS of unacked data;
        # otherwise delayed when a delayed-ACK timer is configured.
        if fin or self.delayed_ack_ticks == 0 \
                or self._unacked_rx_bytes >= 2 * self.mss:
            self._ack_now(actions)
        elif not self.delack_armed:
            self.delack_armed = True
            actions.set_delack = self.delayed_ack_ticks

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def on_rto(self) -> TCPActions:
        """Retransmission timer fired (doubles as the 2MSL timer)."""
        actions = TCPActions()
        self.rto_armed = False
        if self.state == TcpState.TIME_WAIT:
            self._enter_closed()
            actions.closed = True
            return actions
        if not self._unacked or self.state == TcpState.CLOSED:
            return actions
        self.retries += 1
        limit = (self.MAX_SYN_RETRIES
                 if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD)
                 else self.MAX_RETRIES)
        if self.retries > limit:
            self._enter_closed()
            actions.closed = True
            actions.aborted = True
            actions.cancel_delack = True
            return actions
        # Classic Tahoe-style response.
        flight = self.snd_nxt - self.snd_una
        self.ssthresh = max(flight // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.rto_current = min(self.rto_current * 2, self.MAX_RTO)
        sent = self._unacked[0]
        self.retransmits += 1
        actions.segments.append(self._materialize(sent))
        actions.set_rto = self._arm_rto()
        return actions

    def on_delack(self) -> TCPActions:
        """Delayed-ACK timer fired."""
        actions = TCPActions()
        self.delack_armed = False
        if self.state == TcpState.CLOSED:
            return actions
        if self._unacked_rx_bytes:
            self._unacked_rx_bytes = 0
            actions.segments.append(self._pure_ack())
        return actions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _transmit_window(self) -> TCPActions:
        """Segment queued data as cwnd allows; piggyback the FIN."""
        actions = TCPActions()
        if self.state not in (TcpState.ESTABLISHED, TcpState.FIN_WAIT_1,
                              TcpState.CLOSE_WAIT, TcpState.LAST_ACK):
            return actions
        sent_any = False
        while True:
            flight = self.snd_nxt - self.snd_una
            if self._queued_bytes > 0:
                available = self.cwnd - flight
                if available <= 0:
                    break
                payload = min(self.mss, self._queued_bytes)
                if payload > available:
                    # Sender-side silly-window avoidance: never emit a
                    # runt segment just to top up the window — a partial
                    # segment starves the receiver's delayed-ACK "two
                    # full segments" rule and stalls the stream.  Wait
                    # for an ACK unless nothing at all is in flight.
                    if flight > 0:
                        break
                    payload = available
                if payload <= 0:
                    break
                app_data = self._dequeue(payload)
                flags = FLAG_ACK
                if self.fin_pending and self._queued_bytes == 0 \
                        and not self.fin_sent:
                    flags |= FLAG_FIN
                    self.fin_sent = True
                sent = _SentSegment(self.snd_nxt, payload, flags, app_data)
                self.snd_nxt += sent.span
                self.bytes_sent += payload
                self._unacked.append(sent)
                actions.segments.append(self._materialize(sent))
                sent_any = True
            elif self.fin_pending and not self.fin_sent:
                sent = _SentSegment(self.snd_nxt, 0, FLAG_ACK | FLAG_FIN)
                self.fin_sent = True
                self.snd_nxt += 1
                self._unacked.append(sent)
                actions.segments.append(self._materialize(sent))
                sent_any = True
                break
            else:
                break
        if sent_any:
            # Data segments carry the ACK; any pending delayed ACK rides
            # along for free.
            if self.delack_armed:
                self.delack_armed = False
                actions.cancel_delack = True
            self._unacked_rx_bytes = 0
            if not self.rto_armed:
                actions.set_rto = self._arm_rto()
        return actions

    def _dequeue(self, nbytes: int) -> Any:
        """Take bytes off the app queue; returns the first app_data tag."""
        app_data = None
        remaining = nbytes
        while remaining > 0 and self._queue:
            size, tag = self._queue[0]
            if app_data is None and tag is not None:
                app_data = tag
            if size <= remaining:
                remaining -= size
                self._queue.pop(0)
            else:
                self._queue[0] = (size - remaining, None)
                remaining = 0
        self._queued_bytes -= nbytes
        return app_data

    def _materialize(self, sent: _SentSegment) -> TCPSegment:
        flags = sent.flags
        if flags != FLAG_SYN:
            # Everything except the client's initial SYN carries an ACK.
            flags |= FLAG_ACK
        return TCPSegment(self.local_port, self.remote_port, sent.seq,
                          self.rcv_nxt, flags, sent.payload_len,
                          sent.app_data)

    def _pure_ack(self) -> TCPSegment:
        self._unacked_rx_bytes = 0
        return TCPSegment(self.local_port, self.remote_port,
                          self.snd_nxt, self.rcv_nxt, FLAG_ACK)

    def _ack_now(self, actions: TCPActions) -> None:
        if self.delack_armed:
            self.delack_armed = False
            actions.cancel_delack = True
        actions.segments.append(self._pure_ack())

    def _arm_rto(self) -> int:
        self.rto_armed = True
        return self.rto_current

    def _enter_time_wait(self, actions: TCPActions) -> None:
        """Active close complete: hold 2MSL if configured, else close."""
        if self.time_wait_ticks > 0:
            self.state = TcpState.TIME_WAIT
            self.rto_armed = True
            actions.set_rto = self.time_wait_ticks
            actions.cancel_delack = True
            return
        self._enter_closed()
        actions.closed = True

    def _enter_closed(self) -> None:
        self.state = TcpState.CLOSED
        self._queue.clear()
        self._queued_bytes = 0
        self._unacked.clear()
        self.rto_armed = False
        self.delack_armed = False

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state == TcpState.ESTABLISHED

    @property
    def closed(self) -> bool:
        return self.state == TcpState.CLOSED

    @property
    def half_open(self) -> bool:
        return self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TCPEngine {self.local_ip}:{self.local_port} <-> "
                f"{self.remote_ip}:{self.remote_port} {self.state}>")
