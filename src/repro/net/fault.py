"""Network fault injection.

Wraps any :class:`~repro.net.link.Medium` and perturbs traffic passing
through it: probabilistic drops, duplication, extra delay, reordering,
payload corruption, and whole-link flaps, all driven by a seeded RNG so
every failure sequence is reproducible.  Used by the failure-injection and
chaos tests to verify that the full server stack — demux, paths, the TCP
module, teardown — survives a misbehaving network, and that the accounting
invariants hold even when packets are lost, mangled, or arrive twice.

Interposition is symmetric:

* **Send side** (default): ``attach(nic)`` registers the NIC with the
  wrapped medium but points ``nic.medium`` at the injector, so everything
  the NIC *transmits* passes through the fault model before reaching the
  real medium.
* **Receive side** (opt-in): ``attach(nic, receive=True)`` additionally
  wraps ``nic.deliver`` so frames *arriving* at the NIC pass through the
  same fault model.  This is how receive-path faults (e.g. a flaky server
  NIC) are injected without touching the senders.

Counter contract: every frame presented to the injector is counted in
``offered`` and in exactly one of ``forwarded`` (it went through, possibly
late, duplicated, or corrupted) or ``dropped`` (it vanished), so
``forwarded + dropped == offered`` always holds.  ``duplicated``,
``delayed``, ``reordered``, and ``corrupted`` count the extra copies and
per-copy mutations on top.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.net.link import Medium, NIC
from repro.net.packet import EthFrame

#: Failsafe: a frame held for reordering is flushed after this many ticks
#: even if no follow-up frame arrives to overtake it (100 us).
REORDER_FLUSH_TICKS = 60_000


class FaultInjector(Medium):
    """A lossy/duplicating/delaying/reordering shim in front of a medium.

    Attach NICs to the injector instead of the medium; the injector
    forwards (or mangles) transmissions into the wrapped medium.
    """

    def __init__(self, sim, inner: Medium,
                 drop_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 extra_delay_ticks: int = 0,
                 delay_probability: float = 0.0,
                 reorder_probability: float = 0.0,
                 corrupt_probability: float = 0.0,
                 seed: int = 0):
        for p in (drop_probability, duplicate_probability,
                  delay_probability, reorder_probability,
                  corrupt_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        if extra_delay_ticks < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.inner = inner
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.extra_delay_ticks = extra_delay_ticks
        self.delay_probability = delay_probability
        self.reorder_probability = reorder_probability
        self.corrupt_probability = corrupt_probability
        self.rng = random.Random(seed)

        self.offered = 0
        self.dropped = 0
        self.forwarded = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.corrupted = 0
        self.flap_drops = 0

        #: Link state: while False (a flap), every offered frame is dropped.
        self.link_up = True
        self.link_flaps = 0
        #: A copy held back for reordering, emitted after the next frame
        #: passes (or after the failsafe flush): (emit, frame).
        self._held: Optional[Tuple[Callable[[EthFrame], None], EthFrame]] = None

    # ------------------------------------------------------------------
    # Attachment (symmetric interposition)
    # ------------------------------------------------------------------
    def attach(self, nic: NIC, receive: bool = False) -> None:
        """Attach a NIC: its sends pass through the injector.

        With ``receive=True``, deliveries to the NIC are also interposed,
        so receive-side faults hit frames the wrapped medium (or another
        injector-free path) sends toward this NIC.

        Works with media that already bind their NIC at construction — a
        :class:`~repro.net.link.SwitchPort` binds exactly one NIC when the
        switch creates it — by skipping the inner re-attachment and only
        interposing.  Wrapping a switch port this way makes the injector a
        *per-port* medium: the port's ingress (NIC -> switch) rolls the
        fault model on the send side, and its egress (switch -> NIC) rolls
        it on the receive side, so one flapping port behaves exactly like
        one flapping cable while the rest of the switch stays clean.
        """
        if getattr(self.inner, "nic", None) is not nic:
            self.inner.attach(nic)
        nic.medium = self  # interpose on the send side
        if receive:
            self.interpose_receive(nic)

    def interpose_receive(self, nic: NIC) -> None:
        """Wrap ``nic.deliver`` so inbound frames roll the fault model."""
        inner_deliver = nic.deliver
        nic.deliver = lambda frame: self._process(frame, inner_deliver)

    # ------------------------------------------------------------------
    # Link flaps
    # ------------------------------------------------------------------
    def set_link(self, up: bool) -> None:
        """Bring the link up or down; while down, everything is dropped."""
        if up == self.link_up:
            return
        self.link_up = up
        if not up:
            self.link_flaps += 1

    # ------------------------------------------------------------------
    # The fault model
    # ------------------------------------------------------------------
    def transmit(self, frame: EthFrame, sender: NIC) -> None:
        """Forward ``frame``, possibly mangling it on the way."""
        self._process(frame,
                      lambda f, s=sender: self.inner.transmit(f, s))

    def _process(self, frame: EthFrame,
                 emit: Callable[[EthFrame], None]) -> None:
        """Run one frame through the fault model; ``emit`` outputs a copy."""
        # The fault model forks frame lifetimes (duplicates, held copies,
        # delayed copies all alias this object past its normal drop
        # point), so any frame entering it loses free-list poolability.
        if frame.pool is not None:
            frame.pool = None
        self.offered += 1
        if not self.link_up:
            self.dropped += 1
            self.flap_drops += 1
            return
        if self.rng.random() < self.drop_probability:
            self.dropped += 1
            return
        self.forwarded += 1

        copies = 1
        if self.rng.random() < self.duplicate_probability:
            self.duplicated += 1
            copies = 2
        for _ in range(copies):
            out = frame
            if self.rng.random() < self.corrupt_probability:
                # Corrupt a private copy: duplicates of the same frame
                # share the payload object, so the damage must not leak
                # into the clean copies.
                out = EthFrame(frame.src_mac, frame.dst_mac,
                               frame.ethertype, frame.payload,
                               corrupted=True)
                self.corrupted += 1
            # Each copy rolls independently for delay — a duplicated frame
            # can arrive once on time and once late.
            if self.extra_delay_ticks and \
                    self.rng.random() < self.delay_probability:
                self.delayed += 1
                self.sim.schedule(
                    self.extra_delay_ticks,
                    lambda f=out, e=emit: self._emit(f, e))
            else:
                self._dispatch(out, emit)

    def _dispatch(self, frame: EthFrame,
                  emit: Callable[[EthFrame], None]) -> None:
        """Emit one copy now, honouring the reordering hold slot."""
        if self._held is None and \
                self.rng.random() < self.reorder_probability:
            # Hold this copy; it goes out right after the next frame,
            # which observably overtakes it.  The failsafe flush bounds
            # the hold when traffic stops.
            self.reordered += 1
            held = (emit, frame)
            self._held = held
            self.sim.schedule(REORDER_FLUSH_TICKS,
                              lambda h=held: self._flush_if_held(h))
            return
        self._emit(frame, emit)

    def _emit(self, frame: EthFrame,
              emit: Callable[[EthFrame], None]) -> None:
        emit(frame)
        if self._held is not None:
            held_emit, held_frame = self._held
            self._held = None
            held_emit(held_frame)

    def _flush_if_held(self, held) -> None:
        if self._held is held:
            self._held = None
            held[0](held[1])

    # ------------------------------------------------------------------
    def assert_contract(self) -> None:
        """Enforce the counter contract: every offered frame is counted in
        exactly one of ``forwarded`` / ``dropped``.

        Cheap (three integer reads), so callers — and :meth:`stats` —
        check it on every inspection; the chaos grammar composes reorder,
        corruption, duplication and flaps in ways the canned scenarios
        never did, and a frame double-counted (or lost track of) under
        such a combination must fail loudly, not skew a campaign verdict.
        """
        if self.forwarded + self.dropped != self.offered:
            raise AssertionError(
                f"FaultInjector counter contract violated: forwarded "
                f"{self.forwarded} + dropped {self.dropped} != offered "
                f"{self.offered}")

    def stats(self) -> dict:
        """Injection counters (for assertions and reports).

        Invariant: ``forwarded + dropped == offered`` (checked here).
        """
        self.assert_contract()
        return {"offered": self.offered,
                "dropped": self.dropped,
                "forwarded": self.forwarded,
                "duplicated": self.duplicated,
                "delayed": self.delayed,
                "reordered": self.reordered,
                "corrupted": self.corrupted,
                "flap_drops": self.flap_drops,
                "link_flaps": self.link_flaps}
