"""Network fault injection.

Wraps any :class:`~repro.net.link.Medium` and perturbs traffic passing
through it: probabilistic drops, duplication, and extra delay, all driven
by a seeded RNG so failures are reproducible.  Used by the failure-
injection tests to verify that the full server stack — demux, paths, the
TCP module, teardown — survives a misbehaving network, and that the
accounting invariants hold even when packets are lost or arrive twice.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.link import Medium, NIC
from repro.net.packet import EthFrame


class FaultInjector(Medium):
    """A lossy/duplicating/delaying shim in front of a real medium.

    Attach NICs to the injector instead of the medium; the injector
    forwards (or mangles) transmissions into the wrapped medium.
    """

    def __init__(self, sim, inner: Medium,
                 drop_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 extra_delay_ticks: int = 0,
                 delay_probability: float = 0.0,
                 seed: int = 0):
        for p in (drop_probability, duplicate_probability,
                  delay_probability):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        if extra_delay_ticks < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.inner = inner
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.extra_delay_ticks = extra_delay_ticks
        self.delay_probability = delay_probability
        self.rng = random.Random(seed)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.forwarded = 0

    # ------------------------------------------------------------------
    def attach(self, nic: NIC) -> None:
        """Attach a NIC: it sends through the injector into the medium."""
        self.inner.attach(nic)
        nic.medium = self  # interpose on the send side only

    def transmit(self, frame: EthFrame, sender: NIC) -> None:
        """Forward ``frame``, possibly dropping/duplicating/delaying it."""
        if self.rng.random() < self.drop_probability:
            self.dropped += 1
            return
        copies = 1
        if self.rng.random() < self.duplicate_probability:
            self.duplicated += 1
            copies = 2
        for _ in range(copies):
            if self.extra_delay_ticks and \
                    self.rng.random() < self.delay_probability:
                self.delayed += 1
                self.sim.schedule(
                    self.extra_delay_ticks,
                    lambda f=frame, s=sender: self.inner.transmit(f, s))
            else:
                self.forwarded += 1
                self.inner.transmit(frame, sender)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Injection counters (for assertions and reports)."""
        return {"dropped": self.dropped, "duplicated": self.duplicated,
                "delayed": self.delayed, "forwarded": self.forwarded}
