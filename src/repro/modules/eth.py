"""The Ethernet device driver module.

ETH owns the NIC.  On receive it runs the incremental demultiplexer at
interrupt level — charging the interrupt and demux cycles to the path the
packet resolves to (or to the driver's domain for drops) — and enqueues the
frame on the path's input queue.  This early classification is the paper's
whole SYN-defence story: a flooded SYN is recognized and dropped for the
cost of an interrupt plus a few demux calls, before any path resources are
committed.

On transmit it serializes frames onto the wire through the NIC.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.sim.cpu import Cycles, Interrupt
from repro.core.demux import DROP, Demultiplexer, DemuxResult, TO_PATH
from repro.core.path import FORWARD, PathWork, Stage
from repro.modules.base import Module, OpenResult
from repro.net.link import NIC
from repro.net.packet import ETHERTYPE_ARP, ETHERTYPE_IP, EthFrame


class OutFrame:
    """A fully-resolved outbound frame handed to ETH by IP or ARP."""

    __slots__ = ("dst_mac", "ethertype", "payload")

    def __init__(self, dst_mac, ethertype: int, payload: Any):
        self.dst_mac = dst_mac
        self.ethertype = ethertype
        self.payload = payload


class EthModule(Module):
    """Driver for the DE500 Ethernet adapter of the testbed."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd):
        super().__init__(kernel, name, pd)
        self.nic: Optional[NIC] = None
        self.demultiplexer: Optional[Demultiplexer] = None
        self.rx_frames = 0
        self.tx_frames = 0
        self.drops: Dict[str, int] = {}
        self.queue_overflows = 0
        # Per-ethertype dispatch table (ethertype -> target module name or
        # an interned drop result), rebuilt when the graph grows; replaces
        # the per-frame ``"x" in self.graph`` membership probes.  Modules
        # are only ever added to a graph, so the size is a valid version.
        self._demux_table: Dict[int, object] = {}
        self._demux_gen = -1
        self._fwd = DemuxResult.forward("", None)

    # ------------------------------------------------------------------
    # Device binding
    # ------------------------------------------------------------------
    def bind(self, nic: NIC, demultiplexer: Demultiplexer) -> None:
        self.nic = nic
        self.demultiplexer = demultiplexer
        nic.on_receive = self.on_frame

    # ------------------------------------------------------------------
    # Receive: interrupt + demux
    # ------------------------------------------------------------------
    def on_frame(self, frame: EthFrame) -> None:
        """NIC receive callback (runs at engine-event time)."""
        self.rx_frames += 1
        costs = self.costs
        result = self.demultiplexer.classify(self, frame)
        demux_cycles = result.demux_cycles(self.kernel)
        if result.kind == DROP:
            self.drops[result.reason] = self.drops.get(result.reason, 0) + 1
            # Drop work is charged to the driver's domain: no path exists
            # (or deserves) to pay for it.
            self.kernel.cpu.post_interrupt(Interrupt(
                [(self.pd, costs.eth_rx_interrupt + demux_cycles)],
                label=f"eth-drop:{result.reason}"))
            # A dropped frame is dead the instant demux rejects it: hand
            # pooled flood frames straight back to their free list.
            pool = frame.pool
            if pool is not None:
                pool.release(frame)
            return
        path = result.path

        def enqueue() -> None:
            if path.destroyed:
                self.drops["dead-path"] = self.drops.get("dead-path", 0) + 1
                return
            stage = path.stage_of(self.name)
            if not path.enqueue(PathWork(stage, FORWARD, frame)):
                self.queue_overflows += 1

        self.kernel.cpu.post_interrupt(Interrupt(
            [(path, costs.eth_rx_interrupt + demux_cycles)],
            on_complete=enqueue, label="eth-rx"))

    def demux(self, frame: EthFrame) -> DemuxResult:
        if self._demux_gen != len(self.graph._modules):
            self._rebuild_demux_table()
        target = self._demux_table.get(frame.ethertype)
        if target.__class__ is str:
            return self._fwd.refit(target, frame.payload)
        if target is None:
            return DemuxResult.drop("ethertype")
        return target  # interned drop

    def _rebuild_demux_table(self) -> None:
        graph = self.graph
        self._demux_table = {
            ETHERTYPE_ARP: ("arp" if "arp" in graph
                            else DemuxResult.drop("no-arp")),
            ETHERTYPE_IP: ("ip" if "ip" in graph
                           else DemuxResult.drop("no-ip")),
        }
        self._demux_gen = len(graph._modules)

    # ------------------------------------------------------------------
    # Path membership
    # ------------------------------------------------------------------
    def open(self, path, attrs, origin):
        # ETH is the network end of every path; it never extends further.
        return OpenResult(self.make_stage(path), ())

    # ------------------------------------------------------------------
    # Path processing
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, frame: EthFrame) -> Generator:
        """Inbound frame on a path thread: strip and pass up."""
        yield Cycles(self.costs.eth_rx + self.acct(1))
        result = yield from stage.send_forward(frame.payload)
        return result

    def backward(self, stage: Stage, out: OutFrame) -> Generator:
        """Outbound: frame the payload and hand it to the NIC."""
        yield Cycles(self.costs.eth_tx + self.acct(1))
        self.tx_frames += 1
        frame = EthFrame(self.nic.mac, out.dst_mac, out.ethertype,
                         out.payload)
        self.nic.send(frame)
        return True
