"""The TCP module.

Wraps the shared :class:`~repro.net.tcp.TCPEngine` state machine in Scout
path semantics:

* **Passive paths** hold listening state.  A listener can have several
  passive paths, one per source subnet — this is how the SYN-flood policy
  separates the trusted and untrusted Internet (paper section 4.4.1).  Each
  passive path tracks how many active paths it has created that are still
  in SYN_RCVD; the demux function consults that count and drops flood SYNs
  *during demultiplexing*, as early and as cheaply as possible.
* **Active paths** carry one connection each.  The paper's Table 1
  measurement window is exactly this path's life: it is created when the
  passive path accepts the SYN, and every cycle of protocol processing,
  timer handling, and teardown is charged to it.

Per-connection control state (the TCB) is allocated from TCP's domain heap
and charged to the path, with a registered destructor that frees it on
``pathDestroy`` — the chargeback dance of paper section 2.4.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim.cpu import Cycles, YieldCPU
from repro.core.attributes import Attributes
from repro.core.demux import DemuxResult
from repro.core.lifecycle import PathCreateError
from repro.core.path import BACKWARD, FORWARD, PathWork, Stage
from repro.modules.base import Module, OpenResult
from repro.net.addressing import Subnet
from repro.net.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    IPDatagram,
    TCPSegment,
)
from repro.net.tcp import TCPActions, TCPEngine

TCB_BYTES = 256
PURE_ACK_COST = 2_500


class TcpFlush:
    """Work item: transmit an active path's pending engine actions."""

    __slots__ = ("actions",)

    def __init__(self, actions: Optional[TCPActions] = None):
        self.actions = actions


class AppSend:
    """Work item from the application: send bytes (maybe closing)."""

    __slots__ = ("nbytes", "fin", "app_data")

    def __init__(self, nbytes: int, fin: bool = False, app_data: Any = None):
        self.nbytes = nbytes
        self.fin = fin
        self.app_data = app_data


class HTTPData:
    """In-order stream data delivered up to the application."""

    __slots__ = ("nbytes", "app_data", "eof")

    def __init__(self, nbytes: int, app_data: Any = None, eof: bool = False):
        self.nbytes = nbytes
        self.app_data = app_data
        self.eof = eof


class Listener:
    """A listening port with one passive path per source subnet.

    A *penalty* passive path (paper section 4.4.4) may additionally be
    registered: sources matching its predicate — typically "has previously
    violated a resource bound" — are demultiplexed there first, so a
    known offender's connection requests land on a path with a very small
    resource allocation or very low priority.
    """

    def __init__(self, port: int):
        self.port = port
        #: (subnet, passive_path) in registration order; first match wins.
        self.passive_paths: List[Tuple[Subnet, object]] = []
        self.penalty_path = None
        self.penalty_predicate = None

    def register(self, subnet: Subnet, path) -> None:
        self.passive_paths.append((subnet, path))

    def set_penalty(self, path, predicate) -> None:
        self.penalty_path = path
        self.penalty_predicate = predicate

    def select(self, src_ip: str):
        if (self.penalty_path is not None
                and not self.penalty_path.destroyed
                and self.penalty_predicate is not None
                and self.penalty_predicate(src_ip)):
            return self.penalty_path
        for subnet, path in self.passive_paths:
            if not path.destroyed and subnet.contains(src_ip):
                return path
        return None

    def unregister(self, path) -> None:
        self.passive_paths = [(s, p) for s, p in self.passive_paths
                              if p is not path]


class TcpModule(Module):
    """TCP over the path architecture."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd, local_ip: str,
                 server_delack_ticks: Optional[int] = None):
        super().__init__(kernel, name, pd)
        self.local_ip = local_ip
        self.listeners: Dict[int, Listener] = {}
        #: (local_port, remote_ip, remote_port) -> active path
        self.conn_table: Dict[Tuple[int, str, int], object] = {}
        self.path_manager = None  # injected by the server assembly
        self.server_delack_ticks = server_delack_ticks
        #: Hook: paths created for new connections get this runtime limit.
        self.active_path_runtime_limit: Optional[int] = None
        #: Hook: scheduler tickets for new active paths.
        self.active_path_tickets: int = 1
        #: Hook: src_ip -> bool, wired onto penalty passive paths at
        #: attach time (set by the misbehaver policy before boot).
        self.penalty_predicate = None
        #: Hook: ResourceQuota applied to each new connection path (set
        #: by the memory-quota policy).
        self.active_path_quota = None
        self.master_event = None
        self.connections_accepted = 0
        self.connections_established = 0
        self.connections_closed = 0
        self.connections_aborted = 0
        self.demux_drops: Dict[str, int] = {}
        #: Per-/24-prefix SYN arrival counts (offered load, counted before
        #: any gate/cap decision) — the defense monitor's per-source signal.
        self.syn_arrivals: Dict[str, int] = {}
        #: Hook: optional admission gate consulted for each SYN during
        #: demux; ``gate(prefix) -> bool``, False drops as "rate-limit".
        #: Installed by the adaptive defense controller's first rung.
        self.syn_gate = None
        #: SYN-cookie stateless fallback (the defense ladder's second
        #: rung): while True, SYNs are answered with a cookie SYN-ACK and
        #: *no* connection state is allocated; the final ACK of the
        #: handshake reconstructs the engine from the cookie.
        self.syncookies = False
        self.syncookie_secret = 0x5EC0
        self.syncookies_sent = 0
        self.syncookies_accepted = 0
        #: Once cookies have ever been armed, cookie ACKs stay acceptable
        #: (validation only passes for genuine cookie holders), so clients
        #: mid-handshake are not orphaned by a de-escalation.
        self._cookie_armed = False
        self._conn_seq = 0
        # Module-owned TO_PATH result, re-aimed per packet (consumed by
        # classify before the next demux call; see core/demux.py).
        self._topath = DemuxResult.to_path(None)
        #: (created_tick, closed_tick) per gracefully-closed connection —
        #: the paper's Table 1 measurement window (SYN accept to final
        #: FIN acknowledgement).
        self.conn_windows: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def init_module(self) -> Generator:
        """Start the TCP master event (Table 1's row): a periodic scan of
        all connections, owned by TCP's protection domain; the per-
        connection work is charged to each connection's path."""
        self.master_event = self.kernel.create_event(
            self.pd, self._master_scan,
            delay_ticks=self.costs.tcp_master_period_ticks,
            periodic=True, name="tcp-master")
        return
        yield  # pragma: no cover

    def _master_scan(self) -> Generator:
        yield Cycles(self.costs.tcp_master_event)
        for path in list(self.conn_table.values()):
            if not path.destroyed:
                yield Cycles(self.costs.tcp_timeout_per_conn, owner=path)

    # ------------------------------------------------------------------
    # open / attach
    # ------------------------------------------------------------------
    def open(self, path, attrs: Attributes, origin):
        stage = self.make_stage(path)
        if attrs.get("listen"):
            stage.state["listen"] = True
            stage.state["port"] = attrs.require("local_port")
            stage.state["penalty"] = bool(attrs.get("penalty"))
            stage.state["subnet"] = attrs.get("subnet") or Subnet("0.0.0.0/0")
            extend = ["ip"] if origin is None or origin.name != "ip" else []
            return OpenResult(stage, self._toward_net(origin, extend))
        # Active connection path.
        stage.state["listen"] = False
        stage.state["peer_ip"] = attrs.require("peer_ip")
        stage.state["peer_port"] = attrs.require("peer_port")
        stage.state["port"] = attrs.require("local_port")
        stage.state["syn"] = attrs.get("syn")
        stage.state["cookie"] = attrs.get("cookie")
        stage.state["cookie_seg"] = attrs.get("cookie_seg")
        if stage.state["syn"] is None and stage.state["cookie"] is None:
            raise ValueError("active TCP path needs a SYN or a cookie ACK")
        stage.state["parent"] = attrs.get("parent")
        stage.state["counted"] = False
        stage.state["timers"] = {}
        extend = [n for n in self.graph.neighbors(self.name)
                  if origin is None or n != origin.name]
        return OpenResult(stage, extend)

    def _toward_net(self, origin, default):
        """Passive paths extend toward the network side only."""
        neighbors = self.graph.neighbors(self.name)
        net_side = [n for n in neighbors
                    if self.graph.position(n) < self.graph.position(self.name)]
        if origin is not None:
            net_side = [n for n in net_side if n != origin.name]
        return net_side

    def attach(self, stage: Stage) -> None:
        path = stage.path
        if stage.state.get("listen"):
            port = stage.state["port"]
            listener = self.listeners.setdefault(port, Listener(port))
            path.policy_state.setdefault("syn_recvd", 0)
            if stage.state.get("penalty"):
                listener.set_penalty(path, self.penalty_predicate)
            else:
                listener.register(stage.state["subnet"], path)
                path.on_destroy(lambda p, l=listener: l.unregister(p))
            return
        # Active path: build the engine in SYN_RCVD and bind the demux key.
        # A cookie path skips SYN_RCVD entirely — the engine is rebuilt
        # ESTABLISHED from the handshake-completing ACK (paper-style
        # stateless fallback; no half-open state ever existed for it).
        syn = stage.state["syn"]
        if syn is None:
            engine = TCPEngine.from_syncookie(
                self.local_ip, stage.state["port"], stage.state["cookie_seg"],
                stage.state["peer_ip"], stage.state["cookie"],
                delayed_ack_ticks=self.server_delack_ticks or 0)
            stage.state["engine"] = engine
            stage.state["pending"] = None
            stage.state["established_seen"] = True
            self.connections_established += 1
        else:
            engine, actions = TCPEngine.passive_open(
                self.local_ip, stage.state["port"], syn,
                stage.state["peer_ip"],
                delayed_ack_ticks=self.server_delack_ticks or 0)
            stage.state["engine"] = engine
            stage.state["pending"] = actions
        stage.state["created_at"] = stage.path.attributes.get(
            "accepted_at", self.kernel.sim.now)
        self.connections_accepted += 1
        if self.active_path_runtime_limit is not None:
            path.runtime_limit_cycles = self.active_path_runtime_limit
        if self.active_path_quota is not None:
            self.kernel.quotas.set_quota(path, self.active_path_quota)
        path.sched.tickets = self.active_path_tickets
        key = (stage.state["port"], stage.state["peer_ip"],
               stage.state["peer_port"])
        self.conn_table[key] = path
        # The TCB: domain-heap memory charged to the path, freed by the
        # registered destructor on pathDestroy (pathKill sweeps it without
        # our help).
        tcb = self.pd.heap_alloc(TCB_BYTES, charge_to=path, label="tcb",
                                 allocator=self.kernel.allocator)
        stage.state["tcb"] = tcb

        def tcb_destructor(p, alloc=tcb, pd=self.pd):
            if alloc in p.heap_allocations:
                pd.heap_free(alloc)

        path.destructors.append((self.pd, tcb_destructor))

        parent = stage.state["parent"]
        if parent is not None:
            parent.policy_state["syn_recvd"] = \
                parent.policy_state.get("syn_recvd", 0) + 1
            stage.state["counted"] = True

        def cleanup(p, key=key, stage=stage):
            self.conn_table.pop(key, None)
            self._uncount(stage)
            for ev in stage.state.get("timers", {}).values():
                if ev is not None:
                    ev.cancel()

        path.on_destroy(cleanup)

    def _uncount(self, stage: Stage) -> None:
        if stage.state.get("counted"):
            stage.state["counted"] = False
            parent = stage.state.get("parent")
            if parent is not None and not parent.destroyed:
                parent.policy_state["syn_recvd"] = max(
                    0, parent.policy_state.get("syn_recvd", 1) - 1)

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------
    def demux(self, dgram: IPDatagram) -> DemuxResult:
        seg: TCPSegment = dgram.payload
        key = (seg.dst_port, dgram.src_ip, seg.src_port)
        path = self.conn_table.get(key)
        if path is not None and not path.destroyed:
            return self._topath.refit_path(path)
        if seg.flags & FLAG_SYN and not seg.flags & FLAG_ACK:
            prefix = self.src_prefix(dgram.src_ip)
            self.syn_arrivals[prefix] = self.syn_arrivals.get(prefix, 0) + 1
            if self.syn_gate is not None and not self.syn_gate(prefix):
                # Adaptive defense rung 1: per-source token-bucket limit,
                # enforced as early as the static SYN cap.
                return self._drop("rate-limit")
            listener = self.listeners.get(seg.dst_port)
            if listener is None:
                return self._drop("no-listener")
            passive = listener.select(dgram.src_ip)
            if passive is None:
                return self._drop("no-subnet")
            if self.syncookies:
                # Stateless fallback: the cap is moot, nothing will be
                # allocated for this SYN.
                return self._topath.refit_path(passive)
            cap = passive.policy_state.get("syn_cap")
            if cap is not None \
                    and passive.policy_state.get("syn_recvd", 0) >= cap:
                # The SYN-flood defence: identified and dropped instantly,
                # during demultiplexing.
                return self._drop("syn-cap")
            return self._topath.refit_path(passive)
        if (self._cookie_armed and seg.flags & FLAG_ACK
                and not seg.flags & (FLAG_SYN | FLAG_FIN | FLAG_RST)
                and seg.ack - 1 == self.syn_cookie(dgram.src_ip,
                                                   seg.src_port,
                                                   seg.dst_port)):
            # Handshake-completing ACK for a cookie SYN-ACK we sent
            # statelessly: route to the passive path, which reconstructs
            # the connection.
            listener = self.listeners.get(seg.dst_port)
            passive = listener.select(dgram.src_ip) if listener else None
            if passive is not None:
                return self._topath.refit_path(passive)
        return self._drop("no-connection")

    def _drop(self, reason: str) -> DemuxResult:
        self.demux_drops[reason] = self.demux_drops.get(reason, 0) + 1
        return DemuxResult.drop(reason)

    # ------------------------------------------------------------------
    # SYN-cookie fallback and half-open accounting
    # ------------------------------------------------------------------
    @staticmethod
    def src_prefix(ip: str) -> str:
        """The /24 prefix used as the per-source accounting key."""
        return ip.rsplit(".", 1)[0]

    def syn_cookie(self, src_ip: str, src_port: int, dst_port: int) -> int:
        """Deterministic cookie for one (source, port pair).

        Used as the SYN-ACK's initial sequence number; the handshake ACK
        must carry ``cookie + 1``.  Forced odd and nonzero so it can never
        collide with the engine's real ISS of 0 (a stale ACK for a normal
        handshake acks 1, which would need cookie 0).
        """
        h = zlib.crc32(f"{src_ip}:{src_port}:{dst_port}:"
                       f"{self.syncookie_secret}".encode())
        return (h & 0x3FFFFFFF) | 1

    def set_syncookies(self, enabled: bool) -> None:
        self.syncookies = bool(enabled)
        if enabled:
            self._cookie_armed = True

    def half_open(self) -> int:
        """Connections currently in SYN_RCVD across all passive paths."""
        total = 0
        seen = set()
        for listener in self.listeners.values():
            paths = [p for _, p in listener.passive_paths]
            if listener.penalty_path is not None:
                paths.append(listener.penalty_path)
            for p in paths:
                if id(p) in seen or p.destroyed:
                    continue
                seen.add(id(p))
                total += p.policy_state.get("syn_recvd", 0)
        return total

    # ------------------------------------------------------------------
    # Path processing: inbound
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        if stage.state.get("listen"):
            result = yield from self._passive_forward(stage, dgram)
            return result
        result = yield from self._active_forward(stage, dgram)
        return result

    def _passive_forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        """A SYN reached the passive path: create the active path."""
        seg: TCPSegment = dgram.payload
        accepted_at = self.kernel.sim.now  # Table 1's window opens here
        yield Cycles(self.costs.tcp_handshake_step + self.acct(2))
        if not (seg.flags & FLAG_SYN) or seg.flags & FLAG_ACK:
            if (seg.flags & FLAG_ACK
                    and not seg.flags & (FLAG_SYN | FLAG_FIN | FLAG_RST)):
                result = yield from self._cookie_accept(stage, dgram,
                                                        accepted_at)
                return result
            return False
        key = (seg.dst_port, dgram.src_ip, seg.src_port)
        if key in self.conn_table:
            # Duplicate SYN racing the active path: re-deliver there.
            path = self.conn_table[key]
            if not path.destroyed:
                path.enqueue(PathWork(path.stage_of(self.name), FORWARD,
                                      dgram))
            return True
        if self.syncookies:
            # Stateless fallback: answer with a cookie SYN-ACK and
            # allocate nothing — no path, no TCB, no half-open slot.  A
            # spoofed SYN therefore costs us only this reply; a genuine
            # client completes the handshake and the connection is
            # reconstructed from its ACK in :meth:`_cookie_accept`.
            cookie = self.syn_cookie(dgram.src_ip, seg.src_port,
                                     seg.dst_port)
            synack = TCPSegment(seg.dst_port, seg.src_port, seq=cookie,
                                ack=seg.seq + 1, flags=FLAG_SYN | FLAG_ACK)
            self.syncookies_sent += 1
            yield Cycles(PURE_ACK_COST + self.acct(1))
            yield from stage.send_backward((dgram.src_ip, synack))
            return True
        cap = stage.path.policy_state.get("syn_cap")
        if cap is not None \
                and stage.path.policy_state.get("syn_recvd", 0) >= cap:
            return False
        self._conn_seq += 1
        attrs = Attributes(listen=False,
                           peer_ip=dgram.src_ip,
                           peer_port=seg.src_port,
                           local_port=seg.dst_port,
                           syn=seg,
                           accepted_at=accepted_at,
                           parent=stage.path,
                           document_root=stage.path.attributes.get(
                               "document_root"))
        try:
            path = yield from self.path_manager.path_create(
                attrs, start_module=self.name,
                name=f"conn-{self._conn_seq}")
        except PathCreateError:
            return False
        # Flush the SYN-ACK from the new path's own thread, so its cycles
        # are charged to the connection.
        tcp_stage = path.stage_of(self.name)
        path.enqueue(PathWork(tcp_stage, BACKWARD,
                              TcpFlush(tcp_stage.state.pop("pending"))))
        return True

    def _cookie_accept(self, stage: Stage, dgram: IPDatagram,
                       accepted_at: int) -> Generator:
        """A handshake-completing ACK for a stateless cookie SYN-ACK:
        validate the cookie and only now create the connection path."""
        seg: TCPSegment = dgram.payload
        cookie = self.syn_cookie(dgram.src_ip, seg.src_port, seg.dst_port)
        if not self._cookie_armed or seg.ack - 1 != cookie:
            return False
        key = (seg.dst_port, dgram.src_ip, seg.src_port)
        if key in self.conn_table:
            # Duplicate ACK racing the reconstructed path: re-deliver.
            path = self.conn_table[key]
            if not path.destroyed:
                path.enqueue(PathWork(path.stage_of(self.name), FORWARD,
                                      dgram))
            return True
        self._conn_seq += 1
        attrs = Attributes(listen=False,
                           peer_ip=dgram.src_ip,
                           peer_port=seg.src_port,
                           local_port=seg.dst_port,
                           cookie=cookie,
                           cookie_seg=seg,
                           accepted_at=accepted_at,
                           document_root=stage.path.attributes.get(
                               "document_root"))
        try:
            path = yield from self.path_manager.path_create(
                attrs, start_module=self.name,
                name=f"conn-{self._conn_seq}")
        except PathCreateError:
            return False
        self.syncookies_accepted += 1
        if seg.payload_len:
            # A request piggybacked on the ACK: process it on the new
            # path's own thread so its cycles are charged there.
            tcp_stage = path.stage_of(self.name)
            path.enqueue(PathWork(tcp_stage, FORWARD, dgram))
        return True

    def _active_forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        engine: TCPEngine = stage.state["engine"]
        seg: TCPSegment = dgram.payload
        if seg.payload_len or seg.flags & (FLAG_SYN | FLAG_FIN):
            cost = self.costs.tcp_rx_segment + self.acct(1)
            if seg.flags & (FLAG_SYN | FLAG_FIN):
                cost += self.costs.tcp_handshake_step
        else:
            cost = self.costs.tcp_rx_ack + self.acct(1)
        yield Cycles(cost)
        actions = engine.on_segment(seg)
        yield from self._apply(stage, actions)
        return True

    # ------------------------------------------------------------------
    # Path processing: outbound
    # ------------------------------------------------------------------
    def backward(self, stage: Stage, msg: Any) -> Generator:
        engine: TCPEngine = stage.state["engine"]
        if isinstance(msg, TcpFlush):
            if msg.actions is not None:
                yield from self._apply(stage, msg.actions)
            return True
        if isinstance(msg, AppSend):
            actions = engine.send(msg.nbytes, app_data=msg.app_data,
                                  fin=msg.fin)
            yield from self._apply(stage, actions)
            return True
        raise TypeError(f"tcp.backward: unexpected message {msg!r}")

    # ------------------------------------------------------------------
    # Applying engine actions under path semantics
    # ------------------------------------------------------------------
    def _apply(self, stage: Stage, actions: TCPActions) -> Generator:
        engine: TCPEngine = stage.state["engine"]
        path = stage.path

        if actions.established and not stage.state.get("established_seen"):
            stage.state["established_seen"] = True
            self.connections_established += 1
            self._uncount(stage)  # no longer half-open

        # Deliveries go up toward HTTP.
        for nbytes, app_data in actions.deliveries:
            yield from stage.send_forward(HTTPData(nbytes, app_data))
        if actions.fin_received:
            yield from stage.send_forward(HTTPData(0, None, eof=True))

        # Transmissions go down toward IP/ETH.
        for seg in actions.segments:
            if seg.payload_len:
                yield Cycles(self.costs.tcp_tx_segment
                             + self.costs.copy_cost(seg.payload_len)
                             + self.acct(1))
            else:
                yield Cycles(PURE_ACK_COST + self.acct(1))
            yield from stage.send_backward((stage.state["peer_ip"], seg))
            if seg.payload_len and not path.destroyed:
                # Keep bursts short: non-preemptive threads must yield
                # between data segments (see the runaway limit).
                yield YieldCPU()
            if path.destroyed:
                return

        self._update_timers(stage, actions)

        if actions.closed:
            self._on_closed(stage, aborted=actions.aborted)

    def _update_timers(self, stage: Stage, actions: TCPActions) -> None:
        timers = stage.state["timers"]
        if actions.cancel_rto:
            self._cancel_timer(timers, "rto")
        if actions.set_rto is not None:
            self._cancel_timer(timers, "rto")
            timers["rto"] = self._make_timer(stage, "rto", actions.set_rto,
                                             lambda e: e.on_rto())
        if actions.cancel_delack:
            self._cancel_timer(timers, "delack")
        if actions.set_delack is not None:
            self._cancel_timer(timers, "delack")
            timers["delack"] = self._make_timer(stage, "delack",
                                                actions.set_delack,
                                                lambda e: e.on_delack())

    def _cancel_timer(self, timers: Dict, name: str) -> None:
        ev = timers.pop(name, None)
        if ev is not None:
            ev.cancel()

    def _make_timer(self, stage: Stage, name: str, delay: int, fire):
        engine = stage.state["engine"]
        path = stage.path

        def body() -> Generator:
            stage.state["timers"].pop(name, None)
            yield Cycles(self.costs.tcp_timeout_per_conn + self.acct(1))
            actions = fire(engine)
            yield from self._apply(stage, actions)

        return self.kernel.create_event(path, body, delay_ticks=delay,
                                        name=f"{path.name}-{name}")

    def _on_closed(self, stage: Stage, aborted: bool) -> None:
        path = stage.path
        if stage.state.get("closed_seen"):
            return
        stage.state["closed_seen"] = True
        if aborted:
            self.connections_aborted += 1
        else:
            self.connections_closed += 1
            self.conn_windows.append(
                (stage.state.get("created_at", 0), self.kernel.sim.now))
        self._uncount(stage)
        if not path.destroyed and self.path_manager is not None:
            self.path_manager.schedule_destroy(path)

    def destroy_stage(self, stage: Stage) -> None:
        timers = stage.state.get("timers")
        if timers:
            for name in list(timers):
                self._cancel_timer(timers, name)
