"""The ARP module.

ARP keeps the IP-to-MAC table in its module state (accessible to paths that
cross the module, per the paper's module-state rule) and answers ARP
requests over its own path — the [ETH, ARP] path it creates at boot.  The
testbed pre-seeds the table to avoid a boot-time broadcast storm, but
dynamic resolution (request broadcast, reply handling, table learning) is
implemented and tested.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.sim.cpu import Cycles
from repro.core.attributes import Attributes
from repro.core.demux import DemuxResult
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.modules.eth import OutFrame
from repro.net.addressing import BROADCAST, MacAddr
from repro.net.packet import ETHERTYPE_ARP, ArpPacket

ARP_PROCESS_COST = 1_200


class ArpModule(Module):
    """Address Resolution Protocol."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd, local_ip: str = ""):
        super().__init__(kernel, name, pd)
        self.local_ip = local_ip
        self.table: Dict[str, MacAddr] = {}
        self.arp_path = None
        self.path_manager = None  # injected by the server assembly
        self.requests_answered = 0
        self.replies_learned = 0

    def seed(self, ip: str, mac: MacAddr) -> None:
        """Statically pre-populate the table (testbed convenience)."""
        self.table[ip] = mac

    def lookup(self, ip: str) -> Optional[MacAddr]:
        return self.table.get(ip)

    # ------------------------------------------------------------------
    # Boot: create the ARP path
    # ------------------------------------------------------------------
    def init_module(self) -> Generator:
        if self.path_manager is None:
            return
        attrs = Attributes(arp=True)
        self.arp_path = yield from self.path_manager.path_create(
            attrs, start_module=self.name, name="arp-path")

    def open(self, path, attrs, origin):
        if attrs.get("arp"):
            stage = self.make_stage(path)
            extend = ["eth"] if origin is None else []
            return OpenResult(stage, extend)
        return None

    # ------------------------------------------------------------------
    # Demux: all ARP traffic goes to the ARP path
    # ------------------------------------------------------------------
    def demux(self, pkt: ArpPacket) -> DemuxResult:
        if self.arp_path is None or self.arp_path.destroyed:
            return DemuxResult.drop("arp-no-path")
        return DemuxResult.to_path(self.arp_path)

    # ------------------------------------------------------------------
    # Path processing
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, pkt: ArpPacket) -> Generator:
        yield Cycles(ARP_PROCESS_COST + self.acct(1))
        if pkt.op == ArpPacket.REQUEST and pkt.target_ip == self.local_ip:
            self.requests_answered += 1
            self.table[pkt.sender_ip] = pkt.sender_mac
            reply = ArpPacket(ArpPacket.REPLY,
                              sender_ip=self.local_ip,
                              sender_mac=None,  # filled by ETH at tx
                              target_ip=pkt.sender_ip,
                              target_mac=pkt.sender_mac)
            yield from stage.send_backward(
                OutFrame(pkt.sender_mac, ETHERTYPE_ARP, reply))
            return True
        if pkt.op == ArpPacket.REPLY:
            self.replies_learned += 1
            self.table[pkt.sender_ip] = pkt.sender_mac
            return True
        return False

    def request(self, target_ip: str) -> Generator:
        """Broadcast a resolution request (generator: runs on a thread)."""
        yield Cycles(ARP_PROCESS_COST + self.acct(1))
        stage = self.arp_path.stage_of(self.name)
        pkt = ArpPacket(ArpPacket.REQUEST, sender_ip=self.local_ip,
                        sender_mac=None, target_ip=target_ip)
        yield from stage.send_backward(
            OutFrame(BROADCAST, ETHERTYPE_ARP, pkt))
