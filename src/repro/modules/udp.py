"""The UDP module.

UDP is one of the paper's canonical module examples ("modules that
implement networking protocols, such as HTTP, IP, UDP, or TCP").  It also
exercises a path shape the web server does not: a *bound datagram path*
that exists for as long as an application holds the port, with every
datagram to that port charged to the same path — the natural owner for,
say, a DNS or NTP service's resource consumption.

Applications bind a port with a handler; binding creates the path
([ETH, IP, UDP]); datagrams demux by destination port.  Handlers are
generators running on the path's thread pool and may reply through the
same stage (the reply is charged to the same path).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.sim.cpu import Cycles
from repro.core.attributes import Attributes
from repro.core.demux import DemuxResult
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.net.packet import IPDatagram

#: IP protocol number for UDP.
IPPROTO_UDP = 17
UDP_HEADER = 8
UDP_RX_COST = 4_000
UDP_TX_COST = 4_500


class UDPDatagram:
    """A UDP datagram: ports plus simulated payload."""

    __slots__ = ("src_port", "dst_port", "payload_len", "app_data")

    def __init__(self, src_port: int, dst_port: int, payload_len: int,
                 app_data: Any = None):
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload_len = payload_len
        self.app_data = app_data

    @property
    def size(self) -> int:
        return UDP_HEADER + self.payload_len

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UDP {self.src_port}->{self.dst_port} len={self.payload_len}>"


class UdpModule(Module):
    """Datagram service over the path architecture."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd, local_ip: str):
        super().__init__(kernel, name, pd)
        self.local_ip = local_ip
        self.path_manager = None  # injected by the server assembly
        #: port -> bound path
        self.bindings: Dict[int, object] = {}
        #: port -> handler(stage, src_ip, dgram) generator function
        self.handlers: Dict[int, Callable] = {}
        self.rx_datagrams = 0
        self.tx_datagrams = 0
        self.drops = 0

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: Callable,
             name: str = "") -> Generator:
        """Thread-body helper: bind ``port`` and create its path."""
        if port in self.bindings:
            raise ValueError(f"UDP port {port} already bound")
        self.handlers[port] = handler
        path = yield from self.path_manager.path_create(
            Attributes(udp=True, local_port=port),
            start_module=self.name,
            name=name or f"udp-{port}")
        self.bindings[port] = path
        path.on_destroy(lambda p, port=port: self._unbind(port))
        return path

    def _unbind(self, port: int) -> None:
        self.bindings.pop(port, None)
        self.handlers.pop(port, None)

    def open(self, path, attrs, origin):
        if not attrs.get("udp"):
            return None
        stage = self.make_stage(path)
        stage.state["port"] = attrs.require("local_port")
        extend = ["ip"] if origin is None else []
        return OpenResult(stage, extend)

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------
    def demux(self, dgram: IPDatagram) -> DemuxResult:
        udp: UDPDatagram = dgram.payload
        path = self.bindings.get(udp.dst_port)
        if path is None or path.destroyed:
            return DemuxResult.drop("udp-no-binding")
        return DemuxResult.to_path(path)

    # ------------------------------------------------------------------
    # Path processing
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        udp: UDPDatagram = dgram.payload
        yield Cycles(UDP_RX_COST + self.acct(1))
        handler = self.handlers.get(udp.dst_port)
        if handler is None:
            self.drops += 1
            return False
        self.rx_datagrams += 1
        result = yield from handler(stage, dgram.src_ip, udp)
        return result

    def send(self, stage: Stage, dst_ip: str, src_port: int,
             dst_port: int, payload_len: int,
             app_data: Any = None) -> Generator:
        """Transmit a datagram out of the bound path."""
        yield Cycles(UDP_TX_COST + self.costs.copy_cost(payload_len)
                     + self.acct(1))
        self.tx_datagrams += 1
        out = UDPDatagram(src_port, dst_port, payload_len, app_data)
        result = yield from stage.send_backward((dst_ip, out, IPPROTO_UDP))
        return result


def echo_handler(udp_module: UdpModule):
    """A ready-made echo service handler (for tests and examples)."""

    def handler(stage, src_ip, dgram) -> Generator:
        result = yield from udp_module.send(
            stage, src_ip, dgram.dst_port, dgram.src_port,
            dgram.payload_len, app_data=dgram.app_data)
        return result

    return handler
