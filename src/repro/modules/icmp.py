"""The ICMP module (echo request/reply).

The paper uses ICMP echo as its example of Escort's thread/stack design:
"a thread used to deliver an ICMP echo request datagram is also used to
send the ICMP response, thereby crossing the protection domain containing
IP twice" — which is why path threads keep one stack per crossable domain
instead of allocating a fresh stack per crossing (section 3.2).

The module creates one ICMP path ([ETH, IP, ICMP]) at boot; echo requests
demux to it, and the same path thread that carries the request up carries
the reply back down.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.cpu import Cycles
from repro.core.attributes import Attributes
from repro.core.demux import DemuxResult
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.net.packet import IPDatagram

ICMP_PROCESS_COST = 2_000

#: IP protocol number for ICMP.
IPPROTO_ICMP = 1


class IcmpEcho:
    """An echo request or reply."""

    __slots__ = ("kind", "ident", "seq", "payload_len")

    REQUEST = 8
    REPLY = 0

    def __init__(self, kind: int, ident: int, seq: int,
                 payload_len: int = 56):
        self.kind = kind
        self.ident = ident
        self.seq = seq
        self.payload_len = payload_len

    @property
    def size(self) -> int:
        return 8 + self.payload_len

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "REQ" if self.kind == self.REQUEST else "REPLY"
        return f"<ICMP {kind} id={self.ident} seq={self.seq}>"


class IcmpModule(Module):
    """Echo responder over the path architecture."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd):
        super().__init__(kernel, name, pd)
        self.path_manager = None  # injected by the server assembly
        self.icmp_path = None
        self.requests_answered = 0
        self.replies_seen = 0

    def init_module(self) -> Generator:
        if self.path_manager is None:
            return
        self.icmp_path = yield from self.path_manager.path_create(
            Attributes(icmp=True), start_module=self.name,
            name="icmp-path")

    def open(self, path, attrs, origin):
        if attrs.get("icmp"):
            stage = self.make_stage(path)
            extend = ["ip"] if origin is None else []
            return OpenResult(stage, extend)
        return None

    # ------------------------------------------------------------------
    def demux(self, dgram: IPDatagram) -> DemuxResult:
        if self.icmp_path is None or self.icmp_path.destroyed:
            return DemuxResult.drop("icmp-no-path")
        return DemuxResult.to_path(self.icmp_path)

    # ------------------------------------------------------------------
    def forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        """The paper's double-crossing: this thread entered through IP and
        now sends the reply back through IP on the same stacks."""
        echo: IcmpEcho = dgram.payload
        yield Cycles(ICMP_PROCESS_COST + self.acct(1))
        if echo.kind == IcmpEcho.REQUEST:
            self.requests_answered += 1
            reply = IcmpEcho(IcmpEcho.REPLY, echo.ident, echo.seq,
                             echo.payload_len)
            yield from stage.send_backward(
                (dgram.src_ip, reply, IPPROTO_ICMP))
            return True
        self.replies_seen += 1
        return True
