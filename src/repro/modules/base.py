"""The module abstraction.

A Scout module contributes five things:

* ``init_module`` — run once at boot, in the module's protection domain,
  to set up global state and create any initial paths;
* ``open`` — called by ``pathCreate`` to contribute a stage to a new path
  and name the adjacent modules the path extends to;
* ``demux`` — the side-effect-free classifier for incoming data;
* ``forward`` / ``backward`` — per-stage data processing, written as
  generators that yield :class:`~repro.sim.cpu.Cycles` for the work they
  do (this is where the cost model meets the protocol code);
* ``destroy_stage`` — cleanup on graceful ``pathDestroy``.

Modules are deliberately ignorant of protection-domain placement: whether a
boundary sits between two modules is a configuration decision, and the
crossing costs are inserted by the Stage helpers, "allowing the system
builder to draw protection boundaries between modules as needed".
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional, Tuple, TYPE_CHECKING

from repro.core.demux import DemuxResult
from repro.core.path import Path, Stage
from repro.kernel.errors import InvalidOperationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.attributes import Attributes
    from repro.kernel.domain import ProtectionDomain
    from repro.kernel.kernel import Kernel


class OpenResult:
    """What a module's ``open`` returns: its stage and where to extend."""

    __slots__ = ("stage", "extend_to")

    def __init__(self, stage: Stage, extend_to: Iterable[str] = ()):
        self.stage = stage
        self.extend_to = tuple(extend_to)


class Module:
    """Base class for all Scout modules."""

    #: Service interfaces this module speaks; edges require a common one.
    interfaces = frozenset({"aio"})

    def __init__(self, kernel: "Kernel", name: str,
                 pd: "ProtectionDomain"):
        self.kernel = kernel
        self.name = name
        self.pd = pd
        pd.module_names.append(name)
        self.graph = None  # set by ModuleGraph.add
        # The cost table is immutable for a kernel's lifetime; binding it
        # here turns the per-packet ``self.costs`` chains in forward/
        # backward/demux into a single attribute load.
        self.costs = kernel.costs

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def acct(self, ops: int = 1) -> int:
        return self.kernel.acct(ops)

    def make_stage(self, path: Path) -> Stage:
        return Stage(self, path)

    def neighbor(self, name: str) -> "Module":
        if self.graph is None:
            raise InvalidOperationError(f"{self.name} not in a graph")
        return self.graph.find(name)

    # ------------------------------------------------------------------
    # Lifecycle hooks (overridden by concrete modules)
    # ------------------------------------------------------------------
    def init_module(self) -> Generator:
        """Boot-time initialization; runs as a thread in this module's
        domain.  Default: nothing."""
        return
        yield  # pragma: no cover - makes this a generator

    def open(self, path: Path, attrs: "Attributes",
             origin: Optional["Module"]) -> Optional[OpenResult]:
        """Contribute a stage to a path being created.

        Default: a plain stage extending toward every graph neighbour not
        yet visited on the side away from ``origin``.  Concrete modules
        override to specialize (listeners, connections, invariants).
        Returning ``None`` rejects the path.
        """
        stage = self.make_stage(path)
        extend = [n for n in self.graph.neighbors(self.name)
                  if origin is None or n != origin.name]
        return OpenResult(stage, extend)

    def attach(self, stage: Stage) -> None:
        """Called after the path is fully assembled and ordered."""

    def demux(self, view: Any) -> DemuxResult:
        """Classify incoming data.  Default: reject."""
        return DemuxResult.drop(f"{self.name}: no demux")

    def forward(self, stage: Stage, msg: Any) -> Generator:
        """Process data moving toward the disk end.  Default: pass along."""
        result = yield from stage.send_forward(msg)
        return result

    def backward(self, stage: Stage, msg: Any) -> Generator:
        """Process data moving toward the network end.  Default: pass."""
        result = yield from stage.send_backward(msg)
        return result

    def handle_call(self, stage: Stage, request: Any) -> Generator:
        """Serve a synchronous request from an adjacent stage."""
        raise InvalidOperationError(
            f"{self.name} does not serve calls")
        yield  # pragma: no cover

    def destroy_stage(self, stage: Stage) -> None:
        """Graceful per-stage cleanup (pathDestroy only)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} pd={self.pd.name}>"
