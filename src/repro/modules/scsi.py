"""The SCSI disk driver module.

Models the testbed's disk: a fixed per-request cost, rotational/seek
latency, and a transfer time proportional to the read size.  Requests
serialize on the (single) disk arm through a semaphore owned by the
driver's domain.  After warmup the FS cache absorbs nearly all reads, so
the disk matters mostly for the first touch of each document — which is
also true of the paper's testbed.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.cpu import Cycles, Sleep
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult


class ScsiRead:
    """Read ``nbytes`` from the disk."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        if nbytes <= 0:
            raise ValueError("read size must be positive")
        self.nbytes = nbytes


class ScsiModule(Module):
    """Driver for the simulated SCSI disk."""

    interfaces = frozenset({"aio", "file"})

    def __init__(self, kernel, name, pd):
        super().__init__(kernel, name, pd)
        self._arm = None  # semaphore, created at boot
        self.reads = 0
        self.bytes_read = 0

    def init_module(self) -> Generator:
        self._arm = self.kernel.create_semaphore(self.pd, count=1,
                                                 name="disk-arm")
        return
        yield  # pragma: no cover

    def open(self, path, attrs, origin):
        # SCSI is the end of the chain; contribute a stage, extend nowhere.
        return OpenResult(self.make_stage(path), ())

    def handle_call(self, stage: Stage, request: ScsiRead) -> Generator:
        """Perform a disk read; returns True when the data is in memory."""
        yield Cycles(self.costs.scsi_request + self.acct(1))
        if self._arm is not None:
            ok = yield from self._arm.acquire()
            if not ok:
                return False
        try:
            self.reads += 1
            self.bytes_read += request.nbytes
            yield Sleep(self.costs.disk_latency_ticks
                        + self.costs.disk_transfer_ticks(request.nbytes))
        finally:
            if self._arm is not None and not self._arm.destroyed:
                self._arm.release()
        return True
