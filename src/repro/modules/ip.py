"""The IP module.

IP's routing table lives in its module state, allocated from its protection
domain's heap — it is the paper's canonical example of a resource that
"cannot be directly associated with any individual IP flow" and so is
charged to the domain running the module.  Inbound, IP validates the
destination and demuxes to the transport; outbound, it routes, resolves the
next-hop MAC through ARP, and frames the datagram for ETH.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.sim.cpu import Cycles
from repro.core.demux import DemuxResult
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.modules.eth import OutFrame
from repro.net.addressing import Subnet
from repro.net.packet import ETHERTYPE_IP, IPDatagram, IPPROTO_TCP

ROUTE_ENTRY_BYTES = 64


class IpModule(Module):
    """IPv4 (no fragmentation: MSS < MTU throughout the testbed)."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd, local_ip: str):
        super().__init__(kernel, name, pd)
        self.local_ip = local_ip
        #: (subnet, on_link) routing entries; the heap allocation below
        #: charges the table to this module's protection domain.
        self.routes: List[Tuple[Subnet, bool]] = []
        self._route_allocs = []
        self.rx_datagrams = 0
        self.tx_datagrams = 0
        self.drops = 0
        # Per-protocol dispatch table (proto -> transport module name or an
        # interned drop result); same pattern as EthModule's ethertype
        # table — graph size versions the cache.
        self._demux_table: Dict[int, object] = {}
        self._demux_gen = -1
        self._fwd = DemuxResult.forward("", None)

    def init_module(self) -> Generator:
        # Everything in the testbed is on-link; a default route models the
        # rest of the Internet behind the hub.
        self.add_route(Subnet("0.0.0.0/0"), on_link=True)
        return
        yield  # pragma: no cover

    def add_route(self, subnet: Subnet, on_link: bool = True) -> None:
        """Install a route; the entry is charged to IP's domain heap."""
        alloc = self.pd.heap_alloc(ROUTE_ENTRY_BYTES, label=f"route {subnet.cidr}",
                                   allocator=self.kernel.allocator)
        self._route_allocs.append(alloc)
        self.routes.append((subnet, on_link))

    def route(self, dst_ip: str) -> Optional[Tuple[Subnet, bool]]:
        best = None
        for subnet, on_link in self.routes:
            if subnet.contains(dst_ip):
                if best is None or subnet.prefix_len > best[0].prefix_len:
                    best = (subnet, on_link)
        return best

    # ------------------------------------------------------------------
    # Path membership
    # ------------------------------------------------------------------
    def open(self, path, attrs, origin):
        # Paths always reach IP from a transport (or from IP's own side
        # protocols) and extend toward the device — never back up into a
        # different transport.
        from repro.modules.base import OpenResult
        stage = self.make_stage(path)
        extend = ["eth"] if (origin is None or origin.name != "eth") \
            and "eth" in self.graph else []
        return OpenResult(stage, extend)

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------
    def demux(self, dgram: IPDatagram) -> DemuxResult:
        if dgram.dst_ip != self.local_ip:
            return DemuxResult.drop("ip-not-local")
        if self._demux_gen != len(self.graph._modules):
            self._rebuild_demux_table()
        target = self._demux_table.get(dgram.proto)
        if target.__class__ is str:
            return self._fwd.refit(target, dgram)
        if target is None:
            return DemuxResult.drop("ip-proto")
        return target  # interned drop

    def _rebuild_demux_table(self) -> None:
        graph = self.graph
        drop = DemuxResult.drop("ip-proto")
        self._demux_table = {
            IPPROTO_TCP: "tcp" if "tcp" in graph else drop,
            1: "icmp" if "icmp" in graph else drop,   # IPPROTO_ICMP
            17: "udp" if "udp" in graph else drop,    # IPPROTO_UDP
        }
        self._demux_gen = len(graph._modules)

    # ------------------------------------------------------------------
    # Path processing
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        yield Cycles(self.costs.ip_rx + self.acct(1))
        if dgram.dst_ip != self.local_ip:
            self.drops += 1
            return False
        self.rx_datagrams += 1
        result = yield from stage.send_forward(dgram)
        return result

    def backward(self, stage: Stage, msg: Tuple) -> Generator:
        """Outbound: ``(dst_ip, payload)`` or ``(dst_ip, payload, proto)``
        — TCP by default, ICMP and others by explicit protocol number."""
        if len(msg) == 3:
            dst_ip, segment, proto = msg
        else:
            dst_ip, segment = msg
            proto = IPPROTO_TCP
        yield Cycles(self.costs.ip_tx + self.acct(1))
        if self.route(dst_ip) is None:
            self.drops += 1
            return False
        arp = self.graph.find("arp") if "arp" in self.graph else None
        dst_mac = arp.lookup(dst_ip) if arp is not None else None
        if dst_mac is None:
            self.drops += 1
            return False
        self.tx_datagrams += 1
        dgram = IPDatagram(self.local_ip, dst_ip, proto, segment)
        result = yield from stage.send_backward(
            OutFrame(dst_mac, ETHERTYPE_IP, dgram))
        return result

    def destroy_stage(self, stage: Stage) -> None:
        pass
