"""The IP module.

IP's routing table lives in its module state, allocated from its protection
domain's heap — it is the paper's canonical example of a resource that
"cannot be directly associated with any individual IP flow" and so is
charged to the domain running the module.  Inbound, IP validates the
destination and demuxes to the transport; outbound, it routes, resolves the
next-hop MAC through ARP, and frames the datagram for ETH.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.sim.cpu import Cycles
from repro.core.demux import DemuxResult
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.modules.eth import OutFrame
from repro.net.addressing import Subnet
from repro.net.packet import ETHERTYPE_IP, IPDatagram, IPPROTO_TCP

ROUTE_ENTRY_BYTES = 64


class IpModule(Module):
    """IPv4 (no fragmentation: MSS < MTU throughout the testbed)."""

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd, local_ip: str):
        super().__init__(kernel, name, pd)
        self.local_ip = local_ip
        #: (subnet, on_link) routing entries; the heap allocation below
        #: charges the table to this module's protection domain.
        self.routes: List[Tuple[Subnet, bool]] = []
        self._route_allocs = []
        self.rx_datagrams = 0
        self.tx_datagrams = 0
        self.drops = 0

    def init_module(self) -> Generator:
        # Everything in the testbed is on-link; a default route models the
        # rest of the Internet behind the hub.
        self.add_route(Subnet("0.0.0.0/0"), on_link=True)
        return
        yield  # pragma: no cover

    def add_route(self, subnet: Subnet, on_link: bool = True) -> None:
        """Install a route; the entry is charged to IP's domain heap."""
        alloc = self.pd.heap_alloc(ROUTE_ENTRY_BYTES, label=f"route {subnet.cidr}",
                                   allocator=self.kernel.allocator)
        self._route_allocs.append(alloc)
        self.routes.append((subnet, on_link))

    def route(self, dst_ip: str) -> Optional[Tuple[Subnet, bool]]:
        best = None
        for subnet, on_link in self.routes:
            if subnet.contains(dst_ip):
                if best is None or subnet.prefix_len > best[0].prefix_len:
                    best = (subnet, on_link)
        return best

    # ------------------------------------------------------------------
    # Path membership
    # ------------------------------------------------------------------
    def open(self, path, attrs, origin):
        # Paths always reach IP from a transport (or from IP's own side
        # protocols) and extend toward the device — never back up into a
        # different transport.
        from repro.modules.base import OpenResult
        stage = self.make_stage(path)
        extend = ["eth"] if (origin is None or origin.name != "eth") \
            and "eth" in self.graph else []
        return OpenResult(stage, extend)

    # ------------------------------------------------------------------
    # Demux
    # ------------------------------------------------------------------
    def demux(self, dgram: IPDatagram) -> DemuxResult:
        if dgram.dst_ip != self.local_ip:
            return DemuxResult.drop("ip-not-local")
        if dgram.proto == IPPROTO_TCP and "tcp" in self.graph:
            return DemuxResult.forward("tcp", dgram)
        if dgram.proto == 1 and "icmp" in self.graph:  # IPPROTO_ICMP
            return DemuxResult.forward("icmp", dgram)
        if dgram.proto == 17 and "udp" in self.graph:  # IPPROTO_UDP
            return DemuxResult.forward("udp", dgram)
        return DemuxResult.drop("ip-proto")

    # ------------------------------------------------------------------
    # Path processing
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, dgram: IPDatagram) -> Generator:
        yield Cycles(self.costs.ip_rx + self.acct(1))
        if dgram.dst_ip != self.local_ip:
            self.drops += 1
            return False
        self.rx_datagrams += 1
        result = yield from stage.send_forward(dgram)
        return result

    def backward(self, stage: Stage, msg: Tuple) -> Generator:
        """Outbound: ``(dst_ip, payload)`` or ``(dst_ip, payload, proto)``
        — TCP by default, ICMP and others by explicit protocol number."""
        if len(msg) == 3:
            dst_ip, segment, proto = msg
        else:
            dst_ip, segment = msg
            proto = IPPROTO_TCP
        yield Cycles(self.costs.ip_tx + self.acct(1))
        if self.route(dst_ip) is None:
            self.drops += 1
            return False
        arp = self.graph.find("arp") if "arp" in self.graph else None
        dst_mac = arp.lookup(dst_ip) if arp is not None else None
        if dst_mac is None:
            self.drops += 1
            return False
        self.tx_datagrams += 1
        dgram = IPDatagram(self.local_ip, dst_ip, proto, segment)
        result = yield from stage.send_backward(
            OutFrame(dst_mac, ETHERTYPE_IP, dgram))
        return result

    def destroy_stage(self, stage: Stage) -> None:
        pass
