"""Filter modules — policy enforcement level 4.

"Syntactically, filters are the same as any other module.  However, their
purpose is to enforce policy rather than to provide functionality."  A
filter sits between two modules in the graph and restricts the interface
that flows through it; the paper's example is a filter between TCP and IP
that narrows "receive packets" to "receive packets to port 80".

Filters work in both planes: at *demux* time (rejecting packets before a
path is even identified) and in the *data* plane (dropping non-conforming
messages on established paths).  The same vanilla TCP/IP modules work with
or without filters around them.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Set

from repro.sim.cpu import Cycles
from repro.core.demux import DemuxResult
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.net.packet import IPDatagram, TCPSegment

FILTER_COST = 700


class FilterModule(Module):
    """Base filter: transparent pass-through with an inspection hook.

    Subclasses override :meth:`permit` (and optionally
    :meth:`permit_backward`); everything else — stage plumbing, demux
    chaining, drop counting — is shared.
    """

    interfaces = frozenset({"aio"})

    def __init__(self, kernel, name, pd):
        super().__init__(kernel, name, pd)
        self.dropped_forward = 0
        self.dropped_backward = 0
        self.dropped_demux = 0

    # -- policy hooks ----------------------------------------------------
    def permit(self, msg) -> bool:
        """Inspect inbound data; False drops it."""
        return True

    def permit_backward(self, msg) -> bool:
        """Inspect outbound data; False drops it."""
        return True

    # -- module plumbing ---------------------------------------------------
    def open(self, path, attrs, origin):
        stage = self.make_stage(path)
        extend = [n for n in self.graph.neighbors(self.name)
                  if origin is None or n != origin.name]
        return OpenResult(stage, extend)

    def demux(self, view) -> DemuxResult:
        if not self.permit(view):
            self.dropped_demux += 1
            return DemuxResult.drop(f"{self.name}-filter")
        nxt = self._next_inward()
        if nxt is None:
            return DemuxResult.drop(f"{self.name}-no-next")
        return DemuxResult.forward(nxt, view)

    def _next_inward(self) -> Optional[str]:
        """The neighbour further from the network (higher position)."""
        mine = self.graph.position(self.name)
        candidates = [n for n in self.graph.neighbors(self.name)
                      if self.graph.position(n) > mine]
        return candidates[0] if candidates else None

    def forward(self, stage: Stage, msg) -> Generator:
        yield Cycles(FILTER_COST + self.acct(1))
        if not self.permit(msg):
            self.dropped_forward += 1
            return False
        result = yield from stage.send_forward(msg)
        return result

    def backward(self, stage: Stage, msg) -> Generator:
        yield Cycles(FILTER_COST + self.acct(1))
        if not self.permit_backward(msg):
            self.dropped_backward += 1
            return False
        result = yield from stage.send_backward(msg)
        return result

    def handle_call(self, stage: Stage, request) -> Generator:
        """Filters pass synchronous calls through unchanged."""
        result = yield from stage.call_forward(request)
        return result


class PortFilter(FilterModule):
    """The paper's example: restrict TCP traffic to a set of ports.

    Placed between IP and TCP, it narrows the interface from "receive
    packets" to "receive packets to port 80" (or whichever ports are
    allowed).
    """

    def __init__(self, kernel, name, pd, allowed_ports: Iterable[int]):
        super().__init__(kernel, name, pd)
        self.allowed_ports: Set[int] = set(allowed_ports)

    def _segment_of(self, msg) -> Optional[TCPSegment]:
        if isinstance(msg, IPDatagram) and isinstance(msg.payload, TCPSegment):
            return msg.payload
        if isinstance(msg, TCPSegment):
            return msg
        return None

    def permit(self, msg) -> bool:
        seg = self._segment_of(msg)
        if seg is None:
            return True
        return seg.dst_port in self.allowed_ports

    def permit_backward(self, msg) -> bool:
        # Outbound: (dst_ip, segment) tuples from TCP.
        if isinstance(msg, tuple) and len(msg) == 2 \
                and isinstance(msg[1], TCPSegment):
            return msg[1].src_port in self.allowed_ports
        return True


class RateLimitFilter(FilterModule):
    """Token-bucket filter: at most ``rate`` messages per second.

    An example of the "very small resource allocation" the paper suggests
    for previously-misbehaving clients (section 4.4.4).
    """

    def __init__(self, kernel, name, pd, rate_per_second: float,
                 burst: int = 10):
        super().__init__(kernel, name, pd)
        if rate_per_second <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate_per_second
        self.burst = burst
        self._tokens = float(burst)
        self._last_refill = 0

    def permit(self, msg) -> bool:
        from repro.sim.clock import TICKS_PER_SECOND
        now = self.kernel.sim.now
        elapsed = (now - self._last_refill) / TICKS_PER_SECOND
        self._last_refill = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False
