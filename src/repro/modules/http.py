"""The HTTP module: the web server itself.

At boot, HTTP creates the *passive* (listening) paths — by default one for
the whole Internet, or one per subnet when the SYN-flood policy configures
a trusted/untrusted split.  Per connection it parses the request on the
connection's *active* path and serves it:

* static documents through the file-access interface (HTTP→FS→SCSI along
  the same path — Figure 2's full chain);
* ``/cgi-bin/<name>`` by spawning a handler thread owned by the path, which
  is what makes a runaway CGI script killable by the 2 ms policy;
* ``/stream`` as a paced QoS stream (the 1 MBps TCP stream of section
  4.4.2), with the pacing thread owned by the path so the proportional
  share scheduler can guarantee it CPU.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.sim.clock import millis_to_ticks, seconds_to_ticks
from repro.sim.cpu import Cycles, Sleep
from repro.core.attributes import Attributes
from repro.core.path import Stage
from repro.modules.base import Module, OpenResult
from repro.modules.fs import FileRead
from repro.modules.tcp import AppSend, HTTPData
from repro.net.addressing import Subnet

RESPONSE_HEADER_BYTES = 180
ERROR_BODY_BYTES = 90
CGI_SPAWN_COST = 4_000

#: Graceful degradation (defense ladder rung 4): at tier >= 2 static
#: bodies are shrunk to this percentage of their full size.
DEGRADE_BODY_PERCENT = 25

#: QoS stream pacing: 10 KB every 10 ms = 1 MBps (paper section 4.4.2).
STREAM_CHUNK_BYTES = 10_000
STREAM_INTERVAL_TICKS = millis_to_ticks(10)


class HTTPRequest:
    """A parsed HTTP/1.0 request (carried as segment app-data)."""

    __slots__ = ("method", "uri", "size")

    def __init__(self, method: str, uri: str, size: int = 0):
        self.method = method
        self.uri = uri
        self.size = size or (len(method) + len(uri) + 30)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HTTPRequest {self.method} {self.uri}>"


class ListenSpec:
    """One passive path to create at boot."""

    def __init__(self, port: int = 80, subnet: Optional[Subnet] = None,
                 name: str = "", syn_cap: Optional[int] = None,
                 tickets: int = 1, penalty: bool = False):
        self.port = port
        self.subnet = subnet or Subnet("0.0.0.0/0")
        self.name = name or f"passive-{self.subnet.cidr}"
        self.syn_cap = syn_cap
        self.tickets = tickets
        #: Penalty-box passive paths (paper section 4.4.4) catch SYNs from
        #: previously-misbehaving clients instead of matching by subnet.
        self.penalty = penalty


class HttpModule(Module):
    """HTTP/1.0 server module."""

    interfaces = frozenset({"aio", "file"})

    def __init__(self, kernel, name, pd,
                 listen_specs: Optional[List[ListenSpec]] = None,
                 cgi_scripts: Optional[Dict[str, Callable]] = None,
                 stream_rate_bps: int = 1_000_000):
        super().__init__(kernel, name, pd)
        self.listen_specs = listen_specs or [ListenSpec()]
        #: name -> factory(stage) returning a thread-body generator.
        self.cgi_scripts = cgi_scripts or {}
        self.stream_rate_bps = stream_rate_bps
        #: Proportional-share tickets granted to stream paths (set by the
        #: QoS policy; 1 = best effort).
        self.stream_tickets = 1
        #: EDF period granted to stream paths (0 = aperiodic/background);
        #: set by the QoS policy when the kernel runs the EDF scheduler.
        self.stream_period_ticks = 0
        self.path_manager = None  # injected by the server assembly
        self.passive_paths: List = []
        self.requests_served = 0
        self.requests_404 = 0
        self.cgi_spawned = 0
        self.streams_started = 0
        self.bytes_served = 0
        #: Graceful-degradation tier, set by the defense controller:
        #: 0 = full service; 1 = shed CGI (cheap 503, no handler thread);
        #: 2 = also shrink static responses to DEGRADE_BODY_PERCENT.
        self.degrade_level = 0
        self.cgi_shed = 0
        self.responses_degraded = 0

    # ------------------------------------------------------------------
    # Boot: create the passive paths
    # ------------------------------------------------------------------
    def init_module(self) -> Generator:
        for spec in self.listen_specs:
            attrs = Attributes(listen=True, local_port=spec.port,
                               subnet=spec.subnet, document_root="/",
                               penalty=spec.penalty)
            path = yield from self.path_manager.path_create(
                attrs, start_module=self.name, name=spec.name)
            if spec.syn_cap is not None:
                path.policy_state["syn_cap"] = spec.syn_cap
            path.sched.tickets = spec.tickets
            self.passive_paths.append(path)

    def open(self, path, attrs: Attributes, origin):
        stage = self.make_stage(path)
        if attrs.get("listen"):
            # Passive paths stop at HTTP: extend toward the net side only.
            extend = ["tcp"] if origin is None else []
            return OpenResult(stage, extend)
        stage.state["request"] = None
        stage.state["responded"] = False
        # Active paths run the full chain: toward FS unless we came from
        # there.
        extend = [n for n in self.graph.neighbors(self.name)
                  if origin is None or n != origin.name]
        return OpenResult(stage, extend)

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    def forward(self, stage: Stage, data: HTTPData) -> Generator:
        """Stream data delivered by TCP."""
        if data.eof:
            return True  # client closed; nothing to do for HTTP/1.0
        request = data.app_data
        if not isinstance(request, HTTPRequest) or stage.state.get("responded"):
            return True
        yield Cycles(self.costs.http_parse_request + self.acct(1))
        stage.state["request"] = request
        uri = request.uri
        if uri.startswith("/cgi-bin/"):
            yield from self._run_cgi(stage, uri[len("/cgi-bin/"):])
        elif uri == "/stream":
            self._start_stream(stage)
        else:
            yield from self._serve_static(stage, uri)
        return True

    def _serve_static(self, stage: Stage, uri: str) -> Generator:
        result = yield from stage.call_forward(FileRead(uri))
        yield Cycles(self.costs.http_build_response + self.acct(1))
        stage.state["responded"] = True
        if result is None:
            self.requests_404 += 1
            yield from stage.send_backward(AppSend(
                RESPONSE_HEADER_BYTES + ERROR_BODY_BYTES, fin=True,
                app_data=("404", uri)))
            return
        size, _message = result
        self.requests_served += 1
        if self.degrade_level >= 2:
            # Tier 2: serve a shrunk body — the client still gets a
            # useful answer, the machine sheds most of the copy/transmit
            # cost.  Tagged "206" so clients can count degraded replies.
            size = max(1, size * DEGRADE_BODY_PERCENT // 100)
            self.responses_degraded += 1
            self.bytes_served += size
            yield from stage.send_backward(AppSend(
                RESPONSE_HEADER_BYTES + size, fin=True,
                app_data=("206", uri)))
            return
        self.bytes_served += size
        yield from stage.send_backward(AppSend(
            RESPONSE_HEADER_BYTES + size, fin=True, app_data=("200", uri)))

    # ------------------------------------------------------------------
    # CGI
    # ------------------------------------------------------------------
    def _run_cgi(self, stage: Stage, script: str) -> Generator:
        factory = self.cgi_scripts.get(script)
        if self.degrade_level >= 1:
            # Tier 1: shed dynamic work before touching static service.
            # A cheap 503 instead of a handler thread — the expensive
            # part (spawn + script cycles) never happens.
            self.cgi_shed += 1
            stage.state["responded"] = True
            yield Cycles(self.costs.http_build_response + self.acct(1))
            yield from stage.send_backward(AppSend(
                RESPONSE_HEADER_BYTES + ERROR_BODY_BYTES, fin=True,
                app_data=("503", script)))
            return
        yield Cycles(CGI_SPAWN_COST + self.acct(2))
        stage.state["responded"] = True
        if factory is None:
            self.requests_404 += 1
            yield from stage.send_backward(AppSend(
                RESPONSE_HEADER_BYTES + ERROR_BODY_BYTES, fin=True,
                app_data=("404", script)))
            return
        self.cgi_spawned += 1
        # The handler runs on its own thread *owned by the path* — its
        # cycles are charged to the connection and the runtime limit
        # applies.  An infinite loop here is the paper's CGI attack.
        body = factory(stage)
        self.kernel.spawn_thread(
            stage.path, body, name=f"cgi-{script}@{stage.path.name}",
            stack_domains=len(stage.path.domains_crossed()))

    def respond_from_cgi(self, stage: Stage, nbytes: int) -> Generator:
        """Helper for well-behaved CGI scripts to send their output."""
        yield Cycles(self.costs.http_build_response + self.acct(1))
        self.requests_served += 1
        self.bytes_served += nbytes
        yield from stage.send_backward(AppSend(
            RESPONSE_HEADER_BYTES + nbytes, fin=True, app_data=("200", "cgi")))

    # ------------------------------------------------------------------
    # QoS stream
    # ------------------------------------------------------------------
    def _start_stream(self, stage: Stage) -> None:
        self.streams_started += 1
        stage.state["responded"] = True
        path = stage.path
        path.sched.tickets = self.stream_tickets  # the QoS reservation
        if self.stream_period_ticks:
            # Under EDF the stream is the periodic task; best-effort
            # paths are background (period 0).
            path.sched.period_ticks = self.stream_period_ticks
        interval = STREAM_INTERVAL_TICKS
        chunk = STREAM_CHUNK_BYTES * self.stream_rate_bps // 1_000_000

        def pacer() -> Generator:
            engine = path.stage_of("tcp").state["engine"]
            yield Cycles(self.costs.http_build_response + self.acct(1))
            next_send = self.kernel.sim.now
            while not path.destroyed and not engine.closed:
                yield from stage.send_backward(AppSend(chunk))
                # Absolute-time pacing: processing time must not stretch
                # the period, or the stream silently undershoots its rate.
                next_send += interval
                delay = next_send - self.kernel.sim.now
                if delay > 0:
                    yield Sleep(delay)

        self.kernel.spawn_thread(path, pacer(),
                                 name=f"stream@{path.name}",
                                 stack_domains=len(path.domains_crossed()))
