"""Scout modules: the units of program development and configurability.

Each module provides a well-defined, independent service (paper section
2.1): device drivers (:mod:`repro.modules.eth`, :mod:`repro.modules.scsi`),
network protocols (:mod:`repro.modules.arp`, :mod:`repro.modules.ip`,
:mod:`repro.modules.tcp`, :mod:`repro.modules.http`), the file system
(:mod:`repro.modules.fs`), and policy *filters*
(:mod:`repro.modules.filters`).  Modules are assembled into a
:class:`~repro.modules.graph.ModuleGraph` at configuration time; paths are
threaded through the graph at run time.
"""

from repro.modules.base import Module, OpenResult
from repro.modules.graph import ModuleGraph
from repro.modules.eth import EthModule, OutFrame
from repro.modules.arp import ArpModule
from repro.modules.ip import IpModule
from repro.modules.tcp import TcpModule
from repro.modules.http import HttpModule, HTTPRequest, ListenSpec
from repro.modules.icmp import IcmpModule, IcmpEcho
from repro.modules.udp import UdpModule, UDPDatagram
from repro.modules.fs import FsModule, FileRead
from repro.modules.scsi import ScsiModule, ScsiRead
from repro.modules.filters import FilterModule, PortFilter, RateLimitFilter

__all__ = [
    "Module",
    "OpenResult",
    "ModuleGraph",
    "EthModule",
    "OutFrame",
    "ArpModule",
    "IpModule",
    "TcpModule",
    "HttpModule",
    "HTTPRequest",
    "ListenSpec",
    "IcmpModule",
    "IcmpEcho",
    "UdpModule",
    "UDPDatagram",
    "FsModule",
    "FileRead",
    "ScsiModule",
    "ScsiRead",
    "FilterModule",
    "PortFilter",
    "RateLimitFilter",
]
