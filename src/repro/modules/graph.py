"""The module graph (paper section 2.1, Figure 1).

Nodes are the modules configured into the system; edges are the legal
communication channels between them.  The graph is fixed at configuration
(build) time — this is itself a security mechanism, the paper's second
enforcement level: "the module graph ... limits information flow between
protection domains to those channels".

Each module is placed at an integer *position* along the main I/O chain
(network end = low, disk end = high); paths sort their stages by position.
Positions are spaced out so filters can be configured between any two
modules.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Set, Tuple

from repro.kernel.errors import InvalidOperationError
from repro.modules.base import Module


class ModuleGraph:
    """Typed module graph with boot support."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._modules: Dict[str, Module] = {}
        self._positions: Dict[str, int] = {}
        self._edges: Set[Tuple[str, str]] = set()
        self.booted = False

    # ------------------------------------------------------------------
    # Configuration time
    # ------------------------------------------------------------------
    def add(self, module: Module, position: int) -> Module:
        if module.name in self._modules:
            raise InvalidOperationError(
                f"duplicate module name: {module.name}")
        self._modules[module.name] = module
        self._positions[module.name] = position
        module.graph = self
        return module

    def connect(self, a: str, b: str, interface: str = "aio") -> None:
        """Add an edge; both modules must support the interface type.

        "Two modules can be connected by an edge if they support a common
        service interface.  These interfaces are typed and enforced."
        """
        ma, mb = self.find(a), self.find(b)
        if interface not in ma.interfaces:
            raise InvalidOperationError(
                f"{a} does not support interface {interface!r}")
        if interface not in mb.interfaces:
            raise InvalidOperationError(
                f"{b} does not support interface {interface!r}")
        self._edges.add((a, b))
        self._edges.add((b, a))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(f"no module named {name!r} in the graph") from None

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def position(self, name: str) -> int:
        return self._positions[name]

    def neighbors(self, name: str) -> List[str]:
        self.find(name)
        out = [b for (a, b) in self._edges if a == name]
        out.sort(key=lambda n: self._positions[n])
        return out

    def connected(self, a: str, b: str) -> bool:
        return (a, b) in self._edges

    def modules(self) -> List[Module]:
        return [self._modules[n]
                for n in sorted(self._modules, key=self._positions.get)]

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Initialize every module: the kernel switches to the module's
        protection domain and calls its init function."""
        if self.booted:
            raise InvalidOperationError("graph already booted")
        self.booted = True
        for module in self.modules():
            self.kernel.spawn_thread(module.pd, module.init_module(),
                                     name=f"init-{module.name}")
