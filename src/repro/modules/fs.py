"""The file system module.

FS serves the file-access interface to HTTP and talks to the SCSI driver
below.  It keeps a buffer cache of whole documents in IOBuffers owned by
its protection domain; when a cached document is served, the buffer is
*associated* with the requesting path as a second owner — the exact
web-cache pattern the paper uses to motivate the IOBuffer association call
(section 3.3): no copying, one copy of each data item, and the path is
fully charged while it references the data.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.sim.cpu import Cycles
from repro.core.path import Stage
from repro.kernel.errors import EscortError
from repro.modules.base import Module, OpenResult
from repro.modules.scsi import ScsiRead
from repro.msg.message import Message


class FileRead:
    """File-access request: fetch a whole document."""

    __slots__ = ("uri",)

    def __init__(self, uri: str):
        self.uri = uri


class FsModule(Module):
    """A simple whole-file FS over SCSI with an IOBuffer document cache."""

    interfaces = frozenset({"aio", "file"})

    def __init__(self, kernel, name, pd,
                 documents: Optional[Dict[str, int]] = None):
        super().__init__(kernel, name, pd)
        #: uri -> size in bytes (the on-disk directory).
        self.documents: Dict[str, int] = dict(documents or {})
        #: uri -> cached IOBuffer holding the document.
        self.cache: Dict[str, object] = {}
        self.lookups = 0
        self.cache_hits = 0
        self.disk_reads = 0

    def add_document(self, uri: str, size: int) -> None:
        if size <= 0:
            raise ValueError("document size must be positive")
        self.documents[uri] = size

    def open(self, path, attrs, origin):
        stage = self.make_stage(path)
        extend = [n for n in self.graph.neighbors(self.name)
                  if origin is None or n != origin.name]
        return OpenResult(stage, extend)

    # ------------------------------------------------------------------
    # File access interface
    # ------------------------------------------------------------------
    def handle_call(self, stage: Stage,
                    request: FileRead) -> Generator:
        """Return ``(size, Message)`` or ``None`` for a missing file."""
        self.lookups += 1
        yield Cycles(self.costs.fs_lookup + self.acct(1))
        size = self.documents.get(request.uri)
        if size is None:
            return None
        buf = self.cache.get(request.uri)
        if buf is not None and not buf.freed:
            self.cache_hits += 1
            yield Cycles(self.costs.fs_read_cached + self.acct(1))
            self._associate_with_path(stage, buf)
            return size, Message(body_len=size, iobuf=buf)
        # Cache miss: read through SCSI into a fresh buffer.
        self.disk_reads += 1
        ok = yield from stage.call_forward(ScsiRead(size))
        if not ok:
            return None
        yield Cycles(self.costs.iobuf_alloc + self.acct(2))
        buf, cache_hit = self.kernel.iobufs.alloc(size, self.pd, self.pd)
        if cache_hit:
            yield Cycles(self.costs.iobuf_cached_alloc)
        buf.payload = request.uri
        # FS holds the cache reference; it owns the buffer.
        self.kernel.iobufs.lock(buf, self.pd)
        self.cache[request.uri] = buf
        self._associate_with_path(stage, buf)
        return size, Message(body_len=size, iobuf=buf)

    def _associate_with_path(self, stage: Stage, buf) -> None:
        """Map the cached buffer into the path's domains, fully charging
        the path (second-owner association)."""
        path = stage.path
        if path in buf.locks:
            return  # already associated with this path
        try:
            self.kernel.iobufs.associate(
                buf, path, self.pd,
                read_pds=list(path.domains_crossed()))
        except EscortError:
            # Association is an optimization; serving continues (a copy
            # would be made in a real system).
            pass

    def destroy_stage(self, stage: Stage) -> None:
        pass

    def cache_bytes(self) -> int:
        return sum(b.nbytes for b in self.cache.values() if not b.freed)
