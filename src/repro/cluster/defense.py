"""Cluster-level defense: aggregate per-replica signals, act at the edge.

Each replica already runs its own closed-loop
:class:`~repro.defense.DefenseController`, but a per-replica view
systematically *under*-reacts in a cluster: the dispatcher spreads a
flood over N replicas, so each controller sees 1/N of the offered rate and
may sit below its own trigger while the cluster as a whole is drowning.

:class:`ClusterDefense` closes that gap.  On a fixed scan period it reads
every replica's last :class:`~repro.defense.signals.DefenseSignals` sample
(the controllers already paid for the sampling), aggregates per-/24-prefix
rates by **sum** and anomaly scores by **max**, and drives two edge
actuators on the dispatcher:

* an **edge token bucket** per hot prefix — flagged SYNs are shed before
  any replica spends a cycle on them, so the per-replica ladders' lethal
  rungs (quota kills, degradation) have less reason to fire;
* a **steering quarantine** — the hot prefix's new flows are pinned to
  the highest-indexed healthy replica, so the blast radius of whatever
  still gets through is one box, not all of them.

Both release after the prefix stays under its limit for a quiet period,
mirroring the per-replica ladder's hysteresis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.clock import seconds_to_ticks, ticks_to_seconds
from repro.defense.ratelimit import TokenBucket


@dataclass
class ClusterDefenseAction:
    """One edge escalation/release in the cluster defense log."""

    at_s: float
    kind: str      # escalate | deescalate
    prefix: str
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.at_s:.6f}s] {self.kind} edge {self.prefix}: " \
               f"{self.detail}"


#: Per-/24 SYN rate below which a prefix is never shed regardless of its
#: anomaly score.  It must sit above any legitimate prefix's aggregate
#: rate: a failover retry burst spikes the *score* of the real clients'
#: prefix too, and without the rate floor the edge would strangle exactly
#: the clients the retry stack just rescued.  The per-replica
#: controllers inherit the same floor (see ``ClusterTestbed``): sticky
#: rendezvous steering can momentarily concentrate a whole prefix on one
#: replica, so a replica-local floor sized for a standalone machine
#: would rate-limit legitimate bursts that are merely unevenly placed.
PREFIX_RATE_FLOOR = 1500.0


class ClusterDefense:
    """Aggregated signal scan loop over the whole cluster.

    ``rate_floor`` (default :data:`PREFIX_RATE_FLOOR`) gates shedding on
    cluster-wide per-/24 SYN rate in addition to the anomaly score.
    """

    def __init__(self, sim, replicas, dispatcher, health, *,
                 period_s: float = 0.05,
                 score_on: float = 4.0,
                 rate_floor: float = PREFIX_RATE_FLOOR,
                 allow_rate: int = 50,
                 release_scans: int = 8):
        self.sim = sim
        self.replicas = replicas
        self.dispatcher = dispatcher
        self.health = health
        self.period_s = period_s
        self.score_on = score_on
        self.rate_floor = rate_floor
        self.allow_rate = allow_rate
        self.release_scans = release_scans

        self.scans = 0
        self.log: List[ClusterDefenseAction] = []
        self._quiet: Dict[str, int] = {}
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(seconds_to_ticks(self.period_s), self._scan)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _scan(self) -> None:
        if not self._running:
            return
        self.scans += 1
        rates, scores = self._aggregate()
        now = self.sim.now

        # Escalate: any prefix anomalous somewhere and loud cluster-wide.
        for prefix in sorted(scores):
            if prefix in self.dispatcher.edge_buckets:
                continue
            if scores[prefix] >= self.score_on \
                    and rates.get(prefix, 0.0) >= self.rate_floor:
                burst = max(8, self.allow_rate // 4)
                self.dispatcher.edge_buckets[prefix] = TokenBucket(
                    self.allow_rate, burst, now=now)
                self.dispatcher.steer_map[prefix] = self._quarantine()
                self._quiet[prefix] = 0
                self._log("escalate", prefix,
                          f"shed to {self.allow_rate}/s at the edge, "
                          f"quarantined to replica "
                          f"{self.dispatcher.steer_map[prefix]} "
                          f"(cluster rate {rates.get(prefix, 0):.0f}/s, "
                          f"max score {scores[prefix]:.1f})")

        # Release: offered rate back under the limit for long enough.
        for prefix in sorted(self.dispatcher.edge_buckets):
            offered = rates.get(prefix, 0.0)
            if offered <= self.allow_rate:
                self._quiet[prefix] = self._quiet.get(prefix, 0) + 1
            else:
                self._quiet[prefix] = 0
            if self._quiet[prefix] >= self.release_scans:
                del self.dispatcher.edge_buckets[prefix]
                self.dispatcher.steer_map.pop(prefix, None)
                del self._quiet[prefix]
                self._log("deescalate", prefix,
                          f"released (offered {offered:.0f}/s)")

        self.sim.schedule(seconds_to_ticks(self.period_s), self._scan)

    def _aggregate(self):
        """Sum rates, max scores, across every replica's last sample."""
        rates: Dict[str, float] = {}
        scores: Dict[str, float] = {}
        for replica in self.replicas:
            controller = replica.server.defense
            sig = controller.last_signals if controller else None
            if sig is None:
                continue
            for prefix, rate in sig.syn_rates.items():
                rates[prefix] = rates.get(prefix, 0.0) + rate
            for prefix, score in sig.syn_scores.items():
                if score > scores.get(prefix, 0.0):
                    scores[prefix] = score
        return rates, scores

    def _quarantine(self) -> int:
        """The quarantine target: the highest-indexed healthy replica."""
        healthy = self.health.healthy_indices() if self.health else []
        return healthy[-1] if healthy else len(self.replicas) - 1

    # ------------------------------------------------------------------
    def _log(self, kind: str, prefix: str, detail: str) -> None:
        self.log.append(ClusterDefenseAction(
            at_s=ticks_to_seconds(self.sim.now),
            kind=kind, prefix=prefix, detail=detail))

    def trace(self) -> List[str]:
        return [str(a) for a in self.log]

    def summary(self) -> Dict:
        """Digest-stable view of the cluster defense state."""
        return {
            "scans": self.scans,
            "actions": [[a.at_s, a.kind, a.prefix] for a in self.log],
            "active": sorted(self.dispatcher.edge_buckets),
        }
