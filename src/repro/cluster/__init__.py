"""The replicated Escort cluster.

A single Escort server — even one whose defense ladder works perfectly —
caps out at what one box survives.  This package replicates the service:
N :class:`~repro.cluster.replica.Replica` machines behind a deterministic
L4 front end (:class:`~repro.cluster.dispatcher.ClusterDispatcher`), with
active health probing (:class:`~repro.cluster.health.HealthMonitor`),
connection draining and failover, cluster-level aggregation of the
per-replica defense signals (:class:`~repro.cluster.defense.ClusterDefense`),
and the chaos scenarios a single replica cannot survive — a crash, a
partitioned dispatcher↔replica link, a flapping port — expressed as a
replayable :class:`~repro.cluster.run.ClusterRun`.
"""

from repro.cluster.defense import ClusterDefense
from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.harness import PROBE_IP, VIP, ClusterTestbed
from repro.cluster.health import HealthMonitor, ReplicaHealth
from repro.cluster.replica import Replica
from repro.cluster.run import ClusterRun, ClusterRunResult

__all__ = [
    "ClusterDefense",
    "ClusterDispatcher",
    "ClusterRun",
    "ClusterRunResult",
    "ClusterTestbed",
    "HealthMonitor",
    "PROBE_IP",
    "Replica",
    "ReplicaHealth",
    "VIP",
]
