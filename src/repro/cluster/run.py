"""The cluster chaos experiment as a replayable spec.

One :class:`ClusterRun` is one cell of the 1-vs-N comparison: a seeded
client population with the application-level retry stack, optionally a
ramping trusted-subnet SYN flood, and one chaos scenario dropped into the
middle of the measurement window:

* ``crash`` — a replica fail-stops mid-window and cold-restarts later
  (connection state flushed, exactly what a reboot loses);
* ``partition`` — the dispatcher↔replica link is cut and later healed
  (connection state survives on both sides);
* ``flap`` — the same link bounces down/up several times.

Everything derives from the spec and the seed — client RNGs are reseeded
per ``(ip, seed)``, the flood ramp, probe loops and defense scans are all
tick-driven — so a recorded run replays bit for bit, serial and
``--workers`` sweeps are byte-identical, and the digest machinery can pin
the whole cluster's state (see ``_cluster_summary`` in
:mod:`repro.snapshot.digest`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import seconds_to_ticks, ticks_to_seconds
from repro.snapshot.runs import SETTLE_S, ReplayableRun

CHAOS_KINDS = ("none", "crash", "partition", "flap")

#: The flood spoofs the same trusted-subnet corner as the defense runs:
#: inside 10.1.0.0/16 (no static cap applies) but disjoint from real
#: client addresses.
SPOOF_SUBNET_CIDR = "10.1.64.0/18"

#: Link-flap chaos: the victim's link bounces this many times, this far
#: apart, starting at the chaos milestone.
FLAP_COUNT = 3
FLAP_PERIOD_S = 0.04


@dataclass
class ClusterRunResult:
    """What one cluster cell measured."""

    replicas: int
    adaptive: bool
    chaos: str
    seed: int
    window_start: int
    window_end: int
    goodput_cps: float
    completions: int
    aborted: int
    refused: int
    retried: int
    degraded: int
    syn_sent: int
    #: Seconds from the chaos milestone to the health monitor marking the
    #: victim down (None when no chaos fired or it was never detected).
    failover_latency_s: Optional[float]
    health_downs: int
    health_ups: int
    drained_conns: int
    rst_sent: int
    edge_shed: int
    forwarded_in: int
    forwarded_out: int
    drops_no_replica: int
    flushed_paths: int
    defense_actions: int
    per_replica: List[Dict] = field(default_factory=list)


class ClusterRun(ReplayableRun):
    """One cluster chaos cell as fixed-tick milestones."""

    KIND = "cluster"

    def __init__(self, chaos: str = "crash", *,
                 replicas: int = 3, adaptive: bool = True, seed: int = 1,
                 clients: int = 12, document: str = "/doc-1k",
                 retry: bool = True,
                 syn_rate: int = 0, syn_ramp_to: int = 4000,
                 syn_ramp_s: float = 1.5, spoof_hosts: int = 500,
                 victim: int = 0,
                 chaos_at_s: float = 0.5, chaos_restore_s: float = 1.7,
                 warmup_s: float = 0.5, measure_s: float = 2.5):
        if chaos not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {chaos!r} "
                             f"(known: {', '.join(CHAOS_KINDS)})")
        if not 0 <= victim < replicas:
            raise ValueError("victim must index a replica")
        self.chaos = chaos
        self.replicas = replicas
        self.adaptive = adaptive
        self.seed = seed
        self.clients = clients
        self.document = document
        self.retry = retry
        self.syn_rate = syn_rate
        self.syn_ramp_to = syn_ramp_to
        self.syn_ramp_s = syn_ramp_s
        self.spoof_hosts = spoof_hosts
        self.victim = victim
        self.chaos_at_s = chaos_at_s
        self.chaos_restore_s = chaos_restore_s
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.run_result: Optional[ClusterRunResult] = None
        self._window_start = None
        self._chaos_tick: Optional[int] = None
        self._outcomes_at_start = (0, 0, 0, 0)

    # ------------------------------------------------------------------
    def spec(self) -> Dict:
        return {
            "run": self.KIND,
            "chaos": self.chaos,
            "replicas": self.replicas,
            "adaptive": self.adaptive,
            "seed": self.seed,
            "clients": self.clients,
            "document": self.document,
            "retry": self.retry,
            "syn_rate": self.syn_rate,
            "syn_ramp_to": self.syn_ramp_to,
            "syn_ramp_s": self.syn_ramp_s,
            "spoof_hosts": self.spoof_hosts,
            "victim": self.victim,
            "chaos_at_s": self.chaos_at_s,
            "chaos_restore_s": self.chaos_restore_s,
            "warmup_s": self.warmup_s,
            "measure_s": self.measure_s,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "ClusterRun":
        fields_ = {k: v for k, v in spec.items() if k != "run"}
        return cls(fields_.pop("chaos"), **fields_)

    # ------------------------------------------------------------------
    def build(self) -> None:
        from repro.cluster.harness import ClusterTestbed
        from repro.net.addressing import Subnet
        from repro.workload.clients import RetryPolicy

        self.bed = ClusterTestbed(replicas=self.replicas,
                                  adaptive=self.adaptive)
        retry = RetryPolicy() if self.retry else None
        self.bed.add_clients(self.clients, document=self.document,
                             retry=retry)
        # Per-seed determinism: client RNGs (request jitter + backoff
        # jitter) are the only stochastic element, reseeded per (ip, seed).
        for client in self.bed.clients:
            client.rng.seed(f"{client.ip}/{self.seed}")
        if self.syn_rate:
            self.bed.add_syn_attacker(
                self.syn_rate,
                spoof_subnet=Subnet(SPOOF_SUBNET_CIDR),
                ramp_to=self.syn_ramp_to,
                ramp_seconds=self.syn_ramp_s,
                spoof_hosts=self.spoof_hosts)

    def milestones(self) -> List[Tuple[int, str]]:
        settle = seconds_to_ticks(SETTLE_S)
        warm_end = settle + seconds_to_ticks(self.warmup_s)
        measure_end = warm_end + seconds_to_ticks(self.measure_s)
        out = [
            (0, "boot"),
            (settle, "start_load"),
            (warm_end, "begin_window"),
        ]
        if self.chaos != "none":
            out.append((warm_end + seconds_to_ticks(self.chaos_at_s),
                        "chaos_hit"))
            restore_at = warm_end + seconds_to_ticks(self.chaos_restore_s)
            if self.chaos in ("crash", "partition") \
                    and restore_at < measure_end:
                out.append((restore_at, "chaos_restore"))
        out.append((measure_end, "end_window"))
        return out

    def result(self) -> Optional[ClusterRunResult]:
        return self.run_result

    # -- timeline actions ----------------------------------------------
    def ms_boot(self) -> None:
        self.bed.boot()

    def ms_start_load(self) -> None:
        self.bed.start_load()

    def ms_begin_window(self) -> None:
        self._window_start = self.bed.begin_window()
        stats = self.bed.stats
        self._outcomes_at_start = tuple(
            stats.outcome_total("client", k)
            for k in ("aborted", "refused", "retried", "degraded"))

    def ms_chaos_hit(self) -> None:
        self._chaos_tick = self.bed.sim.now
        replica = self.bed.replicas[self.victim]
        if self.chaos == "crash":
            replica.crash()
        elif self.chaos == "partition":
            replica.partition()
        elif self.chaos == "flap":
            self._start_flaps(replica)

    def _start_flaps(self, replica) -> None:
        """Bounce the victim's link FLAP_COUNT times, ending up."""
        period = seconds_to_ticks(FLAP_PERIOD_S)
        replica.gate.set_link(False)
        for k in range(1, FLAP_COUNT * 2):
            up = (k % 2 == 1)
            self.bed.sim.schedule(
                k * period,
                lambda up=up: replica.gate.set_link(up))

    def ms_chaos_restore(self) -> None:
        replica = self.bed.replicas[self.victim]
        if self.chaos == "crash":
            replica.restore()
        elif self.chaos == "partition":
            replica.heal_partition()

    def ms_end_window(self) -> None:
        bed = self.bed
        start = self._window_start
        end = bed.sim.now
        stats = bed.stats
        dispatcher = bed.dispatcher
        a0, r0, t0, d0 = self._outcomes_at_start

        failover = None
        if self._chaos_tick is not None:
            down_at = bed.health.first_down_after(self._chaos_tick,
                                                  index=self.victim)
            if down_at is not None:
                failover = ticks_to_seconds(down_at - self._chaos_tick)

        transitions = bed.health.transitions
        self.run_result = ClusterRunResult(
            replicas=self.replicas,
            adaptive=self.adaptive,
            chaos=self.chaos,
            seed=self.seed,
            window_start=start,
            window_end=end,
            goodput_cps=stats.rate_per_second("client", start, end),
            completions=stats.completions_in("client", start, end),
            aborted=stats.outcome_total("client", "aborted") - a0,
            refused=stats.outcome_total("client", "refused") - r0,
            retried=stats.outcome_total("client", "retried") - t0,
            degraded=stats.outcome_total("client", "degraded") - d0,
            syn_sent=(bed.syn_attacker.sent if bed.syn_attacker else 0),
            failover_latency_s=failover,
            health_downs=sum(1 for _, _, k in transitions if k == "down"),
            health_ups=sum(1 for _, _, k in transitions if k == "up"),
            drained_conns=dispatcher.drained_conns,
            rst_sent=dispatcher.rst_sent,
            edge_shed=dispatcher.edge_shed,
            forwarded_in=dispatcher.forwarded_in,
            forwarded_out=dispatcher.forwarded_out,
            drops_no_replica=dispatcher.drops_no_replica,
            flushed_paths=sum(r.flushed_paths for r in bed.replicas),
            defense_actions=(len(bed.defense.log) if bed.defense else 0),
            per_replica=[{
                "index": r.index,
                "link_up": r.link_up,
                "crashes": r.crashes,
                "demux_drops": sum(r.server.tcp.demux_drops.values()),
                "half_open": r.server.tcp.half_open(),
            } for r in bed.replicas],
        )

    def extra_summary(self) -> Dict:
        return {"window_start": self._window_start or 0,
                "seed": self.seed}
