"""Active health probing with EWMA health scores.

The dispatcher cannot see inside a replica; what it *can* do is send ICMP
echo probes down each backside link and watch whether replies come back.
:class:`HealthMonitor` runs one probe loop per replica on the simulated
clock: every period it sends an echo request (ident = replica index) and
arms a timeout; a reply before the timeout scores 1, a timeout scores 0,
and the samples fold into an EWMA health score.  Two consecutive misses
mark the replica down (fast failover beats certainty here — a false
positive only costs a drain, while a false negative blackholes every
sticky connection); two consecutive replies bring it back.

Every up/down transition is recorded as ``(tick, replica, kind)`` so runs
can report failover latency and the digest can pin the health timeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.clock import seconds_to_ticks


class ReplicaHealth:
    """Probe-loop state for one replica."""

    __slots__ = ("index", "score", "up", "consecutive_misses",
                 "consecutive_replies", "outstanding", "probes_sent",
                 "replies_seen", "misses", "_seq")

    def __init__(self, index: int):
        self.index = index
        self.score = 1.0
        self.up = True
        self.consecutive_misses = 0
        self.consecutive_replies = 0
        #: seq -> timeout event for probes still in flight.
        self.outstanding: Dict[int, object] = {}
        self.probes_sent = 0
        self.replies_seen = 0
        self.misses = 0
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq


class HealthMonitor:
    """Per-replica probe loops driving up/down transitions.

    ``send_probe(index, seq)`` is injected by the dispatcher (it owns the
    backside NICs); the monitor owns the timing, scoring and hysteresis.
    """

    def __init__(self, sim, send_probe: Callable[[int, int], None],
                 replica_count: int, *,
                 period_s: float = 0.01, timeout_s: float = 0.015,
                 alpha: float = 0.3, down_after: int = 2, up_after: int = 2,
                 on_down: Optional[Callable[[int], None]] = None,
                 on_up: Optional[Callable[[int], None]] = None):
        if timeout_s > period_s * 2:
            raise ValueError("timeout must be at most two probe periods")
        self.sim = sim
        self.send_probe = send_probe
        self.period_ticks = seconds_to_ticks(period_s)
        self.timeout_ticks = seconds_to_ticks(timeout_s)
        self.alpha = alpha
        self.down_after = down_after
        self.up_after = up_after
        self.on_down = on_down
        self.on_up = on_up
        self.replicas: List[ReplicaHealth] = [
            ReplicaHealth(i) for i in range(replica_count)]
        #: Every up/down transition: (tick, replica index, "down" | "up").
        self.transitions: List[Tuple[int, int, str]] = []
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for health in self.replicas:
            # Stagger the loops by replica index so N probes never share a
            # tick (the hub would serialize them anyway; this keeps the
            # event order independent of replica count).
            self.sim.schedule(self.period_ticks + health.index,
                              lambda h=health: self._probe(h))

    def stop(self) -> None:
        self._running = False

    def healthy(self, index: int) -> bool:
        return self.replicas[index].up

    def healthy_indices(self) -> List[int]:
        return [h.index for h in self.replicas if h.up]

    # ------------------------------------------------------------------
    def _probe(self, health: ReplicaHealth) -> None:
        if not self._running:
            return
        seq = health.next_seq()
        health.probes_sent += 1
        timeout_ev = self.sim.schedule(
            self.timeout_ticks, lambda: self._timeout(health, seq))
        health.outstanding[seq] = timeout_ev
        self.send_probe(health.index, seq)
        self.sim.schedule(self.period_ticks,
                          lambda: self._probe(health))

    def on_reply(self, index: int, seq: int) -> None:
        """The dispatcher saw an echo reply for probe ``seq``."""
        health = self.replicas[index]
        timeout_ev = health.outstanding.pop(seq, None)
        if timeout_ev is None:
            return  # late reply, already scored as a miss
        timeout_ev.cancel()
        health.replies_seen += 1
        self._sample(health, 1.0)

    def _timeout(self, health: ReplicaHealth, seq: int) -> None:
        if health.outstanding.pop(seq, None) is None:
            return
        health.misses += 1
        self._sample(health, 0.0)

    # ------------------------------------------------------------------
    def _sample(self, health: ReplicaHealth, value: float) -> None:
        health.score = (1 - self.alpha) * health.score + self.alpha * value
        if value > 0:
            health.consecutive_replies += 1
            health.consecutive_misses = 0
            if (not health.up
                    and health.consecutive_replies >= self.up_after):
                health.up = True
                self.transitions.append((self.sim.now, health.index, "up"))
                if self.on_up is not None:
                    self.on_up(health.index)
        else:
            health.consecutive_misses += 1
            health.consecutive_replies = 0
            if health.up and health.consecutive_misses >= self.down_after:
                health.up = False
                self.transitions.append((self.sim.now, health.index,
                                         "down"))
                if self.on_down is not None:
                    self.on_down(health.index)

    # ------------------------------------------------------------------
    def first_down_after(self, tick: int,
                         index: Optional[int] = None) -> Optional[int]:
        """Tick of the first down transition at or after ``tick``."""
        for at, idx, kind in self.transitions:
            if at >= tick and kind == "down" \
                    and (index is None or idx == index):
                return at
        return None

    def summary(self) -> Dict:
        """Digest-stable view of the health state."""
        return {
            "transitions": [[at, idx, kind]
                            for at, idx, kind in self.transitions],
            "replicas": [{
                "up": h.up,
                "score": round(h.score, 9),
                "probes": h.probes_sent,
                "replies": h.replies_seen,
                "misses": h.misses,
            } for h in self.replicas],
        }
