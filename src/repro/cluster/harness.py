"""The clustered machine room: N replicas, a dispatcher, the edge.

Extends the Figure-7 topology one step toward the ROADMAP's
production-scale north star: clients and attackers keep their places on
the switch and hub, but the server's spot on the hub is taken by the
dispatcher's front NIC, with each Escort replica on its own point-to-point
backside link behind it.  Addressing stays static (warm ARP caches
everywhere, as in the paper's testbed); the cluster VIP is the original
server address, so every client-side component works unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.clock import seconds_to_ticks
from repro.sim.costs import CostModel
from repro.sim.engine import Simulator
from repro.net.addressing import Subnet
from repro.net.link import Hub, Switch
from repro.workload.clients import HttpClient, RetryPolicy
from repro.workload.stats import WorkloadStats
from repro.workload.syn_attacker import SynAttacker

from repro.cluster.defense import ClusterDefense
from repro.cluster.dispatcher import PROBE_IP, ClusterDispatcher
from repro.cluster.health import HealthMonitor
from repro.cluster.replica import Replica

#: The cluster's virtual IP: the original server address, so clients are
#: oblivious to whether one box or N stand behind it.
VIP = "10.0.0.80"
TRUSTED_SUBNET = Subnet("10.1.0.0/16")
UNTRUSTED_SUBNET = Subnet("10.9.0.0/16")


class ClusterTestbed:
    """One complete clustered machine room."""

    __test__ = False  # not a pytest test class despite the harness role

    def __init__(self, *, replicas: int = 3, adaptive: bool = True,
                 untrusted_cap: int = 16,
                 costs: Optional[CostModel] = None,
                 documents=None,
                 probe_period_s: float = 0.01,
                 probe_timeout_s: float = 0.015):
        if replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.sim = Simulator()
        self.costs = costs or CostModel.default()
        self.stats = WorkloadStats()
        self.adaptive = adaptive

        self.hub = Hub(self.sim, latency=self.costs.hub_latency_ticks)
        self.switch = Switch(self.sim,
                             latency=self.costs.switch_latency_ticks)
        self.switch.attach_uplink(self.hub)

        self.replicas: List[Replica] = []
        for index in range(replicas):
            self.replicas.append(Replica(
                self.sim, index, VIP,
                policies=self._replica_policies(untrusted_cap),
                costs=self.costs, documents=documents))

        self.dispatcher = ClusterDispatcher(
            self.sim, VIP,
            [r.server.nic.mac for r in self.replicas])
        self.dispatcher.attach_front(self.hub)
        self.health = HealthMonitor(
            self.sim, self.dispatcher.send_probe, replicas,
            period_s=probe_period_s, timeout_s=probe_timeout_s,
            on_down=self.dispatcher.drain)
        self.dispatcher.health = self.health

        for index, replica in enumerate(self.replicas):
            replica.wire(self.dispatcher.backs[index])
            replica.seed_arp(PROBE_IP, self.dispatcher.backs[index].mac)

        self.defense: Optional[ClusterDefense] = None
        if adaptive:
            self.defense = ClusterDefense(
                self.sim, self.replicas, self.dispatcher, self.health)

        self.clients: List[HttpClient] = []
        self.syn_attacker: Optional[SynAttacker] = None
        self._client_seq = 0

    def _replica_policies(self, untrusted_cap: int) -> List:
        """Fresh policy objects per replica (policies hold server state).

        The per-replica controller keeps every rung of the standalone
        defense, but its ratelimit floor is raised to the cluster-wide
        :data:`~repro.cluster.defense.PREFIX_RATE_FLOOR`: sticky
        rendezvous steering can land a legitimate prefix's whole burst
        on one replica, and a floor sized for a standalone machine
        would read that placement artifact as an attack.
        """
        from repro.cluster.defense import PREFIX_RATE_FLOOR
        from repro.policy import AdaptivePolicy, SynFloodPolicy
        static = [SynFloodPolicy(TRUSTED_SUBNET,
                                 untrusted_cap=untrusted_cap)]
        if self.adaptive:
            return [AdaptivePolicy(
                *static, prefix_rate_floor=PREFIX_RATE_FLOOR)]
        return static

    # ------------------------------------------------------------------
    #: The digest/replay "primary": per-event fingerprints and the
    #: single-server tooling read ``bed.server`` — replica 0 stands in.
    @property
    def server(self):
        return self.replicas[0].server

    # ------------------------------------------------------------------
    # Workload construction (mirrors the single-server Testbed)
    # ------------------------------------------------------------------
    def add_clients(self, count: int, document: str = "/doc-1k",
                    retry: Optional[RetryPolicy] = None
                    ) -> List[HttpClient]:
        """Attach serial-request clients on the switch, retry stack on."""
        added = []
        for _ in range(count):
            self._client_seq += 1
            seq = self._client_seq
            ip = f"10.1.0.{(seq - 1) % 250 + 1}" if seq <= 250 \
                else f"10.1.1.{seq - 250}"
            client = HttpClient(self.sim, ip, VIP, document,
                                costs=self.costs, stats=self.stats,
                                retry=retry)
            client.attach(self.switch)
            client.learn(VIP, self.dispatcher.front.mac)
            self.dispatcher.learn(ip, client.nic.mac)
            # Replies leave each replica over its backside link; the
            # replica resolves any client IP to that link's far end.
            for index, replica in enumerate(self.replicas):
                replica.seed_arp(ip, self.dispatcher.backs[index].mac)
            self.clients.append(client)
            added.append(client)
        return added

    def add_syn_attacker(self, rate_per_second: int = 1000,
                         spoof_subnet: Optional[Subnet] = None,
                         ramp_to: Optional[int] = None,
                         ramp_seconds: float = 0.0,
                         spoof_hosts: int = 500) -> SynAttacker:
        """Attach the SYN flood on the hub, aimed at the dispatcher."""
        attacker = SynAttacker(
            self.sim, VIP, self.dispatcher.front.mac,
            spoof_subnet=spoof_subnet or UNTRUSTED_SUBNET,
            rate_per_second=rate_per_second, costs=self.costs,
            ramp_to=ramp_to, ramp_seconds=ramp_seconds,
            spoof_hosts=spoof_hosts)
        attacker.attach(self.hub)
        self.syn_attacker = attacker
        return attacker

    # ------------------------------------------------------------------
    # Lifecycle (milestone actions for ClusterRun)
    # ------------------------------------------------------------------
    def boot(self) -> None:
        for replica in self.replicas:
            replica.server.boot()

    def start_load(self) -> None:
        """Start traffic, health probing and the cluster defense loop."""
        for client in self.clients:
            client.start()
        if self.syn_attacker is not None:
            self.syn_attacker.start()
        self.health.start()
        if self.defense is not None:
            self.defense.start()

    def begin_window(self) -> int:
        return self.sim.now

    def run(self, warmup_s: float = 0.5, measure_s: float = 1.0) -> int:
        """Boot, settle, load, warm up; returns the open window's start.

        Convenience for tests; the replayable path is
        :class:`~repro.cluster.run.ClusterRun`.
        """
        self.boot()
        self.sim.run(until=self.sim.now + seconds_to_ticks(0.01))
        self.start_load()
        self.sim.run(until=self.sim.now + seconds_to_ticks(warmup_s))
        start = self.begin_window()
        self.sim.run(until=start + seconds_to_ticks(measure_s))
        return start
