"""The deterministic L4 front-end dispatcher.

One front NIC faces the edge (hub side, owning the cluster VIP's MAC) and
one backside NIC per replica faces a point-to-point link to that replica.
Steering is MAC-level — the replicas all believe they *are* the VIP, so no
address rewriting happens; the dispatcher only re-frames datagrams:

* **edge → replica**: a TCP segment for the VIP is matched against the
  sticky connection map ``(src_ip, src_port, dst_port) -> replica``; a new
  SYN picks its replica by highest-rendezvous-hash over the currently
  healthy set (so a replica joining or leaving only remaps the flows that
  must move), unless a defense steering override quarantines its /24
  prefix, and edge token buckets shed flagged prefixes before any replica
  pays a cycle for them;
* **replica → edge**: replies are re-framed to the client's real MAC;
  probe replies are peeled off to the health monitor.

When a replica goes down the dispatcher **drains** it: every sticky entry
is dropped and clients with known MACs receive a forged RST so their
retry stack re-issues the request immediately instead of waiting out a
TCP retransmit ladder against a dead box.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.defense.ratelimit import TokenBucket
from repro.modules.icmp import IPPROTO_ICMP, IcmpEcho
from repro.net.addressing import MacAddr
from repro.net.link import NIC
from repro.net.packet import (
    ETHERTYPE_IP,
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    EthFrame,
    IPDatagram,
    IPPROTO_TCP,
    TCPSegment,
)

#: The dispatcher's own address on the backside links; replicas route
#: probe replies here (it is ARP-seeded on every replica).
PROBE_IP = "10.0.1.254"


def _prefix(ip: str) -> str:
    """The /24 prefix key used throughout the defense layers."""
    return ip.rsplit(".", 1)[0]


class ClusterDispatcher:
    """MAC-level L4 dispatcher in front of N Escort replicas."""

    def __init__(self, sim, vip: str, replica_macs: List[MacAddr],
                 health=None):
        self.sim = sim
        self.vip = vip
        self.health = health  # attached after HealthMonitor construction
        self.front = NIC(sim, label="lb-front")
        self.front.on_receive = self._from_edge
        self.backs: List[NIC] = []
        self.replica_macs = list(replica_macs)
        for i in range(len(replica_macs)):
            back = NIC(sim, label=f"lb-back-{i}")
            back.on_receive = lambda frame, idx=i: self._from_replica(
                idx, frame)
            self.backs.append(back)

        #: Sticky flow table: (src_ip, src_port, dst_port) -> replica.
        self.conn_map: Dict[Tuple[str, int, int], int] = {}
        #: Defense steering overrides: /24 prefix -> quarantine replica.
        self.steer_map: Dict[str, int] = {}
        #: Edge shedding: /24 prefix -> TokenBucket applied to SYNs.
        self.edge_buckets: Dict[str, TokenBucket] = {}

        self.forwarded_in = 0
        self.forwarded_out = 0
        self.edge_shed = 0
        self.drops_no_replica = 0
        self.drops_not_vip = 0
        self.drops_unknown_client = 0
        self.drained_conns = 0
        self.rst_sent = 0
        self.probe_replies = 0
        #: Client IP -> MAC (seeded by the harness, like every ARP cache
        #: in the testbed).
        self.arp_map: Dict[str, MacAddr] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def learn(self, ip: str, mac: MacAddr) -> None:
        self.arp_map[ip] = mac

    def attach_front(self, medium) -> None:
        medium.attach(self.front)

    # ------------------------------------------------------------------
    # Edge -> replica
    # ------------------------------------------------------------------
    def _from_edge(self, frame: EthFrame) -> None:
        dgram = frame.payload
        if not isinstance(dgram, IPDatagram) or dgram.dst_ip != self.vip:
            self.drops_not_vip += 1
            return
        seg = dgram.payload
        if not isinstance(seg, TCPSegment):
            self.drops_not_vip += 1
            return
        is_syn = bool(seg.flags & FLAG_SYN) and not seg.flags & FLAG_ACK
        prefix = _prefix(dgram.src_ip)
        if is_syn:
            bucket = self.edge_buckets.get(prefix)
            if bucket is not None and not bucket.allow(self.sim.now):
                # Shed at the edge: the replica never sees this SYN, so
                # the ladder's lethal rungs have nothing to fire at.
                self.edge_shed += 1
                return
        key = (dgram.src_ip, seg.src_port, seg.dst_port)
        index = self.conn_map.get(key)
        if index is None or not self._healthy(index):
            index = self._steer(dgram.src_ip, seg.src_port, prefix)
            if index is None:
                self.drops_no_replica += 1
                return
            if is_syn:
                self.conn_map[key] = index
        self.forwarded_in += 1
        self._to_replica(index, dgram)

    def _healthy(self, index: int) -> bool:
        return self.health is None or self.health.healthy(index)

    def _steer(self, src_ip: str, src_port: int,
               prefix: str) -> Optional[int]:
        """Pick a replica for a new flow, deterministically."""
        override = self.steer_map.get(prefix)
        if override is not None and self._healthy(override):
            return override
        if self.health is None:
            candidates = range(len(self.backs))
        else:
            candidates = self.health.healthy_indices()
        best, best_weight = None, -1
        for index in candidates:
            weight = zlib.crc32(
                f"{src_ip}:{src_port}:{index}".encode())
            if weight > best_weight:
                best, best_weight = index, weight
        return best

    def _to_replica(self, index: int, dgram: IPDatagram) -> None:
        self.backs[index].send(EthFrame(
            self.backs[index].mac, self.replica_macs[index],
            ETHERTYPE_IP, dgram))

    # ------------------------------------------------------------------
    # Replica -> edge
    # ------------------------------------------------------------------
    def _from_replica(self, index: int, frame: EthFrame) -> None:
        dgram = frame.payload
        if not isinstance(dgram, IPDatagram):
            return
        if dgram.proto == IPPROTO_ICMP and dgram.dst_ip == PROBE_IP:
            echo = dgram.payload
            if isinstance(echo, IcmpEcho) and echo.kind == IcmpEcho.REPLY:
                self.probe_replies += 1
                if self.health is not None:
                    self.health.on_reply(index, echo.seq)
            return
        seg = dgram.payload
        if not isinstance(seg, TCPSegment):
            return
        if seg.flags & FLAG_RST:
            # The replica tore the flow down; unstick it so a client
            # retry re-steers fresh.
            self.conn_map.pop((dgram.dst_ip, seg.dst_port, seg.src_port),
                              None)
        mac = self.arp_map.get(dgram.dst_ip)
        if mac is None:
            # Spoofed source (SYN flood): exactly like the single-server
            # testbed, the reply has nowhere to go.
            self.drops_unknown_client += 1
            return
        self.forwarded_out += 1
        self.front.send(EthFrame(self.front.mac, mac, ETHERTYPE_IP, dgram))

    # ------------------------------------------------------------------
    # Health probes (sent for the HealthMonitor, which owns the timing)
    # ------------------------------------------------------------------
    def send_probe(self, index: int, seq: int) -> None:
        echo = IcmpEcho(IcmpEcho.REQUEST, ident=index, seq=seq)
        dgram = IPDatagram(PROBE_IP, self.vip, IPPROTO_ICMP, echo)
        self.backs[index].send(EthFrame(
            self.backs[index].mac, self.replica_macs[index],
            ETHERTYPE_IP, dgram))

    # ------------------------------------------------------------------
    # Failover: drain a dead replica
    # ------------------------------------------------------------------
    def drain(self, index: int) -> int:
        """Drop every sticky flow on ``index``; RST reachable clients.

        The forged RST (the flow's server-side endpoint, sequence numbers
        zero — the client engine accepts any RST) converts a silent
        blackhole into an immediate, retryable failure.  Returns the
        number of flows drained.
        """
        doomed = sorted(key for key, idx in self.conn_map.items()
                        if idx == index)
        for key in doomed:
            del self.conn_map[key]
            src_ip, src_port, dst_port = key
            mac = self.arp_map.get(src_ip)
            if mac is None:
                continue  # spoofed flood entry: nothing to notify
            seg = TCPSegment(dst_port, src_port, seq=0, ack=0,
                             flags=FLAG_RST)
            dgram = IPDatagram(self.vip, src_ip, IPPROTO_TCP, seg)
            self.front.send(EthFrame(self.front.mac, mac, ETHERTYPE_IP,
                                     dgram))
            self.rst_sent += 1
        self.drained_conns += len(doomed)
        return len(doomed)

    # ------------------------------------------------------------------
    def per_replica_flows(self) -> List[int]:
        counts = [0] * len(self.backs)
        for index in self.conn_map.values():
            counts[index] += 1
        return counts

    def summary(self) -> Dict:
        """Digest-stable view of the dispatcher state."""
        return {
            "forwarded_in": self.forwarded_in,
            "forwarded_out": self.forwarded_out,
            "edge_shed": self.edge_shed,
            "drops_no_replica": self.drops_no_replica,
            "drops_not_vip": self.drops_not_vip,
            "drops_unknown_client": self.drops_unknown_client,
            "drained_conns": self.drained_conns,
            "rst_sent": self.rst_sent,
            "probe_replies": self.probe_replies,
            "flows": len(self.conn_map),
            "flows_per_replica": self.per_replica_flows(),
            "steer": {p: i for p, i in sorted(self.steer_map.items())},
            "edge_buckets": sorted(self.edge_buckets),
        }
