"""One Escort replica behind the dispatcher.

Each replica is a full :class:`~repro.server.webserver.ScoutWebServer`
configured with the *cluster VIP* as its local address (MAC-level steering:
the dispatcher never rewrites datagrams, so every replica must believe it
is the VIP), connected to its backside dispatcher NIC by a point-to-point
link.  A zero-probability :class:`~repro.net.fault.FaultInjector` sits on
that link as the replica's **fault gate**: chaos scenarios crash the
replica, partition it from the dispatcher, or flap its link purely by
driving ``set_link`` — the server object itself is never mutated, which is
what keeps a crashed replica's state deterministic and digestable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.fault import FaultInjector
from repro.net.link import Link
from repro.server.webserver import ScoutWebServer
from repro.workload.cgi_attacker import busy_cgi, runaway_cgi


class Replica:
    """One cluster member: server + backside link + fault gate."""

    def __init__(self, sim, index: int, vip: str, *,
                 policies: Optional[List] = None,
                 costs=None, documents=None):
        self.sim = sim
        self.index = index
        self.vip = vip
        self.policies = policies or []

        listen_specs = None
        for policy in self.policies:
            specs = policy.listen_specs()
            if specs is not None:
                listen_specs = (listen_specs or []) + list(specs)

        self.server = ScoutWebServer(
            sim, accounting=True, protection_domains=False,
            ip=vip, documents=documents,
            cgi_scripts={"loop": runaway_cgi, "busy": busy_cgi},
            listen_specs=listen_specs, costs=costs)
        for policy in self.policies:
            policy.apply(self.server)

        #: The point-to-point wire to the dispatcher's backside NIC.  The
        #: dispatcher NIC attaches first (the harness wires it), then the
        #: fault gate interposes on the server side.
        self.link = Link(sim)
        self.gate = FaultInjector(sim, self.link)

        self.crashes = 0
        self.restores = 0
        self.flushed_paths = 0

    # ------------------------------------------------------------------
    def wire(self, back_nic) -> None:
        """Connect dispatcher backside NIC <-> fault gate <-> server NIC."""
        self.link.attach(back_nic)
        # Interpose both directions on the server side: a downed gate then
        # cuts the replica off completely (crash/partition look identical
        # from the wire, which is the point).
        self.gate.attach(self.server.nic, receive=True)

    def seed_arp(self, ip: str, mac) -> None:
        self.server.seed_arp(ip, mac)

    # ------------------------------------------------------------------
    # Chaos actuators
    # ------------------------------------------------------------------
    @property
    def link_up(self) -> bool:
        return self.gate.link_up

    def crash(self) -> None:
        """Fail-stop: the replica stops answering anything."""
        if not self.gate.link_up:
            return
        self.crashes += 1
        self.gate.set_link(False)

    def partition(self) -> None:
        """Cut the dispatcher link (indistinguishable from a crash on the
        wire; the distinction is what restore does)."""
        self.gate.set_link(False)

    def heal_partition(self) -> None:
        """Reconnect after a partition: connection state survived."""
        self.gate.set_link(True)

    def restore(self) -> None:
        """Cold restart after a crash: flush connection state, reconnect.

        A rebooted machine has no TCP state, so every live connection path
        is forcibly reclaimed (never gracefully: nothing ran during the
        outage) before the link comes back.
        """
        self.restores += 1
        self.flushed_paths += self._flush_connections()
        self.gate.set_link(True)

    def _flush_connections(self) -> int:
        server = self.server
        flushed = 0
        for key in sorted(server.tcp.conn_table):
            path = server.tcp.conn_table[key]
            if path is None or path.destroyed:
                continue
            server.path_manager.path_kill(path)
            flushed += 1
        server.tcp.conn_table.clear()
        return flushed

    # ------------------------------------------------------------------
    def describe(self) -> str:
        state = "up" if self.gate.link_up else "DOWN"
        return (f"replica-{self.index} [{state}] "
                f"{self.server.describe()}")
