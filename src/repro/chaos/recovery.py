"""Graceful-degradation recovery: rebuild what a crash destroyed.

When a protection domain dies — injected chaos, a watchdog teardown, or a
cascade from ``destroy_domain`` — every path crossing it dies too (the
paper's teardown rule), which for the web server means the *listening*
paths are gone: the machine is up but the service is down.  The kernel
deliberately has no undo; what it does have is the same configuration
machinery that built the server at boot.  :class:`DomainRecovery` replays
exactly that: create a fresh domain for each dead one, re-point the
affected modules at it, discard path references that died with the crash,
and re-run the affected modules' ``init_module`` so the listeners (and
TCP's master event) come back.  Connections that died stay dead — clients
retry; what recovers is the *service*.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.sim.clock import ticks_to_seconds
from repro.kernel.acl import Role
from repro.kernel.domain import ProtectionDomain

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.webserver import ScoutWebServer

#: Modules holding device ends of the chain get the driver role back.
DRIVER_MODULES = frozenset({"eth", "scsi"})


class DomainRecovery:
    """Rebuilds crashed protection domains and resurrects the listeners.

    Wire :meth:`probe` / :meth:`revive` into the watchdog's
    ``service_probe`` / ``service_revive`` hooks, or call :meth:`revive`
    directly from a scenario after injecting a domain crash.
    """

    def __init__(self, server: "ScoutWebServer"):
        self.server = server
        self.recoveries = 0
        self.domains_rebuilt = 0
        self.log: List[str] = []

    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """Is the service alive (at least one live listening path)?"""
        return any(not p.destroyed for p in self.server.http.passive_paths)

    # ------------------------------------------------------------------
    def revive(self) -> None:
        """Rebuild dead domains and restart lost module services."""
        server = self.server
        kernel = server.kernel
        self.recoveries += 1

        # 1. One fresh domain per dead one; modules that shared a domain
        #    keep sharing its replacement.
        replacement: Dict[ProtectionDomain, ProtectionDomain] = {}
        for module in server.graph.modules():
            old = module.pd
            if not old.destroyed:
                continue
            if old not in replacement:
                role = (Role.driver() if module.name in DRIVER_MODULES
                        else Role.module())
                replacement[old] = kernel.create_domain(old.name, role=role)
                self.domains_rebuilt += 1
                self._note(f"rebuilt domain {old.name}")
            module.pd = replacement[old]
            module.pd.module_names.append(module.name)

        # 2. Drop references to paths that died with the crash.  (Their
        #    kernel resources were already reclaimed by the kill; these are
        #    just the modules' own bookkeeping lists.)
        http = server.http
        dead_listeners = [p for p in http.passive_paths if p.destroyed]
        http.passive_paths = [p for p in http.passive_paths
                              if not p.destroyed]
        if dead_listeners:
            self._note(f"pruned {len(dead_listeners)} dead listener(s)")

        # 3. Restart lost services on fresh threads in the (possibly new)
        #    module domains.  TCP's master event died if TCP's old domain
        #    did; the listeners died if anything on their chain did.
        tcp = server.tcp
        if tcp.master_event is None or tcp.master_event.cancelled:
            kernel.spawn_thread(tcp.pd, tcp.init_module(),
                                name="recover-tcp")
            self._note("restarted tcp master event")
        if not http.passive_paths:
            kernel.spawn_thread(http.pd, http.init_module(),
                                name="recover-http")
            self._note("recreated listening paths")

    # ------------------------------------------------------------------
    def _note(self, msg: str) -> None:
        self.log.append(
            f"[{ticks_to_seconds(self.server.sim.now):.6f}s] {msg}")
