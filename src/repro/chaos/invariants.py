"""Continuous invariant checking — the chaos oracle.

The paper's accounting claims are conservation laws, and conservation laws
are exactly what chaos testing needs an oracle for: whatever faults are
injected, these must still hold.  The checker asserts:

* **Cycle conservation** — every cycle the CPU accounts (busy + idle +
  interrupt) was charged to some owner, and each owner's ``usage.cycles``
  equals the charges the checker observed flowing to it.
* **Reclamation on death** — after any ``kill_owner``, the owner's tracking
  lists are empty and its page/stack counters are zero: nothing a dead path
  or domain held survives it.
* **Page consistency** — every allocated page is charged to a live owner
  and sits in that owner's ``page_list``.
* **No orphans** — no armed softclock event and no live thread belongs to a
  destroyed owner; every IOBuffer lock an owner holds refers to a live
  (non-freed) buffer that knows about the lock.

The checker is a pure observer: it hangs off the CPU's charge listeners and
the kernel's kill listeners and never yields cycles itself, so enabling it
cannot perturb the simulation it is checking (it stands outside the
machine, like the logic analyzer on the paper's testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.sim.clock import seconds_to_ticks, ticks_to_seconds
from repro.kernel.kernel import Kernel, KillReport
from repro.kernel.owner import Owner


@dataclass
class Violation:
    """One invariant violation, timestamped in simulated seconds."""

    at_s: float
    rule: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.at_s:.6f}s] {self.rule}: {self.subject} — {self.detail}"


class InvariantChecker:
    """Checks the kernel's conservation invariants, continuously.

    Construct it, then either call :meth:`check_now` at interesting moments
    or :meth:`start` for a periodic sweep.  Violations are deduplicated by
    ``(rule, subject)`` so a persistent breakage reports once.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.violations: List[Violation] = []
        self.checks_run = 0
        self._seen: Set[tuple] = set()
        self._running = False

        # Cycle-flow observation: every charge the CPU makes, by owner.
        # The checker can attach mid-run, so totals are compared as deltas
        # from the CPU's counters at attach time.
        cpu = kernel.cpu
        self._accounted_at_attach = (cpu.busy_cycles + cpu.idle_cycles
                                     + cpu.interrupt_cycles)
        self._charged_total = 0
        self._observed: Dict[Owner, int] = {}
        self._baseline: Dict[Owner, int] = {}
        kernel.cpu.charge_listeners.append(self._on_charge)
        kernel.kill_listeners.append(self._on_kill)

        # Owners the structural sweeps walk.  Seeded with the owners that
        # exist now; grows as charges reveal new ones.
        self._owners: Set[Owner] = {kernel.kernel_owner, kernel.idle_owner}
        self._owners.update(kernel.domains)

    # ------------------------------------------------------------------
    # Observation hooks
    # ------------------------------------------------------------------
    def _on_charge(self, owner, cycles: int) -> None:
        self._charged_total += cycles
        if owner is None:
            return
        if owner not in self._observed:
            # The listener fires *after* charge_cycles, so the owner's
            # counter already includes this charge; anything before it is
            # pre-observation history.
            self._baseline[owner] = owner.usage.cycles - cycles
            self._observed[owner] = 0
        self._observed[owner] += cycles
        if isinstance(owner, Owner):
            self._owners.add(owner)

    def _on_kill(self, owner: Owner, report: KillReport) -> None:
        """A kill just completed: its postconditions must hold *now*."""
        self.checks_run += 1
        if not owner.destroyed:
            self._violate("reclamation", owner.name,
                          "kill completed but owner not marked destroyed")
        leftover = owner.tracked_object_count()
        if leftover:
            self._violate("reclamation", owner.name,
                          f"{leftover} tracked objects survived the kill")
        if owner.usage.pages != 0:
            self._violate("reclamation", owner.name,
                          f"usage.pages == {owner.usage.pages} after kill")
        if owner.usage.stacks != 0:
            self._violate("reclamation", owner.name,
                          f"usage.stacks == {owner.usage.stacks} after kill")
        if owner.usage.events != 0 or owner.usage.semaphores != 0:
            self._violate("reclamation", owner.name,
                          f"events={owner.usage.events} "
                          f"semaphores={owner.usage.semaphores} after kill")

    # ------------------------------------------------------------------
    # Structural sweeps
    # ------------------------------------------------------------------
    def check_now(self) -> List[Violation]:
        """Run every invariant check; returns violations found this sweep."""
        before = len(self.violations)
        self._check_cycle_conservation()
        self._check_pages()
        self._check_orphans()
        self._check_iobuffer_locks()
        self.checks_run += 1
        return self.violations[before:]

    def _check_cycle_conservation(self) -> None:
        cpu = self.kernel.cpu
        accounted = (cpu.busy_cycles + cpu.idle_cycles
                     + cpu.interrupt_cycles) - self._accounted_at_attach
        if self._charged_total != accounted:
            self._violate(
                "cycle-conservation", "cpu",
                f"charged {self._charged_total} != accounted {accounted} "
                f"(busy {cpu.busy_cycles} + idle {cpu.idle_cycles} + "
                f"intr {cpu.interrupt_cycles})")
        for owner, observed in self._observed.items():
            expect = self._baseline[owner] + observed
            if owner.usage.cycles != expect:
                self._violate(
                    "cycle-conservation", getattr(owner, "name", repr(owner)),
                    f"usage.cycles {owner.usage.cycles} != observed {expect}")

    def _check_pages(self) -> None:
        for page in self.kernel.allocator.allocated:
            owner = page.owner
            if owner.destroyed:
                self._violate("page-consistency", owner.name,
                              f"page {page.page_id} charged to a dead owner")
            elif page not in owner.page_list:
                self._violate("page-consistency", owner.name,
                              f"page {page.page_id} missing from page_list")

    def _check_orphans(self) -> None:
        # Armed events of dead owners: kill_owner cancels everything in the
        # owner's event_list, so anything still ticking for a dead owner
        # escaped the tracking lists.
        for _due, _seq, ev in self.kernel.softclock._wheel:
            if not ev.cancelled and ev.owner.destroyed:
                self._violate("orphan-event", ev.name,
                              f"armed event of dead owner {ev.owner.name}")
        for owner in list(self._owners):
            if not owner.destroyed:
                continue
            for thread in list(owner.thread_list):
                if thread.alive:
                    self._violate("orphan-thread", thread.name,
                                  f"live thread of dead owner {owner.name}")

    def _check_iobuffer_locks(self) -> None:
        for owner in list(self._owners):
            for lock in list(owner.iobuffer_locks):
                buf = lock.buffer
                if buf.freed:
                    self._violate("iobuf-lock", owner.name,
                                  f"holds a lock on freed buf {buf.buf_id}")
                elif buf.locks.get(owner) is not lock:
                    self._violate("iobuf-lock", owner.name,
                                  f"lock on buf {buf.buf_id} not registered "
                                  "with the buffer")

    # ------------------------------------------------------------------
    def _violate(self, rule: str, subject: str, detail: str) -> None:
        key = (rule, subject)
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(Violation(
            at_s=ticks_to_seconds(self.kernel.sim.now),
            rule=rule, subject=subject, detail=detail))

    # ------------------------------------------------------------------
    # Periodic operation
    # ------------------------------------------------------------------
    def start(self, period_s: float = 0.05) -> None:
        """Sweep every ``period_s`` simulated seconds until :meth:`stop`."""
        if self._running:
            return
        self._running = True
        period = seconds_to_ticks(period_s)

        def sweep() -> None:
            if not self._running:
                return
            self.check_now()
            self.kernel.sim.schedule(period, sweep)

        self.kernel.sim.schedule(period, sweep)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        if self.ok:
            return (f"invariants: OK ({self.checks_run} checks, "
                    f"0 violations)")
        lines = [f"invariants: {len(self.violations)} violation(s) "
                 f"in {self.checks_run} checks"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)
