"""The kernel watchdog: detect, kill, back off, recover.

Escort's static defences (runtime limits, per-subnet path quotas) each
target one known attack.  The watchdog is the backstop for everything
else: a periodic kernel scan that watches *symptoms* — an owner burning an
outsized share of the CPU window, an owner hoarding pages, a thread that
stays on the processor across scans without finishing, a page pool running
dry — and responds with an escalating ladder:

1. **pathKill** the offending owner (a path dies; the server lives) —
   unless an adaptive :mod:`repro.defense` controller is attached and
   absorbs the first offense non-lethally (throttle + ladder escalation);
2. on repeat offenses from the same family of owners, **escalate** to
   admission-control shedding for an exponentially growing backoff window
   (new work is rejected cheaply while the kernel digests the damage);
3. non-privileged **domains** that misbehave are **rolled back** to their
   last known-good snapshot when a
   :class:`~repro.snapshot.rollback.DomainSnapshotter` is attached — only
   objects created since the snapshot are reclaimed, cycle accounting is
   never rewound — and torn down whole when no snapshot helps (or the
   per-domain rollback budget is spent);
4. the privileged domain and the kernel itself are never killed — the
   watchdog sheds and logs instead.

Snapshots are taken during the scan itself, and only of domains that look
healthy *this window* (no offense logged, under half the cycle budget), so
a wedged state is never captured as a rollback target.

Every detection, kill, escalation, and verified recovery is logged as a
:class:`WatchdogAction`, so tests can assert the full
detect → kill → recover cycle actually happened.  The scan itself is
charged to the kernel owner (``scan_cost_cycles`` per sweep) — the
watchdog lives inside the machine and pays for its cycles, unlike the
invariant checker, which observes from outside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.clock import (
    SERVER_CYCLE_HZ,
    seconds_to_ticks,
    ticks_to_seconds,
)
from repro.sim.cpu import Interrupt, SimThread
from repro.kernel.domain import ProtectionDomain
from repro.kernel.kernel import Kernel, KillReport
from repro.kernel.owner import Owner, OwnerType


@dataclass
class WatchdogAction:
    """One entry in the watchdog's action log."""

    at_s: float
    kind: str       # detect | kill | rollback | defend | escalate | recover | shed-on | shed-off | fault
    subject: str
    detail: str = ""

    def __str__(self) -> str:
        out = f"[{self.at_s:.6f}s] {self.kind}: {self.subject}"
        return f"{out} — {self.detail}" if self.detail else out


class Watchdog:
    """Periodic kernel scan with an escalating kill/shed response.

    Parameters
    ----------
    period_s:
        Scan period in simulated seconds.
    cycle_budget_fraction:
        An owner consuming more than this fraction of one scan window's
        CPU cycles is flagged (0.5 = half the machine).
    page_budget:
        An owner holding more pages than this is flagged.
    stuck_scans:
        A thread observed on the CPU for this many consecutive scans
        without leaving is declared non-progressing.
    escalate_after:
        Offenses from the same owner-name family before escalating to
        shedding.
    backoff_s / backoff_max_s:
        Initial shedding window; doubles per escalation up to the max.
    shed_on_free_pages / shed_off_free_pages:
        Hysteresis thresholds on the page pool for saturation shedding.
    service_probe / service_revive:
        Optional liveness hook: when ``service_probe()`` goes false the
        watchdog logs a detection and calls ``service_revive()`` (wired to
        :class:`repro.chaos.recovery.DomainRecovery` by the scenarios).
    snapshotter / rollback_limit:
        Optional :class:`~repro.snapshot.rollback.DomainSnapshotter`.
        When attached, a misbehaving domain is first rolled back to its
        last good snapshot (at most ``rollback_limit`` times per domain)
        and only torn down when rollback is unavailable or reclaims
        nothing.
    """

    def __init__(self, kernel: Kernel,
                 period_s: float = 0.05,
                 cycle_budget_fraction: float = 0.5,
                 page_budget: int = 1024,
                 stuck_scans: int = 3,
                 escalate_after: int = 2,
                 backoff_s: float = 0.05,
                 backoff_max_s: float = 0.8,
                 scan_cost_cycles: int = 2_000,
                 shed_on_free_pages: int = 64,
                 shed_off_free_pages: int = 256,
                 service_probe: Optional[Callable[[], bool]] = None,
                 service_revive: Optional[Callable[[], None]] = None,
                 snapshotter=None,
                 rollback_limit: int = 1):
        self.kernel = kernel
        self.period_s = period_s
        self.cycle_budget = int(cycle_budget_fraction
                                * period_s * SERVER_CYCLE_HZ)
        self.page_budget = page_budget
        self.stuck_scans = stuck_scans
        self.escalate_after = escalate_after
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.scan_cost_cycles = scan_cost_cycles
        self.shed_on_free_pages = shed_on_free_pages
        self.shed_off_free_pages = shed_off_free_pages
        self.service_probe = service_probe
        self.service_revive = service_revive
        self.snapshotter = snapshotter
        self.rollback_limit = rollback_limit
        #: Optional adaptive :class:`~repro.defense.DefenseController`: a
        #: rung between rollback and pathKill.  A first offense the
        #: controller can absorb (throttle/contain) avoids the kill; the
        #: kill stays the final rung for repeat offenders.
        self.defense_controller = None

        self.log: List[WatchdogAction] = []
        self.scans = 0
        self.kills = 0
        self.escalations = 0
        self.rollbacks = 0
        self._rollbacks_by_domain: Dict[str, int] = {}
        self._offended_names: set = set()
        self._running = False
        #: Attached :class:`~repro.obs.session.ObsSession`, if any — a
        #: pure observer notified per log entry and per scan.
        self.obs = None

        # Per-scan-window cycle observation.
        self._window: Dict[object, int] = {}
        # Same-thread-on-CPU streak for progress detection.
        self._last_thread: Optional[SimThread] = None
        self._streak = 0
        # Escalation state per owner-name family ("conn", "pd", ...).
        self._offenses: Dict[str, int] = {}
        self._family_backoff: Dict[str, float] = {}
        self._shed_until: int = 0        # sim tick; 0 = not shedding
        self._saturation_shed = False
        # Kills awaiting reclamation verification.  A dict used as an
        # ordered set: recoveries are verified (and logged) in kill
        # order, keeping the log deterministic run-to-run.
        self._pending_recovery: Dict[Owner, None] = {}
        # Service-liveness state: down since which scan (None = up).
        self._service_down_scan: Optional[int] = None

        kernel.attach_watchdog(self)
        kernel.cpu.charge_listeners.append(self._on_charge)

    # ------------------------------------------------------------------
    # Notification hooks (called by the kernel)
    # ------------------------------------------------------------------
    def _on_charge(self, owner, cycles: int) -> None:
        if owner is not None:
            self._window[owner] = self._window.get(owner, 0) + cycles

    def note_kill(self, owner: Owner, report: KillReport) -> None:
        """The kernel destroyed an owner (any cause, not just ours)."""
        self.kills += 1
        self._log("kill", owner.name,
                  f"reclaimed {report.pages}p/{report.threads}t/"
                  f"{report.events}e (cost {report.cycles} cyc)")
        self._pending_recovery[owner] = None

    def note_fault(self, thread: SimThread, exc: BaseException,
                   contained: bool) -> None:
        """A thread body raised; the kernel is containing (or not)."""
        owner_name = getattr(thread.owner, "name", "?")
        status = "contained" if contained else "NOT containable"
        self._log("fault", thread.name,
                  f"{type(exc).__name__} in {owner_name} ({status})")
        if contained:
            # The kill that follows arrives via note_kill.
            self._log("detect", owner_name,
                      f"faulting owner ({type(exc).__name__})")

    # ------------------------------------------------------------------
    # The scan loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.kernel.sim.schedule(seconds_to_ticks(self.period_s), self._scan)

    def stop(self) -> None:
        self._running = False

    def _scan(self) -> None:
        if not self._running:
            return
        self.scans += 1
        offended = False
        self._offended_names.clear()

        offended |= self._check_cycle_budgets()
        offended |= self._check_page_budgets()
        offended |= self._check_progress()
        self._check_saturation()
        self._check_backoff_expiry()
        self._verify_recoveries()
        self._check_service()
        self._take_snapshots()

        if not offended and self._offenses:
            # A clean scan cools the escalation state: families that have
            # stopped offending get a fresh start.
            self._offenses.clear()
            self._family_backoff.clear()

        self._window.clear()
        if self.obs is not None:
            self.obs.on_watchdog_scan(self)
        # The scan walked kernel tables: charge it like any other
        # interrupt-level kernel work.
        self.kernel.cpu.post_interrupt(Interrupt(
            [(self.kernel.kernel_owner, self.scan_cost_cycles)],
            label="watchdog-scan"))
        self.kernel.sim.schedule(seconds_to_ticks(self.period_s), self._scan)

    # -- detectors ------------------------------------------------------
    def _check_cycle_budgets(self) -> bool:
        hit = False
        for owner, cycles in list(self._window.items()):
            if cycles <= self.cycle_budget:
                continue
            if not self._is_killable(owner):
                continue
            hit = True
            self._log("detect", owner.name,
                      f"{cycles} cycles this window "
                      f"(budget {self.cycle_budget})")
            self._respond(owner)
        return hit

    def _check_page_budgets(self) -> bool:
        hit = False
        for owner in list(self._window):
            if not self._is_killable(owner):
                continue
            pages = owner.usage.pages
            if pages > self.page_budget:
                hit = True
                self._log("detect", owner.name,
                          f"{pages} pages held (budget {self.page_budget})")
                self._respond(owner)
        return hit

    def _check_progress(self) -> bool:
        current = self.kernel.cpu.current
        if current is not None and current is self._last_thread:
            self._streak += 1
        else:
            self._last_thread = current
            self._streak = 1 if current is not None else 0
        if current is None or self._streak < self.stuck_scans:
            return False
        owner = current.owner
        if not self._is_killable(owner):
            return False
        self._log("detect", getattr(owner, "name", "?"),
                  f"thread {current.name} on CPU for "
                  f"{self._streak} consecutive scans")
        self._last_thread = None
        self._streak = 0
        self._respond(owner)
        return True

    def _check_saturation(self) -> None:
        free = self.kernel.allocator.free_pages
        if not self._saturation_shed and free <= self.shed_on_free_pages:
            self._saturation_shed = True
            self.kernel.set_shedding(True)
            self._log("shed-on", "kernel",
                      f"page pool saturated ({free} free)")
        elif self._saturation_shed and free >= self.shed_off_free_pages:
            self._saturation_shed = False
            if self.kernel.sim.now >= self._shed_until:
                self.kernel.set_shedding(False)
                self._log("shed-off", "kernel", f"pool recovered ({free} free)")

    def _check_backoff_expiry(self) -> None:
        if (self._shed_until and self.kernel.sim.now >= self._shed_until
                and not self._saturation_shed):
            self._shed_until = 0
            self.kernel.set_shedding(False)
            self._log("shed-off", "kernel", "backoff window expired")

    def _verify_recoveries(self) -> None:
        for owner in list(self._pending_recovery):
            if owner.destroyed and owner.tracked_object_count() == 0:
                self._pending_recovery.pop(owner, None)
                self._log("recover", owner.name,
                          "fully reclaimed; kernel state clean")

    def _take_snapshots(self) -> None:
        """Snapshot healthy-looking domains as future rollback targets.

        A domain that offended this scan, or that burned over half its
        cycle budget in this window, is *not* snapshotted — capturing a
        wedged state as "good" would make rollback worse than useless.
        """
        if self.snapshotter is None:
            return
        skip = set(self._offended_names)
        for pd in self.kernel.domains:
            if self._window.get(pd, 0) > self.cycle_budget // 2:
                skip.add(pd.name)
        self.snapshotter.observe(skip=skip)

    def _check_service(self) -> None:
        if self.service_probe is None:
            return
        if self.service_probe():
            if self._service_down_scan is not None:
                self._service_down_scan = None
                self._log("recover", "service", "listener back up")
            return
        first = self._service_down_scan is None
        if first:
            self._service_down_scan = self.scans
            self._log("detect", "service", "no live listening path")
        # Revive on the transition, then retry every few scans while the
        # service stays down (a revive takes effect asynchronously, on a
        # freshly spawned init thread).
        down_for = self.scans - (self._service_down_scan or self.scans)
        if self.service_revive is not None and (first or down_for % 4 == 0):
            self.service_revive()

    # -- response ladder ------------------------------------------------
    def _is_killable(self, owner) -> bool:
        return (isinstance(owner, Owner)
                and not owner.destroyed
                and owner.type not in (OwnerType.KERNEL, OwnerType.IDLE)
                and not getattr(owner, "privileged", False))

    @staticmethod
    def _family(owner: Owner) -> str:
        return owner.name.split("-", 1)[0]

    def _respond(self, owner: Owner) -> None:
        family = self._family(owner)
        offenses = self._offenses.get(family, 0) + 1
        self._offenses[family] = offenses
        self._offended_names.add(owner.name)

        if isinstance(owner, ProtectionDomain):
            if not self._try_rollback(owner) \
                    and not self._try_defend(owner, offenses):
                # Tearing down a domain kills its crossing paths too.
                self.kernel.destroy_domain(owner)
        elif not self._try_defend(owner, offenses):
            self.kernel.kill_owner(owner)

        if offenses >= self.escalate_after:
            # The family keeps offending: killing individuals is not
            # containing the source, so shed new admissions for a backoff
            # window that doubles with each escalation.
            backoff = self._family_backoff.get(family, self.backoff_s)
            self._family_backoff[family] = min(backoff * 2,
                                               self.backoff_max_s)
            until = self.kernel.sim.now + seconds_to_ticks(backoff)
            self._shed_until = max(self._shed_until, until)
            self.escalations += 1
            self.kernel.set_shedding(True)
            self._log("escalate", family,
                      f"offense #{offenses}: shedding for {backoff:.3f}s")

    def attach_defense(self, controller) -> None:
        """Insert an adaptive defense controller between rollback and
        kill.  ``controller.absorb(owner)`` returning True means the
        controller contained the offender non-lethally."""
        self.defense_controller = controller

    def _try_defend(self, owner: Owner, offenses: int) -> bool:
        """Offer the offender to the defense controller before killing.

        Only first offenses within a family are absorbable: once a family
        escalates, the kill rung stays final.  Returns True when the
        controller contained the owner.
        """
        if self.defense_controller is None:
            return False
        if offenses >= self.escalate_after:
            return False
        if not self.defense_controller.absorb(owner):
            return False
        self._log("defend", owner.name,
                  "absorbed by adaptive defense (throttled)")
        return True

    def _try_rollback(self, pd: ProtectionDomain) -> bool:
        """Roll a misbehaving domain back to its last good snapshot.

        Returns True when rollback reclaimed something (the gentler rung
        handled it); False means fall through to teardown — no snapshotter,
        per-domain budget spent, no snapshot, or the rollback reclaimed
        nothing (the wedge predates every snapshot we hold).
        """
        if self.snapshotter is None:
            return False
        if self._rollbacks_by_domain.get(pd.name, 0) >= self.rollback_limit:
            return False
        if not self.snapshotter.can_rollback(pd):
            return False
        report = self.snapshotter.rollback(pd)
        if report is None or not report.reclaimed_anything:
            return False
        self.rollbacks += 1
        self._rollbacks_by_domain[pd.name] = \
            self._rollbacks_by_domain.get(pd.name, 0) + 1
        self._log("rollback", pd.name,
                  f"to snapshot at "
                  f"{ticks_to_seconds(report.snapshot_tick):.6f}s: killed "
                  f"{len(report.paths_killed)} path(s), "
                  f"{report.threads_killed} thread(s), cancelled "
                  f"{report.events_cancelled} event(s), freed "
                  f"{report.heap_allocs_freed} alloc(s)")
        return True

    # ------------------------------------------------------------------
    def _log(self, kind: str, subject: str, detail: str = "") -> None:
        action = WatchdogAction(
            at_s=ticks_to_seconds(self.kernel.sim.now),
            kind=kind, subject=subject, detail=detail)
        self.log.append(action)
        if self.obs is not None:
            self.obs.on_watchdog_action(self, action)

    def actions(self, kind: Optional[str] = None) -> List[WatchdogAction]:
        if kind is None:
            return list(self.log)
        return [a for a in self.log if a.kind == kind]

    def saw_recovery_cycle(self) -> bool:
        """True when the log shows ≥1 full detect → kill → recover cycle."""
        detects = self.actions("detect")
        kills = self.actions("kill")
        recovers = self.actions("recover")
        if not (detects and kills and recovers):
            return False
        return recovers[-1].at_s >= detects[0].at_s

    def summary(self) -> str:
        counts: Dict[str, int] = {}
        for a in self.log:
            counts[a.kind] = counts.get(a.kind, 0) + 1
        body = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"watchdog: {self.scans} scans, {body or 'no actions'}"
