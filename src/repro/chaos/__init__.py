"""Chaos engineering for the Escort reproduction.

The paper's claim is not "Escort is fast" but "Escort *stays up and fair*
under hostile load".  This package turns that claim into a continuously
checked property:

* :mod:`repro.chaos.schedule` — seeded, deterministic fault schedules, so
  every chaos run is replayable from ``(scenario, seed)`` alone;
* :mod:`repro.chaos.inject` — injectors for every layer of the simulated
  machine: module exceptions mid-path, page and IOBuffer allocation
  failures, stuck threads inside a protection domain, softclock skew, and
  link flaps;
* :mod:`repro.chaos.watchdog` — the kernel watchdog: detects owners that
  blow their cycle/page budgets or threads that stop making progress, and
  responds with an escalating pathKill → domain-teardown ladder with
  exponential backoff, plus admission-control shedding when the kernel
  saturates (graceful degradation instead of collapse);
* :mod:`repro.chaos.invariants` — the invariant checker: asserts the
  paper's conservation properties (cycles charged == cycles consumed,
  everything a dead owner held is reclaimed, no orphaned events or
  threads) *during* every chaos run;
* :mod:`repro.chaos.recovery` — graceful-degradation recovery: rebuilds a
  crashed protection domain and resurrects the listening service;
* :mod:`repro.chaos.scenarios` — canned, CLI-runnable chaos scenarios
  (``python -m repro chaos --list``).
"""

from repro.chaos.schedule import (
    ALL_FAULT_KINDS,
    CLOCK_SKEW,
    DOMAIN_CRASH,
    IOBUF_FAIL,
    LINK_FLAP,
    MODULE_EXCEPTION,
    PAGE_PRESSURE,
    STUCK_THREAD,
    FaultEvent,
    FaultSchedule,
)
from repro.chaos.inject import ChaosFault, ChaosInjector
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.recovery import DomainRecovery
from repro.chaos.scenarios import (
    ChaosReport,
    ChaosRun,
    ChaosScenario,
    SCENARIOS,
    list_scenarios,
    run_scenario,
)
from repro.chaos.watchdog import Watchdog, WatchdogAction

__all__ = [
    "ALL_FAULT_KINDS", "CLOCK_SKEW", "DOMAIN_CRASH", "IOBUF_FAIL",
    "LINK_FLAP", "MODULE_EXCEPTION", "PAGE_PRESSURE", "STUCK_THREAD",
    "FaultEvent", "FaultSchedule",
    "ChaosFault", "ChaosInjector",
    "InvariantChecker", "Violation",
    "DomainRecovery",
    "ChaosReport", "ChaosRun", "ChaosScenario", "SCENARIOS",
    "list_scenarios", "run_scenario",
    "Watchdog", "WatchdogAction",
]
