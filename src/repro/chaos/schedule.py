"""Deterministic fault schedules.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent` objects,
each saying *when* (seconds after arming), *what kind* of fault, *where*
(a module or domain name), *how long*, and *how hard*.  Schedules are
either written out explicitly (the canned scenarios do this for their
signature faults) or generated from a seed with :meth:`FaultSchedule.random`
— the same ``(seed, duration, kinds)`` always produces the same schedule,
so a failing chaos run is replayed exactly by rerunning with its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

# -- fault kinds (one per layer of the simulated machine) ---------------
MODULE_EXCEPTION = "module-exception"   # module raises mid-path
PAGE_PRESSURE = "page-pressure"         # page allocator runs dry
IOBUF_FAIL = "iobuf-fail"               # IOBuffer allocations fail
STUCK_THREAD = "stuck-thread"           # a domain thread stops yielding
CLOCK_SKEW = "clock-skew"               # softclock runs slow/fast
LINK_FLAP = "link-flap"                 # the wire goes dark
DOMAIN_CRASH = "domain-crash"           # a protection domain dies outright
NET_DEGRADE = "net-degrade"             # drop/reorder/corrupt rates spike

ALL_FAULT_KINDS = (MODULE_EXCEPTION, PAGE_PRESSURE, IOBUF_FAIL,
                   STUCK_THREAD, CLOCK_SKEW, LINK_FLAP, DOMAIN_CRASH)

#: What the resilience campaign generator may draw from: the canned kinds
#: plus the network-degradation window (kept out of ALL_FAULT_KINDS so
#: pre-existing ``FaultSchedule.random`` seeds keep producing the same
#: schedules they always did).
GENERATOR_FAULT_KINDS = ALL_FAULT_KINDS + (NET_DEGRADE,)

#: Modules whose forward path random schedules may break (leaf-ish modules
#: on the active-path chain — exceptions here hit one connection, which is
#: exactly the fault-isolation property under test).
DEFAULT_EXCEPTION_TARGETS = ("http", "fs", "scsi")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``magnitude`` is kind-specific: a probability for ``iobuf-fail`` and
    ``module-exception``, a fraction of free pages for ``page-pressure``,
    a period multiplier for ``clock-skew``, ignored elsewhere.
    """

    at_s: float
    kind: str
    target: str = ""
    duration_s: float = 0.0
    magnitude: float = 1.0

    def describe(self) -> str:
        parts = [f"t+{self.at_s:.3f}s {self.kind}"]
        if self.target:
            parts.append(f"@{self.target}")
        if self.duration_s:
            parts.append(f"for {self.duration_s:.3f}s")
        if self.magnitude != 1.0:
            parts.append(f"x{self.magnitude:g}")
        return " ".join(parts)

    # -- serialization (the resilience campaign's wire format) ----------
    def to_jsonable(self) -> Dict:
        """A plain dict round-trippable through JSON."""
        return {"at_s": self.at_s, "kind": self.kind, "target": self.target,
                "duration_s": self.duration_s, "magnitude": self.magnitude}

    @classmethod
    def from_jsonable(cls, payload: Dict) -> "FaultEvent":
        return cls(at_s=float(payload["at_s"]), kind=payload["kind"],
                   target=payload.get("target", ""),
                   duration_s=float(payload.get("duration_s", 0.0)),
                   magnitude=float(payload.get("magnitude", 1.0)))

    def replaced(self, **changes) -> "FaultEvent":
        """A copy with ``changes`` applied (the mutation hook shrinking
        uses to reduce one parameter at a time)."""
        fields = self.to_jsonable()
        fields.update(changes)
        return FaultEvent(**fields)


class FaultSchedule:
    """An ordered, replayable list of fault events plus its seed.

    The seed also drives the *probabilistic* injectors (e.g. per-call
    IOBuffer failure rolls), so the whole chaos run is a pure function of
    the schedule.
    """

    def __init__(self, events: Iterable[FaultEvent], seed: int = 0):
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at_s)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def describe(self) -> str:
        lines = [f"fault schedule (seed={self.seed}, {len(self.events)} events)"]
        lines += [f"  {ev.describe()}" for ev in self.events]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialization + mutation hooks (what makes generated schedules
    # first-class run specs and delta-debuggable)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict:
        """A plain JSON-able payload; ``from_jsonable`` inverts it."""
        return {"seed": self.seed,
                "events": [ev.to_jsonable() for ev in self.events]}

    @classmethod
    def from_jsonable(cls, payload: Dict) -> "FaultSchedule":
        return cls([FaultEvent.from_jsonable(e) for e in payload["events"]],
                   seed=int(payload.get("seed", 0)))

    def without(self, indices) -> "FaultSchedule":
        """A new schedule with the events at ``indices`` removed.

        Indices refer to the sorted event order (what ``__iter__`` yields);
        the schedule's seed — and therefore the probabilistic injector
        streams — is preserved, so deleting an event changes exactly the
        faults that event caused plus the RNG rolls it consumed.
        """
        drop = set(indices)
        return FaultSchedule(
            [ev for i, ev in enumerate(self.events) if i not in drop],
            seed=self.seed)

    def with_event(self, index: int, **changes) -> "FaultSchedule":
        """A new schedule with event ``index`` replaced field-wise (the
        per-entry shrinking hook: reduce a magnitude, shorten a duration,
        move a fault earlier)."""
        events = list(self.events)
        events[index] = events[index].replaced(**changes)
        return FaultSchedule(events, seed=self.seed)

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, seed: int, duration_s: float,
               kinds: Sequence[str] = ALL_FAULT_KINDS,
               rate_per_second: float = 3.0,
               exception_targets: Sequence[str] = DEFAULT_EXCEPTION_TARGETS,
               crash_targets: Sequence[str] = ()) -> "FaultSchedule":
        """Generate a deterministic schedule from ``seed``.

        ``rate_per_second`` sets the average fault density over the chaos
        window; each event's kind, target, duration, and magnitude are
        drawn from the seeded RNG.  ``domain-crash`` events are only
        emitted when ``crash_targets`` names candidate domains.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        kinds = [k for k in kinds
                 if k != DOMAIN_CRASH or crash_targets]
        if not kinds:
            raise ValueError("no fault kinds to schedule")
        rng = random.Random(seed)
        n = max(1, int(duration_s * rate_per_second))
        events = []
        for _ in range(n):
            kind = rng.choice(kinds)
            at = rng.uniform(0.0, duration_s)
            target = ""
            duration = 0.0
            magnitude = 1.0
            if kind == MODULE_EXCEPTION:
                target = rng.choice(list(exception_targets))
                duration = rng.uniform(0.02, 0.15)
                magnitude = rng.uniform(0.5, 1.0)   # per-call raise prob.
            elif kind == PAGE_PRESSURE:
                duration = rng.uniform(0.05, 0.3)
                magnitude = rng.uniform(0.8, 0.98)  # fraction of free pages
            elif kind == IOBUF_FAIL:
                duration = rng.uniform(0.05, 0.2)
                magnitude = rng.uniform(0.3, 0.9)   # per-alloc failure prob.
            elif kind == STUCK_THREAD:
                duration = 0.0                      # runs until killed
            elif kind == CLOCK_SKEW:
                duration = rng.uniform(0.05, 0.3)
                magnitude = rng.choice([0.25, 0.5, 2.0, 4.0])
            elif kind == LINK_FLAP:
                duration = rng.uniform(0.01, 0.08)
            elif kind == DOMAIN_CRASH:
                target = rng.choice(list(crash_targets))
            events.append(FaultEvent(at_s=at, kind=kind, target=target,
                                     duration_s=duration,
                                     magnitude=magnitude))
        return cls(events, seed=seed)
