"""Canned chaos scenarios: the full harness, runnable from the CLI.

Each scenario builds a Figure-7 testbed, runs it through five phases —

1. **boot + warmup**: the server comes up and well-behaved load settles;
2. **chaos**: the fault schedule fires (plus whatever attack the scenario
   layers on top), with the watchdog and the invariant checker running;
3. **recovery**: injection stops; the watchdog finishes its kills, backoff
   shedding expires, the service is revived if it died;
4. **probe**: *fresh* well-behaved clients attach and must complete
   requests — the server has to still be answering;
5. **verdict**: a :class:`ChaosReport` — pass requires zero invariant
   violations, at least one full detect → kill → recover watchdog cycle,
   and probe completions.

``run_scenario(name, seed)`` is the whole API; the same ``(name, seed)``
always reproduces the same run.  Exposed on the command line as
``python -m repro chaos --scenario <name> --seed <n>`` (and ``--list``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.clock import micros_to_ticks, seconds_to_ticks
from repro.experiments.harness import TRUSTED_SUBNET, Testbed
from repro.net.fault import FaultInjector
from repro.policy.synflood import SynFloodPolicy
from repro.chaos.inject import ChaosInjector
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.recovery import DomainRecovery
from repro.chaos.schedule import (
    CLOCK_SKEW,
    DOMAIN_CRASH,
    IOBUF_FAIL,
    LINK_FLAP,
    MODULE_EXCEPTION,
    PAGE_PRESSURE,
    STUCK_THREAD,
    FaultEvent,
    FaultSchedule,
)
from repro.chaos.watchdog import Watchdog, WatchdogAction


@dataclass
class ChaosReport:
    """The outcome of one chaos run."""

    scenario: str
    seed: int
    ok: bool
    service_alive: bool
    recovery_cycle: bool
    completions_after: int
    faults_injected: Dict[str, int]
    faults_skipped: Dict[str, int]
    violations: List[Violation]
    watchdog_log: List[WatchdogAction]
    sheds: int
    fault_traps: int
    kills: int
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [f"[{verdict}] {self.scenario} seed={self.seed}"]
        inj = ", ".join(f"{k}={v}"
                        for k, v in sorted(self.faults_injected.items()))
        lines.append(f"  injected: {inj or 'nothing'}")
        if self.faults_skipped:
            skp = ", ".join(f"{k}={v}"
                            for k, v in sorted(self.faults_skipped.items()))
            lines.append(f"  skipped:  {skp}")
        lines.append(f"  watchdog: {self.kills} kills, "
                     f"{self.sheds} admissions shed, "
                     f"{self.fault_traps} faults contained, "
                     f"recovery cycle: "
                     f"{'yes' if self.recovery_cycle else 'NO'}")
        lines.append(f"  service:  "
                     f"{'alive' if self.service_alive else 'DOWN'}, "
                     f"{self.completions_after} probe request(s) completed")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines += [f"    {v}" for v in self.violations]
        else:
            lines.append("  invariants: all held")
        lines += [f"  note: {n}" for n in self.notes]
        return "\n".join(lines)


class ChaosScenario:
    """One canned chaos scenario: a testbed builder plus a fault schedule.

    ``build`` returns ``(testbed, fault_injector_or_None)``;
    ``make_schedule`` returns the :class:`FaultSchedule` for one seed.
    Phase lengths are simulated seconds.
    """

    def __init__(self, name: str, description: str, *,
                 build: Callable[[int], Tuple[Testbed,
                                              Optional[FaultInjector]]],
                 make_schedule: Callable[[int, float], FaultSchedule],
                 warmup_s: float = 0.25,
                 chaos_s: float = 0.8,
                 recovery_s: float = 0.5,
                 probe_s: float = 0.6,
                 watchdog_kwargs: Optional[dict] = None):
        self.name = name
        self.description = description
        self.build = build
        self.make_schedule = make_schedule
        self.warmup_s = warmup_s
        self.chaos_s = chaos_s
        self.recovery_s = recovery_s
        self.probe_s = probe_s
        self.watchdog_kwargs = watchdog_kwargs or {}

    # ------------------------------------------------------------------
    def run(self, seed: int = 1) -> ChaosReport:
        bed, net_injector = self.build(seed)
        sim, server = bed.sim, bed.server
        kernel = server.kernel

        # Phase 1: boot and settle, then start the scenario's load.
        server.boot()
        sim.run(until=sim.now + seconds_to_ticks(0.01))
        for client in bed.clients:
            client.start()
        for attacker in bed.cgi_attackers:
            attacker.start()
        if bed.syn_attacker is not None:
            bed.syn_attacker.start()
        sim.run(until=sim.now + seconds_to_ticks(self.warmup_s))

        # Phase 2: chaos, observed by the watchdog and the checker.
        recovery = DomainRecovery(server)
        watchdog = Watchdog(kernel,
                            service_probe=recovery.probe,
                            service_revive=recovery.revive,
                            **self.watchdog_kwargs)
        watchdog.start()
        checker = InvariantChecker(kernel)
        checker.start(period_s=0.05)
        chaos = ChaosInjector(server,
                              self.make_schedule(seed, self.chaos_s),
                              fault_injector=net_injector)
        chaos.arm()
        sim.run(until=sim.now + seconds_to_ticks(self.chaos_s))

        # Phase 3: recovery — kills drain, backoff expires, service heals.
        sim.run(until=sim.now + seconds_to_ticks(self.recovery_s))
        chaos.disarm()

        # Phase 4: fresh well-behaved clients must get answers.
        probes = bed.add_clients(3)
        for probe in probes:
            probe.start()
        probe_start = sim.now
        sim.run(until=sim.now + seconds_to_ticks(self.probe_s))
        completions = bed.stats.completions_in("client", probe_start,
                                               sim.now)

        # Phase 5: verdict.
        checker.check_now()
        checker.stop()
        watchdog.stop()
        service_alive = recovery.probe()
        recovery_cycle = watchdog.saw_recovery_cycle()
        ok = (checker.ok and recovery_cycle and service_alive
              and completions > 0)
        notes = list(chaos.log[-3:])
        if recovery.recoveries:
            notes.append(f"service revived {recovery.recoveries} time(s)")
        return ChaosReport(
            scenario=self.name,
            seed=seed,
            ok=ok,
            service_alive=service_alive,
            recovery_cycle=recovery_cycle,
            completions_after=completions,
            faults_injected=dict(chaos.injected),
            faults_skipped=dict(chaos.skipped),
            violations=list(checker.violations),
            watchdog_log=list(watchdog.log),
            sheds=kernel.sheds,
            fault_traps=kernel.fault_traps,
            kills=watchdog.kills,
            notes=notes,
        )


# ----------------------------------------------------------------------
# Scenario 1: SYN flood over a lossy, flapping network
# ----------------------------------------------------------------------
def _build_lossy_syn_flood(seed: int):
    bed = Testbed.escort(
        policies=[SynFloodPolicy(TRUSTED_SUBNET, untrusted_cap=64)])
    injector = FaultInjector(bed.sim, bed.hub, seed=seed,
                             drop_probability=0.05,
                             duplicate_probability=0.05,
                             extra_delay_ticks=micros_to_ticks(200),
                             delay_probability=0.1,
                             reorder_probability=0.03,
                             corrupt_probability=0.02)
    # The server's transmissions pass through the fault model; the SYN
    # flood and client traffic arrive unmodified (their loss is the
    # server's responses disappearing — the nastier case for TCP state).
    bed.server.nic.medium = injector
    bed.add_clients(4)
    bed.add_syn_attacker(rate_per_second=300)
    return bed, injector


def _schedule_lossy_syn_flood(seed: int, chaos_s: float) -> FaultSchedule:
    events = [
        FaultEvent(0.10 * chaos_s, STUCK_THREAD),
        FaultEvent(0.40 * chaos_s, LINK_FLAP, duration_s=0.03),
        FaultEvent(0.60 * chaos_s, CLOCK_SKEW, duration_s=0.2,
                   magnitude=2.0),
    ]
    events += FaultSchedule.random(
        seed, chaos_s, kinds=(LINK_FLAP, CLOCK_SKEW),
        rate_per_second=2.0).events
    return FaultSchedule(events, seed=seed)


# ----------------------------------------------------------------------
# Scenario 2: runaway CGI attack while memory runs out
# ----------------------------------------------------------------------
def _build_oom_cgi(seed: int):
    # Deliberately NO RunawayPolicy: the watchdog's cycle budget is the
    # only defence against the looping CGI threads.
    bed = Testbed.escort()
    bed.add_clients(3)
    bed.add_cgi_attackers(2, script="loop")
    return bed, None


def _schedule_oom_cgi(seed: int, chaos_s: float) -> FaultSchedule:
    events = [
        FaultEvent(0.15 * chaos_s, PAGE_PRESSURE, duration_s=0.3,
                   magnitude=0.97),
        FaultEvent(0.55 * chaos_s, IOBUF_FAIL, duration_s=0.15,
                   magnitude=0.5),
    ]
    events += FaultSchedule.random(
        seed, chaos_s, kinds=(MODULE_EXCEPTION, IOBUF_FAIL),
        rate_per_second=2.0, exception_targets=("http", "fs")).events
    return FaultSchedule(events, seed=seed)


# ----------------------------------------------------------------------
# Scenario 3: a protection domain crashes mid-transfer
# ----------------------------------------------------------------------
def _build_domain_crash(seed: int):
    bed = Testbed.escort(protection_domains=True)
    bed.add_clients(3)
    return bed, None


def _schedule_domain_crash(seed: int, chaos_s: float) -> FaultSchedule:
    events = [
        FaultEvent(0.25 * chaos_s, DOMAIN_CRASH, target="pd-http"),
        FaultEvent(0.55 * chaos_s, STUCK_THREAD),
        FaultEvent(0.70 * chaos_s, MODULE_EXCEPTION, target="http",
                   duration_s=0.1, magnitude=0.5),
    ]
    return FaultSchedule(events, seed=seed)


SCENARIOS: Dict[str, ChaosScenario] = {
    "lossy-syn-flood": ChaosScenario(
        "lossy-syn-flood",
        "SYN flood from the untrusted subnet while the server's own "
        "transmissions are dropped, duplicated, reordered, corrupted, "
        "and the link flaps; plus a stuck thread and clock skew.",
        build=_build_lossy_syn_flood,
        make_schedule=_schedule_lossy_syn_flood),
    "oom-cgi": ChaosScenario(
        "oom-cgi",
        "Runaway CGI attack with no static runaway policy — the watchdog "
        "is the only defence — while ballast squeezes the page pool and "
        "IOBuffer allocations fail.",
        build=_build_oom_cgi,
        make_schedule=_schedule_oom_cgi,
        watchdog_kwargs={"shed_on_free_pages": 512,
                         "shed_off_free_pages": 1024}),
    "domain-crash": ChaosScenario(
        "domain-crash",
        "The HTTP protection domain is destroyed mid-run (killing every "
        "crossing path, listeners included); recovery must rebuild the "
        "domain and resurrect the service.",
        build=_build_domain_crash,
        make_schedule=_schedule_domain_crash),
}


def list_scenarios() -> List[Tuple[str, str]]:
    """``[(name, description)]`` for the CLI."""
    return [(s.name, s.description) for s in SCENARIOS.values()]


def run_scenario(name: str, seed: int = 1) -> ChaosReport:
    """Run one canned scenario; raises ``KeyError`` for unknown names."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") \
            from None
    return scenario.run(seed)
