"""Canned chaos scenarios: the full harness, runnable from the CLI.

Each scenario builds a Figure-7 testbed, runs it through five phases —

1. **boot + warmup**: the server comes up and well-behaved load settles;
2. **chaos**: the fault schedule fires (plus whatever attack the scenario
   layers on top), with the watchdog and the invariant checker running;
3. **recovery**: injection stops; the watchdog finishes its kills, backoff
   shedding expires, the service is revived if it died;
4. **probe**: *fresh* well-behaved clients attach and must complete
   requests — the server has to still be answering;
5. **verdict**: a :class:`ChaosReport` — pass requires zero invariant
   violations, at least one full detect → kill → recover watchdog cycle,
   and probe completions.

``run_scenario(name, seed)`` is the whole API; the same ``(name, seed)``
always reproduces the same run.  Exposed on the command line as
``python -m repro chaos --scenario <name> --seed <n>`` (and ``--list``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.clock import micros_to_ticks, seconds_to_ticks
from repro.experiments.harness import TRUSTED_SUBNET, Testbed
from repro.net.fault import FaultInjector
from repro.policy.synflood import SynFloodPolicy
from repro.chaos.inject import ChaosInjector
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.recovery import DomainRecovery
from repro.chaos.schedule import (
    CLOCK_SKEW,
    DOMAIN_CRASH,
    IOBUF_FAIL,
    LINK_FLAP,
    MODULE_EXCEPTION,
    PAGE_PRESSURE,
    STUCK_THREAD,
    FaultEvent,
    FaultSchedule,
)
from repro.chaos.watchdog import Watchdog, WatchdogAction


@dataclass
class ChaosReport:
    """The outcome of one chaos run."""

    scenario: str
    seed: int
    ok: bool
    service_alive: bool
    recovery_cycle: bool
    completions_after: int
    faults_injected: Dict[str, int]
    faults_skipped: Dict[str, int]
    violations: List[Violation]
    watchdog_log: List[WatchdogAction]
    sheds: int
    fault_traps: int
    kills: int
    rollbacks: int = 0
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [f"[{verdict}] {self.scenario} seed={self.seed}"]
        inj = ", ".join(f"{k}={v}"
                        for k, v in sorted(self.faults_injected.items()))
        lines.append(f"  injected: {inj or 'nothing'}")
        if self.faults_skipped:
            skp = ", ".join(f"{k}={v}"
                            for k, v in sorted(self.faults_skipped.items()))
            lines.append(f"  skipped:  {skp}")
        lines.append(f"  watchdog: {self.kills} kills, "
                     f"{self.sheds} admissions shed, "
                     f"{self.fault_traps} faults contained, "
                     f"recovery cycle: "
                     f"{'yes' if self.recovery_cycle else 'NO'}")
        lines.append(f"  service:  "
                     f"{'alive' if self.service_alive else 'DOWN'}, "
                     f"{self.completions_after} probe request(s) completed")
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines += [f"    {v}" for v in self.violations]
        else:
            lines.append("  invariants: all held")
        lines += [f"  note: {n}" for n in self.notes]
        return "\n".join(lines)


class ChaosScenario:
    """One canned chaos scenario: a testbed builder plus a fault schedule.

    ``build`` returns ``(testbed, fault_injector_or_None)``;
    ``make_schedule`` returns the :class:`FaultSchedule` for one seed.
    Phase lengths are simulated seconds.
    """

    def __init__(self, name: str, description: str, *,
                 build: Callable[[int], Tuple[Testbed,
                                              Optional[FaultInjector]]],
                 make_schedule: Callable[[int, float], FaultSchedule],
                 warmup_s: float = 0.25,
                 chaos_s: float = 0.8,
                 recovery_s: float = 0.5,
                 probe_s: float = 0.6,
                 watchdog_kwargs: Optional[dict] = None):
        self.name = name
        self.description = description
        self.build = build
        self.make_schedule = make_schedule
        self.warmup_s = warmup_s
        self.chaos_s = chaos_s
        self.recovery_s = recovery_s
        self.probe_s = probe_s
        self.watchdog_kwargs = watchdog_kwargs or {}

    # ------------------------------------------------------------------
    def run(self, seed: int = 1, *, use_rollback: bool = False) -> ChaosReport:
        """Run the scenario to its verdict (via the replayable driver).

        The five phases execute as fixed-tick milestones of a
        :class:`ChaosRun`, which is what makes a chaos run checkpointable,
        resumable, and replayable like any other run.  ``use_rollback``
        arms the watchdog's snapshot/rollback rung (off by default — the
        canned scenarios' escalation behavior is part of their contract).
        """
        from repro.snapshot.driver import RunDriver

        return RunDriver(ChaosRun(self, seed,
                                  use_rollback=use_rollback)).run_all()


class ChaosRun:
    """A chaos scenario expressed as a replayable run (see ISSUE tentpole).

    Implements the :class:`~repro.snapshot.runs.ReplayableRun` contract so
    chaos runs get whole-machine checkpoints, crash-resume, and lockstep
    replay for free.  The five scenario phases become five milestones:

    ======================  ====================================
    tick                    action
    ======================  ====================================
    0                       ``boot``
    settle                  ``start_load``
    + warmup                ``arm_chaos``  (watchdog, checker, injector)
    + chaos + recovery      ``disarm_probe``
    + probe                 ``verdict``
    ======================  ====================================
    """

    KIND = "chaos"

    # ReplayableRun duck-type (the base class lives in repro.snapshot.runs;
    # importing it here at class-definition time would be a cycle, so the
    # digest helpers are mixed in lazily via summary()/digest()).
    bed: Optional[Testbed] = None

    def __init__(self, scenario, seed: int = 1, *,
                 use_rollback: bool = False,
                 schedule: Optional[FaultSchedule] = None):
        if isinstance(scenario, str):
            scenario = SCENARIOS[scenario]
        self.scenario = scenario
        self.seed = seed
        self.use_rollback = use_rollback
        #: Explicit fault schedule overriding the scenario's generator.
        #: This is how the resilience campaign runs *generated* schedules
        #: against a canned scenario's testbed: the schedule rides in the
        #: spec, so the run stays a pure function of its spec.
        self.schedule = schedule
        self.report: Optional[ChaosReport] = None
        self.snapshotter = None
        self.tracer = None

    # -- spec -----------------------------------------------------------
    def spec(self) -> Dict:
        out = {"run": self.KIND, "scenario": self.scenario.name,
               "seed": self.seed, "rollback": self.use_rollback}
        if self.schedule is not None:
            out["schedule"] = self.schedule.to_jsonable()
        return out

    @classmethod
    def from_spec(cls, spec: Dict) -> "ChaosRun":
        schedule = None
        if spec.get("schedule") is not None:
            schedule = FaultSchedule.from_jsonable(spec["schedule"])
        return cls(spec["scenario"], spec["seed"],
                   use_rollback=bool(spec.get("rollback", False)),
                   schedule=schedule)

    # -- build + timeline ----------------------------------------------
    def build(self) -> None:
        self.bed, self.net_injector = self.scenario.build(self.seed)

    def attach_tracer(self, capacity: int = 200_000):
        """Instrument the server with a ring-buffer tracer (for the
        byte-identical-trace determinism tests)."""
        from repro.sim.trace import Tracer

        self.tracer = Tracer(self.bed.sim, capacity=capacity)
        self.tracer.instrument_server(self.bed.server)
        return self.tracer

    def milestones(self) -> List[Tuple[int, str]]:
        sc = self.scenario
        settle = seconds_to_ticks(0.01)
        t_chaos = settle + seconds_to_ticks(sc.warmup_s)
        t_probe = (t_chaos + seconds_to_ticks(sc.chaos_s)
                   + seconds_to_ticks(sc.recovery_s))
        t_verdict = t_probe + seconds_to_ticks(sc.probe_s)
        return [(0, "boot"), (settle, "start_load"), (t_chaos, "arm_chaos"),
                (t_probe, "disarm_probe"), (t_verdict, "verdict")]

    def perform(self, action: str) -> None:
        getattr(self, f"ms_{action}")()

    def result(self) -> Optional[ChaosReport]:
        return self.report

    # -- milestone actions ----------------------------------------------
    def ms_boot(self) -> None:
        self.bed.server.boot()

    def ms_start_load(self) -> None:
        self.bed.start_load()

    def ms_arm_chaos(self) -> None:
        sc, bed = self.scenario, self.bed
        kernel = bed.server.kernel
        self.recovery = DomainRecovery(bed.server)
        wd_kwargs = dict(sc.watchdog_kwargs)
        if self.use_rollback:
            from repro.snapshot.rollback import DomainSnapshotter
            self.snapshotter = DomainSnapshotter(kernel)
            wd_kwargs.setdefault("snapshotter", self.snapshotter)
        self.watchdog = Watchdog(kernel,
                                 service_probe=self.recovery.probe,
                                 service_revive=self.recovery.revive,
                                 **wd_kwargs)
        self.watchdog.start()
        self.checker = InvariantChecker(kernel)
        self.checker.start(period_s=0.05)
        schedule = (self.schedule if self.schedule is not None
                    else sc.make_schedule(self.seed, sc.chaos_s))
        self.chaos = ChaosInjector(bed.server, schedule,
                                   fault_injector=self.net_injector)
        self.chaos.arm()

    def ms_disarm_probe(self) -> None:
        self.chaos.disarm()
        self.probes = self.bed.add_clients(3)
        for probe in self.probes:
            probe.start()
        self._probe_start = self.bed.sim.now

    def ms_verdict(self) -> None:
        bed, sim = self.bed, self.bed.sim
        completions = bed.stats.completions_in("client", self._probe_start,
                                               sim.now)
        self.checker.check_now()
        self.checker.stop()
        self.watchdog.stop()
        service_alive = self.recovery.probe()
        recovery_cycle = self.watchdog.saw_recovery_cycle()
        ok = (self.checker.ok and recovery_cycle and service_alive
              and completions > 0)
        notes = list(self.chaos.log[-3:])
        if self.recovery.recoveries:
            notes.append(
                f"service revived {self.recovery.recoveries} time(s)")
        self.report = ChaosReport(
            scenario=self.scenario.name,
            seed=self.seed,
            ok=ok,
            service_alive=service_alive,
            recovery_cycle=recovery_cycle,
            completions_after=completions,
            faults_injected=dict(self.chaos.injected),
            faults_skipped=dict(self.chaos.skipped),
            violations=list(self.checker.violations),
            watchdog_log=list(self.watchdog.log),
            sheds=bed.server.kernel.sheds,
            fault_traps=bed.server.kernel.fault_traps,
            kills=self.watchdog.kills,
            rollbacks=self.watchdog.rollbacks,
            notes=notes,
        )

    # -- digests --------------------------------------------------------
    def extra_summary(self) -> Dict:
        from repro.snapshot.runs import rng_fingerprint

        out: Dict = {}
        chaos = getattr(self, "chaos", None)
        if chaos is not None:
            out["injected"] = dict(sorted(chaos.injected.items()))
            out["skipped"] = dict(sorted(chaos.skipped.items()))
            out["chaos_rng"] = rng_fingerprint(chaos.rng)
        watchdog = getattr(self, "watchdog", None)
        if watchdog is not None:
            kinds: Dict[str, int] = {}
            for action in watchdog.log:
                kinds[action.kind] = kinds.get(action.kind, 0) + 1
            out["watchdog"] = {"scans": watchdog.scans,
                               "kills": watchdog.kills,
                               "rollbacks": watchdog.rollbacks,
                               "log": dict(sorted(kinds.items()))}
        if self.net_injector is not None:
            rng = getattr(self.net_injector, "rng", None)
            if rng is not None:
                out["net_rng"] = rng_fingerprint(rng)
        if self.snapshotter is not None:
            out["snapshotter"] = self.snapshotter.summary()
        return out

    def summary(self) -> Dict:
        from repro.snapshot.runs import ReplayableRun
        return ReplayableRun.summary(self)

    def digest(self) -> str:
        from repro.snapshot.runs import ReplayableRun
        return ReplayableRun.digest(self)


# ----------------------------------------------------------------------
# Scenario 1: SYN flood over a lossy, flapping network
# ----------------------------------------------------------------------
def _build_lossy_syn_flood(seed: int):
    bed = Testbed.escort(
        policies=[SynFloodPolicy(TRUSTED_SUBNET, untrusted_cap=64)])
    injector = FaultInjector(bed.sim, bed.hub, seed=seed,
                             drop_probability=0.05,
                             duplicate_probability=0.05,
                             extra_delay_ticks=micros_to_ticks(200),
                             delay_probability=0.1,
                             reorder_probability=0.03,
                             corrupt_probability=0.02)
    # The server's transmissions pass through the fault model; the SYN
    # flood and client traffic arrive unmodified (their loss is the
    # server's responses disappearing — the nastier case for TCP state).
    bed.server.nic.medium = injector
    bed.add_clients(4)
    bed.add_syn_attacker(rate_per_second=300)
    return bed, injector


def _schedule_lossy_syn_flood(seed: int, chaos_s: float) -> FaultSchedule:
    events = [
        FaultEvent(0.10 * chaos_s, STUCK_THREAD),
        FaultEvent(0.40 * chaos_s, LINK_FLAP, duration_s=0.03),
        FaultEvent(0.60 * chaos_s, CLOCK_SKEW, duration_s=0.2,
                   magnitude=2.0),
    ]
    events += FaultSchedule.random(
        seed, chaos_s, kinds=(LINK_FLAP, CLOCK_SKEW),
        rate_per_second=2.0).events
    return FaultSchedule(events, seed=seed)


# ----------------------------------------------------------------------
# Scenario 2: runaway CGI attack while memory runs out
# ----------------------------------------------------------------------
def _build_oom_cgi(seed: int):
    # Deliberately NO RunawayPolicy: the watchdog's cycle budget is the
    # only defence against the looping CGI threads.
    bed = Testbed.escort()
    bed.add_clients(3)
    bed.add_cgi_attackers(2, script="loop")
    return bed, None


def _schedule_oom_cgi(seed: int, chaos_s: float) -> FaultSchedule:
    events = [
        FaultEvent(0.15 * chaos_s, PAGE_PRESSURE, duration_s=0.3,
                   magnitude=0.97),
        FaultEvent(0.55 * chaos_s, IOBUF_FAIL, duration_s=0.15,
                   magnitude=0.5),
    ]
    events += FaultSchedule.random(
        seed, chaos_s, kinds=(MODULE_EXCEPTION, IOBUF_FAIL),
        rate_per_second=2.0, exception_targets=("http", "fs")).events
    return FaultSchedule(events, seed=seed)


# ----------------------------------------------------------------------
# Scenario 3: a protection domain crashes mid-transfer
# ----------------------------------------------------------------------
def _build_domain_crash(seed: int):
    bed = Testbed.escort(protection_domains=True)
    bed.add_clients(3)
    return bed, None


def _schedule_domain_crash(seed: int, chaos_s: float) -> FaultSchedule:
    events = [
        FaultEvent(0.25 * chaos_s, DOMAIN_CRASH, target="pd-http"),
        FaultEvent(0.55 * chaos_s, STUCK_THREAD),
        FaultEvent(0.70 * chaos_s, MODULE_EXCEPTION, target="http",
                   duration_s=0.1, magnitude=0.5),
    ]
    return FaultSchedule(events, seed=seed)


SCENARIOS: Dict[str, ChaosScenario] = {
    "lossy-syn-flood": ChaosScenario(
        "lossy-syn-flood",
        "SYN flood from the untrusted subnet while the server's own "
        "transmissions are dropped, duplicated, reordered, corrupted, "
        "and the link flaps; plus a stuck thread and clock skew.",
        build=_build_lossy_syn_flood,
        make_schedule=_schedule_lossy_syn_flood),
    "oom-cgi": ChaosScenario(
        "oom-cgi",
        "Runaway CGI attack with no static runaway policy — the watchdog "
        "is the only defence — while ballast squeezes the page pool and "
        "IOBuffer allocations fail.",
        build=_build_oom_cgi,
        make_schedule=_schedule_oom_cgi,
        watchdog_kwargs={"shed_on_free_pages": 512,
                         "shed_off_free_pages": 1024}),
    "domain-crash": ChaosScenario(
        "domain-crash",
        "The HTTP protection domain is destroyed mid-run (killing every "
        "crossing path, listeners included); recovery must rebuild the "
        "domain and resurrect the service.",
        build=_build_domain_crash,
        make_schedule=_schedule_domain_crash),
}


def list_scenarios() -> List[Tuple[str, str]]:
    """``[(name, description)]`` for the CLI."""
    return [(s.name, s.description) for s in SCENARIOS.values()]


def run_scenario(name: str, seed: int = 1, *,
                 use_rollback: bool = False) -> ChaosReport:
    """Run one canned scenario; raises ``KeyError`` for unknown names."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") \
            from None
    return scenario.run(seed, use_rollback=use_rollback)
