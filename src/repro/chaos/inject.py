"""Fault injectors for every layer of the simulated machine.

:class:`ChaosInjector` takes a :class:`~repro.chaos.schedule.FaultSchedule`
and arms it against a running :class:`~repro.server.webserver.ScoutWebServer`:
each event fires at its scheduled simulated time and perturbs one layer —

* ``module-exception`` — the target module's ``forward`` raises
  :class:`ChaosFault` mid-path with the event's probability (active paths
  only; listeners are configuration, not request processing);
* ``page-pressure`` — a ballast owner grabs a fraction of the free page
  pool, pushing real allocations toward ``ResourceLimitError``;
* ``iobuf-fail`` — IOBuffer allocations fail probabilistically;
* ``stuck-thread`` — a sacrificial protection domain spawns a thread that
  consumes cycles forever without yielding: the watchdog must notice and
  tear it down, or the machine is gone (non-preemptive threads);
* ``clock-skew`` — the softclock runs at a scaled period;
* ``link-flap`` — the attached network :class:`FaultInjector` takes the
  link down for the event's duration;
* ``net-degrade`` — the attached injector's drop/reorder/corrupt
  probabilities spike for the event's duration (the generated-schedule
  analogue of a congested or dirty wire);
* ``domain-crash`` — the named protection domain is destroyed outright,
  taking every crossing path with it.

All probabilistic decisions use an RNG derived from the schedule's seed, so
a chaos run is a pure function of ``(scenario, seed)``.  Arming the
injector also enables kernel fault containment — injected exceptions must
kill paths, not the simulator.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.sim.clock import seconds_to_ticks, ticks_to_seconds
from repro.kernel.errors import EscortError, ResourceLimitError
from repro.kernel.owner import Owner, OwnerType
from repro.sim.cpu import Cycles
from repro.chaos.schedule import (
    CLOCK_SKEW,
    DOMAIN_CRASH,
    IOBUF_FAIL,
    LINK_FLAP,
    MODULE_EXCEPTION,
    NET_DEGRADE,
    PAGE_PRESSURE,
    STUCK_THREAD,
    FaultEvent,
    FaultSchedule,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fault import FaultInjector
    from repro.server.webserver import ScoutWebServer

#: Cycles per loop iteration of an injected stuck thread.
STUCK_BURN_CYCLES = 25_000


class ChaosFault(EscortError):
    """The exception injected into module code by ``module-exception``."""


class ChaosInjector:
    """Arms a fault schedule against a running server."""

    def __init__(self, server: "ScoutWebServer", schedule: FaultSchedule,
                 fault_injector: Optional["FaultInjector"] = None):
        self.server = server
        self.kernel = server.kernel
        self.sim = server.sim
        self.schedule = schedule
        self.fault_injector = fault_injector
        # Independent stream from the schedule's, same seed family.
        self.rng = random.Random(schedule.seed ^ 0x5EED)
        self.injected: Dict[str, int] = {}
        self.skipped: Dict[str, int] = {}
        self.log: List[str] = []
        self._armed = False
        # module name -> current injected exception probability.
        self._exc_prob: Dict[str, float] = {}
        # module name -> original forward (for disarm).
        self._patched_forward: Dict[str, object] = {}
        self._iobuf_fail_prob = 0.0
        self._orig_iobuf_alloc = None
        self._stuck_domains: List = []
        self._ballast: List[Owner] = []
        # Pre-arm network fault probabilities (restored by disarm).
        self._net_baseline = None
        self._disarmed = False

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every fault event relative to *now*."""
        if self._armed:
            raise EscortError("chaos injector already armed")
        self._armed = True
        if self.fault_injector is not None:
            self._net_baseline = (self.fault_injector.drop_probability,
                                  self.fault_injector.reorder_probability,
                                  self.fault_injector.corrupt_probability)
        # Chaos without containment would crash the simulator on the first
        # injected exception; a real Escort kernel always contains.
        self.kernel.enable_fault_containment()
        for ev in self.schedule:
            self.sim.schedule(seconds_to_ticks(ev.at_s),
                              lambda e=ev: self._fire(e))

    def disarm(self) -> None:
        """Restore patched kernel/module entry points and free ballast."""
        self._disarmed = True
        for name, orig in self._patched_forward.items():
            self.server.graph.find(name).forward = orig
        self._patched_forward.clear()
        self._exc_prob.clear()
        if self._orig_iobuf_alloc is not None:
            self.kernel.iobufs.alloc = self._orig_iobuf_alloc
            self._orig_iobuf_alloc = None
        self._iobuf_fail_prob = 0.0
        for ballast in self._ballast:
            self.kernel.allocator.reclaim_all(ballast)
        self._ballast.clear()
        self.kernel.softclock.period_scale = 1.0
        if self.fault_injector is not None:
            self.fault_injector.set_link(True)
            if self._net_baseline is not None:
                (self.fault_injector.drop_probability,
                 self.fault_injector.reorder_probability,
                 self.fault_injector.corrupt_probability) = self._net_baseline

    # ------------------------------------------------------------------
    def _fire(self, ev: FaultEvent) -> None:
        handler = {
            MODULE_EXCEPTION: self._inject_module_exception,
            PAGE_PRESSURE: self._inject_page_pressure,
            IOBUF_FAIL: self._inject_iobuf_fail,
            STUCK_THREAD: self._inject_stuck_thread,
            CLOCK_SKEW: self._inject_clock_skew,
            LINK_FLAP: self._inject_link_flap,
            NET_DEGRADE: self._inject_net_degrade,
            DOMAIN_CRASH: self._inject_domain_crash,
        }[ev.kind]
        handler(ev)

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _skip(self, kind: str, why: str) -> None:
        self.skipped[kind] = self.skipped.get(kind, 0) + 1
        self._note(f"skipped {kind}: {why}")

    def _note(self, msg: str) -> None:
        self.log.append(f"[{ticks_to_seconds(self.sim.now):.6f}s] {msg}")

    def _after(self, duration_s: float, fn) -> None:
        self.sim.schedule(seconds_to_ticks(duration_s), fn)

    # ------------------------------------------------------------------
    # Layer injectors
    # ------------------------------------------------------------------
    def _inject_module_exception(self, ev: FaultEvent) -> None:
        name = ev.target
        if name not in self.server.graph:
            self._skip(MODULE_EXCEPTION, f"no module {name!r}")
            return
        self._patch_forward(name)
        self._exc_prob[name] = ev.magnitude
        self._count(MODULE_EXCEPTION)
        self._note(f"module {name} raising with p={ev.magnitude:.2f} "
                   f"for {ev.duration_s:.3f}s")
        self._after(ev.duration_s,
                    lambda: self._exc_prob.__setitem__(name, 0.0))

    def _patch_forward(self, name: str) -> None:
        """Interpose on the module's forward exactly once per run; the
        live probability is looked up per call, so overlapping events
        compose by overwriting it."""
        if name in self._patched_forward:
            return
        module = self.server.graph.find(name)
        orig = module.forward
        self._patched_forward[name] = orig

        def chaotic_forward(stage, msg, _orig=orig, _name=name):
            prob = self._exc_prob.get(_name, 0.0)
            if (prob and not stage.state.get("listen")
                    and self.rng.random() < prob):
                raise ChaosFault(f"injected exception in {_name} "
                                 f"on {stage.path.name}")
            return _orig(stage, msg)

        module.forward = chaotic_forward

    def _inject_page_pressure(self, ev: FaultEvent) -> None:
        allocator = self.kernel.allocator
        want = int(allocator.free_pages * min(ev.magnitude, 1.0))
        if want <= 0:
            self._skip(PAGE_PRESSURE, "no free pages to squat on")
            return
        ballast = Owner(OwnerType.KERNEL, name=f"chaos-ballast-{ev.at_s:g}")
        self._ballast.append(ballast)
        allocator.alloc(ballast, count=want)
        self._count(PAGE_PRESSURE)
        self._note(f"page pressure: {want} pages held "
                   f"for {ev.duration_s:.3f}s "
                   f"({allocator.free_pages} left free)")

        def release() -> None:
            freed = allocator.reclaim_all(ballast)
            if ballast in self._ballast:
                self._ballast.remove(ballast)
            self._note(f"page pressure released ({freed} pages)")

        self._after(ev.duration_s, release)

    def _inject_iobuf_fail(self, ev: FaultEvent) -> None:
        if self._orig_iobuf_alloc is None:
            orig = self.kernel.iobufs.alloc
            self._orig_iobuf_alloc = orig

            def failing_alloc(nbytes, owner, current_pd, read_pds=()):
                if (self._iobuf_fail_prob
                        and self.rng.random() < self._iobuf_fail_prob):
                    raise ResourceLimitError(
                        "chaos: IOBuffer allocation failed")
                return orig(nbytes, owner, current_pd, read_pds)

            self.kernel.iobufs.alloc = failing_alloc
        self._iobuf_fail_prob = ev.magnitude
        self._count(IOBUF_FAIL)
        self._note(f"IOBuffer allocs failing with p={ev.magnitude:.2f} "
                   f"for {ev.duration_s:.3f}s")

        def restore() -> None:
            self._iobuf_fail_prob = 0.0

        self._after(ev.duration_s, restore)

    def _inject_stuck_thread(self, ev: FaultEvent) -> None:
        n = len(self._stuck_domains) + 1
        pd = self.kernel.create_domain(f"chaos-stuck-{n}")
        self._stuck_domains.append(pd)

        def looper():
            # Consumes forever, never yields the CPU — on a non-preemptive
            # kernel only the watchdog can end this.
            while True:
                yield Cycles(STUCK_BURN_CYCLES)

        self.kernel.spawn_thread(pd, looper(), name=f"stuck-{n}")
        self._count(STUCK_THREAD)
        self._note(f"stuck thread spawned in {pd.name}")

    def _inject_clock_skew(self, ev: FaultEvent) -> None:
        softclock = self.kernel.softclock
        softclock.period_scale = ev.magnitude
        self._count(CLOCK_SKEW)
        self._note(f"softclock skewed x{ev.magnitude:g} "
                   f"for {ev.duration_s:.3f}s")

        def restore() -> None:
            softclock.period_scale = 1.0

        self._after(ev.duration_s, restore)

    def _inject_link_flap(self, ev: FaultEvent) -> None:
        if self.fault_injector is None:
            self._skip(LINK_FLAP, "no network FaultInjector attached")
            return
        self.fault_injector.set_link(False)
        self._count(LINK_FLAP)
        self._note(f"link down for {ev.duration_s:.3f}s")
        self._after(ev.duration_s,
                    lambda: self.fault_injector.set_link(True))

    def _inject_net_degrade(self, ev: FaultEvent) -> None:
        """Raise the attached injector's drop/reorder/corrupt rates.

        ``magnitude`` in (0, 1] scales a fixed ceiling per dimension; the
        pre-event probabilities are restored when the window ends, so
        overlapping windows compose last-writer-wins (deterministically —
        all restores are simulator events).
        """
        inj = self.fault_injector
        if inj is None:
            self._skip(NET_DEGRADE, "no network FaultInjector attached")
            return
        m = min(max(ev.magnitude, 0.0), 1.0)
        saved = (inj.drop_probability, inj.reorder_probability,
                 inj.corrupt_probability)
        inj.drop_probability = max(inj.drop_probability, 0.35 * m)
        inj.reorder_probability = max(inj.reorder_probability, 0.25 * m)
        inj.corrupt_probability = max(inj.corrupt_probability, 0.20 * m)
        self._count(NET_DEGRADE)
        self._note(f"net degraded (drop={inj.drop_probability:.2f}, "
                   f"reorder={inj.reorder_probability:.2f}, "
                   f"corrupt={inj.corrupt_probability:.2f}) "
                   f"for {ev.duration_s:.3f}s")

        def restore() -> None:
            if self._disarmed:
                return  # disarm already restored the pre-arm baseline
            (inj.drop_probability, inj.reorder_probability,
             inj.corrupt_probability) = saved

        self._after(ev.duration_s, restore)

    def _inject_domain_crash(self, ev: FaultEvent) -> None:
        pd = next((d for d in self.kernel.domains
                   if d.name == ev.target and not d.privileged
                   and not d.destroyed), None)
        if pd is None:
            self._skip(DOMAIN_CRASH,
                       f"no live unprivileged domain {ev.target!r}")
            return
        reports = self.kernel.destroy_domain(pd)
        self._count(DOMAIN_CRASH)
        self._note(f"crashed {pd.name} "
                   f"({len(reports) - 1} crossing paths killed)")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        inj = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
        out = f"chaos: injected [{inj or 'nothing'}]"
        if self.skipped:
            skp = ", ".join(f"{k}={v}"
                            for k, v in sorted(self.skipped.items()))
            out += f", skipped [{skp}]"
        return out
