"""The banked regression corpus (format ``ESCORP-1``).

Every minimized reproducer the campaign banks becomes one JSON file in
``corpus/ESCORP-1/``::

    {"format": "ESCORP-1", "name": "...", "target": "chaos",
     "case": {...}, "spec": {...},
     "expected": {"failures": [...], "digest": "...", "events": N},
     "provenance": {...}}

``python -m repro resilience corpus`` (and the CI job) re-executes each
entry's spec and verifies it still fails with the **same fingerprint**
and reaches the **same final state digest** after the **same number of
events** — "replays exactly", not "still fails somehow".  A fingerprint
change means the banked bug mutated or was fixed without retiring the
entry; a digest/event drift means determinism broke, which is its own
regression.

Files are written with sorted keys and a trailing newline so the corpus
diffs cleanly under version control.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

CORPUS_FORMAT = "ESCORP-1"


def default_corpus_dir(root: str = ".") -> str:
    """The conventional corpus location: ``<root>/corpus/<format>``."""
    return os.path.join(root, "corpus", CORPUS_FORMAT)


class CorpusFormatError(ValueError):
    """A corpus file is malformed or from an unknown format version."""


# ----------------------------------------------------------------------
def save_entry(corpus_dir: str, name: str, *, target: str, case: Dict,
               spec: Dict, expected: Dict,
               provenance: Optional[Dict] = None) -> str:
    """Write one corpus entry; returns its path."""
    os.makedirs(corpus_dir, exist_ok=True)
    payload = {"format": CORPUS_FORMAT, "name": name, "target": target,
               "case": case, "spec": spec, "expected": expected,
               "provenance": provenance or {}}
    path = os.path.join(corpus_dir, f"{name}.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_entries(corpus_dir: str) -> List[Dict]:
    """Load every entry in ``corpus_dir``, sorted by file name."""
    if not os.path.isdir(corpus_dir):
        return []
    entries = []
    for fname in sorted(os.listdir(corpus_dir)):
        if not fname.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, fname)
        with open(path) as fh:
            try:
                payload = json.load(fh)
            except ValueError as exc:
                raise CorpusFormatError(f"{path}: not JSON: {exc}") from None
        if payload.get("format") != CORPUS_FORMAT:
            raise CorpusFormatError(
                f"{path}: format {payload.get('format')!r}, "
                f"expected {CORPUS_FORMAT!r}")
        for key in ("name", "target", "spec", "expected"):
            if key not in payload:
                raise CorpusFormatError(f"{path}: missing {key!r}")
        payload["_path"] = path
        entries.append(payload)
    return entries


# ----------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """One corpus entry's replay verdict."""

    name: str
    ok: bool
    problems: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return f"  OK   {self.name}"
        lines = [f"  FAIL {self.name}"] + [f"       {p}"
                                           for p in self.problems]
        return "\n".join(lines)


def replay_entry(entry: Dict) -> ReplayOutcome:
    """Re-execute one banked spec and compare against expectations."""
    from repro.resilience.oracle import evaluate_spec

    expected = entry["expected"]
    verdict = evaluate_spec(entry["spec"])
    problems = []
    if verdict["failures"] != expected["failures"]:
        problems.append(
            f"fingerprint mismatch: expected "
            f"{','.join(expected['failures']) or '(none)'}, got "
            f"{','.join(verdict['failures']) or '(none)'}")
    if expected.get("digest") and verdict["digest"] != expected["digest"]:
        problems.append(
            f"digest drift: expected {expected['digest'][:16]}..., got "
            f"{(verdict['digest'] or '(crash)')[:16]}...")
    if expected.get("events") and verdict["events"] != expected["events"]:
        problems.append(
            f"event-count drift: expected {expected['events']}, got "
            f"{verdict['events']}")
    return ReplayOutcome(entry["name"], not problems, problems)


def replay_corpus(corpus_dir: str,
                  log=None) -> List[ReplayOutcome]:
    """Replay every entry; returns outcomes in file order."""
    outcomes = []
    for entry in load_entries(corpus_dir):
        outcome = replay_entry(entry)
        if log is not None:
            log(outcome.describe())
        outcomes.append(outcome)
    return outcomes
