"""The campaign oracle: run one spec, grade it, fingerprint failures.

A **verdict** is a JSON-able dict::

    {"ok": bool, "failures": [rule, ...], "digest": str,
     "events": int, "detail": str}

``failures`` is the sorted set of failed rule names — the *fingerprint*
the minimizer preserves while shrinking, so a schedule never slips from
one bug onto a different one mid-minimization.

What counts as a failure:

* ``invariant:<rule>`` — any :class:`~repro.chaos.invariants.Violation`,
  from the live checker a chaos run carries or from the post-run
  structural sweep the oracle performs on defense/cluster kernels;
* ``service-dead`` / ``no-probe-completions`` — a chaos run's service
  never answered its fresh probe clients;
* ``no-goodput`` — a defense/cluster window completed zero legitimate
  requests;
* ``run-crash:<ExcType>`` — the run raised.  Containment is narrowed to
  the simulated fault families (see ``Kernel.enable_fault_containment``),
  so this is a genuine harness/module bug surfacing, and — the runs
  being pure functions of their specs — it reproduces deterministically.

Deliberately **not** a failure: a chaos report's ``ok=False`` due to a
missing watchdog recovery cycle.  Mild generated schedules legitimately
never wake the watchdog; grading them as failures would drown the
campaign in non-bugs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.resilience.space import case_to_spec


def _structural_sweep(kernel) -> List[str]:
    """Post-run invariant sweep of one kernel (defense/cluster targets).

    The checker attaches *after* the run, so its cycle-conservation
    baseline is the final counters (trivially consistent); what it audits
    here is structure: pages charged to dead owners, orphan events and
    threads, locks on freed IOBuffers.
    """
    from repro.chaos.invariants import InvariantChecker

    checker = InvariantChecker(kernel)
    return [f"invariant:{v.rule}" for v in checker.check_now()]


def _grade_chaos(run, report) -> Tuple[List[str], str]:
    failures = {f"invariant:{v.rule}" for v in report.violations}
    if not report.service_alive:
        failures.add("service-dead")
    if report.completions_after == 0:
        failures.add("no-probe-completions")
    return sorted(failures), report.summary()


def _grade_defense(run, result) -> Tuple[List[str], str]:
    failures = set(_structural_sweep(run.bed.server.kernel))
    if result.completions == 0:
        failures.add("no-goodput")
    detail = (f"goodput {result.goodput_cps:.1f} cps, "
              f"{result.completions} completed, {result.refused} refused, "
              f"ladder={result.ladder}")
    return sorted(failures), detail


def _grade_cluster(run, result) -> Tuple[List[str], str]:
    failures = set()
    for replica in run.bed.replicas:
        failures.update(_structural_sweep(replica.server.kernel))
    if result.completions == 0:
        failures.add("no-goodput")
    detail = (f"goodput {result.goodput_cps:.1f} cps, "
              f"{result.completions} completed, "
              f"health downs/ups {result.health_downs}/{result.health_ups}")
    return sorted(failures), detail


_GRADERS = {"chaos": _grade_chaos, "defense": _grade_defense,
            "cluster": _grade_cluster}


def grade_run(run, result) -> Tuple[List[str], str]:
    """Grade one *completed* run object; returns ``(failures, detail)``.

    The grading half of :func:`evaluate_spec`, split out so callers that
    executed the run themselves — the supervised child process grades in
    place before writing ``result.json`` — apply the same rules.  Kinds
    without a registered grader (plain experiments) grade clean.
    """
    grade = _GRADERS.get(run.spec().get("run"))
    if grade is None:
        return [], ""
    return grade(run, result)


def evaluate_spec(spec: Dict) -> Dict:
    """Execute one run spec and return its verdict.

    Deterministic: the driver resets object ids before building, so the
    same spec yields the same verdict (digest included) in any process.
    """
    from repro.snapshot.driver import RunDriver
    from repro.snapshot.runs import run_from_spec

    try:
        run = run_from_spec(spec)
        driver = RunDriver(run)
        result = driver.run_all()
        failures, detail = grade_run(run, result)
        return {"ok": not failures, "failures": failures,
                "digest": run.digest(),
                "events": driver.sim.events_processed,
                "detail": detail}
    except Exception as exc:  # a crashed run is itself a (replayable) finding
        return {"ok": False,
                "failures": [f"run-crash:{type(exc).__name__}"],
                "digest": "", "events": 0, "detail": repr(exc)[:500]}


def evaluate_case(case: Dict) -> Dict:
    """Map a case to its spec and evaluate it."""
    return evaluate_spec(case_to_spec(case))
