"""Schedule minimization: ddmin + parameter shrinking + certification.

Given a failing case, :class:`Minimizer` produces the smallest schedule
it can that still fails *with the same fingerprint* (the sorted failure
rule set — preserving it keeps the shrink from sliding off one bug onto
another):

1. **ddmin** over the entry list (Zeller's delta debugging: remove
   chunks at increasing granularity, keep any complement that still
   reproduces);
2. **greedy parameter shrinking** per surviving entry: every numeric
   field is repeatedly offered smaller candidates (zero, half, fewer
   digits) and keeps the smallest that still reproduces;
3. **1-minimality certification**: every single-entry deletion is tested
   to pass; any that still fails is taken (and the loop restarts), so
   the certificate is earned, not assumed.

Every candidate evaluation is memoized on the canonical JSON of the
entry list — runs are pure functions of their specs, so equal entries
imply an equal verdict — which makes the certification pass nearly free
when ddmin already probed the single deletions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.resilience.oracle import evaluate_case
from repro.resilience.space import case_with_entries

#: Hard ceiling on oracle executions per minimization (memoized tests
#: are free); generous — typical schedules certify in well under 100.
DEFAULT_MAX_TESTS = 400


def _canon(entries: List[Dict]) -> str:
    return json.dumps(entries, sort_keys=True, separators=(",", ":"))


@dataclass
class MinimizationResult:
    """What one minimization produced."""

    case: Dict                      #: the case with minimized entries
    fingerprint: List[str]          #: the preserved failure rule set
    verdict: Dict                   #: oracle verdict of the minimized case
    original_entries: int
    minimized_entries: int
    one_minimal: bool               #: certificate: no single deletion fails
    tests_run: int
    cache_hits: int
    log: List[str] = field(default_factory=list)

    def summary(self) -> str:
        cert = "1-minimal" if self.one_minimal else "NOT certified"
        return (f"{self.original_entries} -> {self.minimized_entries} "
                f"entries ({cert}), fingerprint "
                f"{','.join(self.fingerprint)}, "
                f"{self.tests_run} oracle runs "
                f"(+{self.cache_hits} cached)")


class BudgetExceeded(RuntimeError):
    """The oracle-execution budget ran out mid-minimization."""


class Minimizer:
    """Shrink one failing case to a 1-minimal reproducer.

    ``oracle`` is injectable for tests (default: the real campaign
    oracle); it must map a case dict to a verdict dict.
    """

    def __init__(self, case: Dict,
                 oracle: Callable[[Dict], Dict] = evaluate_case,
                 max_tests: int = DEFAULT_MAX_TESTS,
                 log: Optional[Callable[[str], None]] = None):
        self.case = case
        self.oracle = oracle
        self.max_tests = max_tests
        self.tests_run = 0
        self.cache_hits = 0
        self._cache: Dict[str, Dict] = {}
        self._log_lines: List[str] = []
        self._emit = log
        self.fingerprint: Optional[List[str]] = None

    # ------------------------------------------------------------------
    def _log(self, line: str) -> None:
        self._log_lines.append(line)
        if self._emit is not None:
            self._emit(line)

    def _verdict(self, entries: List[Dict]) -> Dict:
        key = _canon(entries)
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        if self.tests_run >= self.max_tests:
            raise BudgetExceeded(
                f"minimization exceeded {self.max_tests} oracle runs")
        self.tests_run += 1
        verdict = self.oracle(case_with_entries(self.case, entries))
        self._cache[key] = verdict
        return verdict

    def _fails(self, entries: List[Dict]) -> bool:
        """Does this entry list reproduce the original fingerprint?"""
        return self._verdict(entries)["failures"] == self.fingerprint

    # ------------------------------------------------------------------
    def _ddmin(self, entries: List[Dict]) -> List[Dict]:
        n = 2
        while len(entries) >= 2:
            chunk = max(1, (len(entries) + n - 1) // n)
            reduced = False
            for start in range(0, len(entries), chunk):
                complement = entries[:start] + entries[start + chunk:]
                if complement and self._fails(complement):
                    self._log(f"ddmin: {len(entries)} -> "
                              f"{len(complement)} entries")
                    entries = complement
                    n = max(2, n - 1)
                    reduced = True
                    break
            if not reduced:
                if n >= len(entries):
                    break
                n = min(len(entries), 2 * n)
        return entries

    # ------------------------------------------------------------------
    def _shrink_candidates(self, value):
        """Smaller candidates for one numeric field, best first."""
        out = []
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return out
        if isinstance(value, int):
            if value > 0:
                out += [0, value // 2] if value > 1 else [0]
        else:
            if value > 0.0:
                out += [0.0, round(value / 2, 4), round(value, 2)]
        return [c for c in dict.fromkeys(out) if c != value]

    def _shrink_params(self, entries: List[Dict]) -> List[Dict]:
        changed = True
        while changed:
            changed = False
            for i, entry in enumerate(entries):
                for name in sorted(entry):
                    for candidate in self._shrink_candidates(entry[name]):
                        trial = [dict(e) for e in entries]
                        trial[i][name] = candidate
                        if self._fails(trial):
                            self._log(f"shrink: entry {i} {name} "
                                      f"{entry[name]} -> {candidate}")
                            entries = trial
                            entry = trial[i]
                            changed = True
                            break
        return entries

    # ------------------------------------------------------------------
    def _certify(self, entries: List[Dict]) -> Tuple[List[Dict], bool]:
        """Test every single deletion; take any that still fails."""
        progressed = True
        while progressed and len(entries) > 1:
            progressed = False
            for i in range(len(entries)):
                smaller = entries[:i] + entries[i + 1:]
                if self._fails(smaller):
                    self._log(f"certify: single deletion of entry {i} "
                              f"still fails; taking it")
                    entries = smaller
                    progressed = True
                    break
        # Earned certificate: every single deletion was just tested (or
        # is cached) and passed.
        one_minimal = all(
            not self._fails(entries[:i] + entries[i + 1:])
            for i in range(len(entries))) if len(entries) > 1 else True
        return entries, one_minimal

    # ------------------------------------------------------------------
    def run(self) -> MinimizationResult:
        """Minimize; raises ``ValueError`` if the case does not fail."""
        entries = list(self.case["entries"])
        baseline = self._verdict(entries)
        if baseline["ok"]:
            raise ValueError("case passes its oracle; nothing to minimize")
        self.fingerprint = baseline["failures"]
        self._log(f"minimizing {len(entries)} entries, fingerprint "
                  f"{','.join(self.fingerprint)}")
        try:
            entries = self._ddmin(entries)
            entries = self._shrink_params(entries)
            entries, one_minimal = self._certify(entries)
            if one_minimal:
                # Parameter shrinking may have opened new deletions;
                # re-shrink once after certification for a fixpoint.
                entries = self._shrink_params(entries)
        except BudgetExceeded as exc:
            self._log(str(exc))
            one_minimal = False
        verdict = self._verdict(entries)
        return MinimizationResult(
            case=case_with_entries(self.case, entries),
            fingerprint=list(self.fingerprint),
            verdict=verdict,
            original_entries=len(self.case["entries"]),
            minimized_entries=len(entries),
            one_minimal=one_minimal,
            tests_run=self.tests_run,
            cache_hits=self.cache_hits,
            log=list(self._log_lines))


def replay_fingerprint(result: MinimizationResult) -> Dict:
    """Record + lockstep-replay the minimized run; report determinism.

    Returns ``{"replay_ok": bool, "events": int, "final_digest": str,
    "divergence": str | None}`` — the first-divergence fingerprint from
    the replay layer when the minimized spec is *not* deterministic
    (which is itself a bug worth banking).
    """
    from repro.resilience.space import case_to_spec
    from repro.snapshot.replay import record, replay
    from repro.snapshot.runs import run_from_spec

    spec = case_to_spec(result.case)
    try:
        _, recording = record(run_from_spec(spec))
    except Exception as exc:
        # run-crash fingerprints cannot be recorded to completion; the
        # crash itself already reproduces from the spec.
        return {"replay_ok": False, "events": 0, "final_digest": "",
                "divergence": f"record aborted: {type(exc).__name__}"}
    report = replay(recording)
    return {"replay_ok": report.ok,
            "events": recording.events_total,
            "final_digest": recording.final_digest,
            "divergence": (None if report.ok
                           else report.divergence.describe())}
