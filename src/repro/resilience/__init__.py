"""Resilience campaigns: explore the fault space, shrink what breaks.

The chaos scenarios, the defense matrix, and the cluster harness each
exercise hand-picked fault schedules.  This package turns them into
*targets* of a seeded search:

* :mod:`repro.resilience.space` — a grammar that samples structured fault
  schedules (per-target entry kinds, per-dimension intensity knobs) and
  maps them onto replayable run specs;
* :mod:`repro.resilience.oracle` — runs one spec and grades it against
  the invariant suite plus liveness checks, returning a deterministic
  failure fingerprint;
* :mod:`repro.resilience.campaign` — fans sampled cases over the sweep
  pool with crash-safe resume, then hands failures to the minimizer;
* :mod:`repro.resilience.minimize` — delta-debugs a failing schedule to
  a certified 1-minimal reproducer and shrinks its parameters;
* :mod:`repro.resilience.corpus` — the versioned on-disk regression
  corpus (``corpus/ESCORP-1``) that CI replays exactly.

CLI: ``python -m repro resilience {explore,minimize,corpus}``.
"""

from repro.resilience.space import FaultSpace, case_to_spec, sample_case
from repro.resilience.oracle import evaluate_case, evaluate_spec
from repro.resilience.minimize import Minimizer
from repro.resilience.campaign import explore
from repro.resilience.corpus import (CORPUS_FORMAT, default_corpus_dir,
                                     load_entries, replay_corpus, save_entry)

__all__ = [
    "FaultSpace", "sample_case", "case_to_spec",
    "evaluate_case", "evaluate_spec",
    "Minimizer", "explore",
    "CORPUS_FORMAT", "default_corpus_dir", "load_entries",
    "replay_corpus", "save_entry",
]
