"""The fault space: a seeded grammar over campaign cases.

A **case** is a plain JSON-able dict — ``{"target", "seed", "intensity",
"params", "entries"}`` — where ``entries`` is the ordered list the
minimizer deletes from and shrinks.  :func:`case_to_spec` maps a case
onto a replayable run spec (:func:`repro.snapshot.runs.run_from_spec`
rebuilds it bit-for-bit), so the campaign, the minimizer, and the corpus
all speak the same wire format.

Per target:

* ``chaos`` — entries are :class:`~repro.chaos.schedule.FaultEvent`
  payloads drawn from :data:`~repro.chaos.schedule.GENERATOR_FAULT_KINDS`
  (the canned kinds plus ``net-degrade``), run against one of the canned
  scenario testbeds with the schedule riding in the spec;
* ``defense`` — entries are attack components (``syn-ramp``,
  ``cgi-runaway``) mapped onto a :class:`~repro.defense.run.DefenseRun`;
* ``cluster`` — entries are a replica-chaos hit (crash / partition /
  flap) and an optional ``syn-ramp``, mapped onto a
  :class:`~repro.cluster.run.ClusterRun`.

Only the *first* entry of each defense/cluster entry kind is mapped;
surplus entries are inert, so delta debugging deletes them for free.

Every float is rounded before it enters a case: cases are compared and
cached by their canonical JSON, so the grammar must never emit digits
that JSON round-trips could disagree on.

Intensity knobs (``rate``, ``magnitude``, ``duration``) scale the
per-dimension draws; :class:`FaultSpace` jitters them per case so one
campaign sweeps mild through harsh schedules.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.chaos.schedule import (
    CLOCK_SKEW,
    DOMAIN_CRASH,
    IOBUF_FAIL,
    LINK_FLAP,
    MODULE_EXCEPTION,
    NET_DEGRADE,
    PAGE_PRESSURE,
    STUCK_THREAD,
)

TARGETS = ("chaos", "defense", "cluster")

#: Scenario beds a chaos case may run against, with the extras each one
#: unlocks: only the lossy bed has a network injector (net-degrade), and
#: only the PD bed has protection domains to crash.
_CHAOS_SCENARIOS = ("lossy-syn-flood", "oom-cgi", "domain-crash")
_CRASH_TARGETS = ("pd-http", "pd-tcp", "pd-fs")

#: Chaos window length of the canned scenarios (see ChaosScenario).
_CHAOS_WINDOW_S = 0.8

_DEFAULT_INTENSITY = {"rate": 1.0, "magnitude": 1.0, "duration": 1.0}


def _r(x: float, digits: int = 4) -> float:
    return round(float(x), digits)


# ----------------------------------------------------------------------
# Per-target samplers
# ----------------------------------------------------------------------
def _sample_chaos_entries(rng: random.Random, intensity: Dict[str, float],
                          scenario: str) -> List[Dict]:
    kinds = [MODULE_EXCEPTION, PAGE_PRESSURE, IOBUF_FAIL, STUCK_THREAD,
             CLOCK_SKEW, LINK_FLAP]
    if scenario == "lossy-syn-flood":
        kinds.append(NET_DEGRADE)
    if scenario == "domain-crash":
        kinds.append(DOMAIN_CRASH)
    rate_m = intensity["rate"]
    mag_m = intensity["magnitude"]
    dur_m = intensity["duration"]
    n = max(1, int(_CHAOS_WINDOW_S * 3.0 * rate_m))
    entries = []
    for _ in range(n):
        kind = rng.choice(kinds)
        at = rng.uniform(0.0, _CHAOS_WINDOW_S)
        target, duration, magnitude = "", 0.0, 1.0
        if kind == MODULE_EXCEPTION:
            target = rng.choice(["http", "fs", "scsi"])
            duration = rng.uniform(0.02, 0.15) * dur_m
            magnitude = min(1.0, rng.uniform(0.5, 1.0) * mag_m)
        elif kind == PAGE_PRESSURE:
            duration = rng.uniform(0.05, 0.3) * dur_m
            magnitude = min(0.99, rng.uniform(0.8, 0.98) * mag_m)
        elif kind == IOBUF_FAIL:
            duration = rng.uniform(0.05, 0.2) * dur_m
            magnitude = min(1.0, rng.uniform(0.3, 0.9) * mag_m)
        elif kind == CLOCK_SKEW:
            duration = rng.uniform(0.05, 0.3) * dur_m
            magnitude = rng.choice([0.25, 0.5, 2.0, 4.0])
        elif kind == LINK_FLAP:
            duration = rng.uniform(0.01, 0.1) * dur_m
        elif kind == NET_DEGRADE:
            duration = rng.uniform(0.05, 0.3) * dur_m
            magnitude = min(1.0, rng.uniform(0.4, 1.0) * mag_m)
        elif kind == DOMAIN_CRASH:
            target = rng.choice(list(_CRASH_TARGETS))
        entries.append({"at_s": _r(at), "kind": kind, "target": target,
                        "duration_s": _r(duration),
                        "magnitude": _r(magnitude)})
    entries.sort(key=lambda e: (e["at_s"], e["kind"], e["target"]))
    return entries


def _sample_syn_ramp(rng: random.Random,
                     intensity: Dict[str, float]) -> Dict:
    mag_m = intensity["magnitude"]
    return {"kind": "syn-ramp",
            "rate": int(rng.uniform(100, 400) * intensity["rate"]),
            "ramp_to": int(rng.uniform(2000, 6000) * mag_m),
            "ramp_s": _r(rng.uniform(0.8, 1.5), 2),
            "spoof_hosts": rng.choice([100, 500, 1000])}


def _sample_defense_case(rng: random.Random,
                         intensity: Dict[str, float]) -> Dict:
    entries = []
    if rng.random() < 0.85:
        entries.append(_sample_syn_ramp(rng, intensity))
    if rng.random() < 0.5:
        entries.append({"kind": "cgi-runaway",
                        "attackers": max(1, int(rng.uniform(2, 10)
                                                * intensity["rate"]))})
    params = {"adaptive": rng.random() < 0.5, "clients": 8,
              "document": "/doc-1k", "untrusted_cap": 16,
              "warmup_s": 0.4, "measure_s": 1.5}
    return {"entries": entries, "params": params}


def _sample_cluster_case(rng: random.Random,
                         intensity: Dict[str, float]) -> Dict:
    measure_s = 1.8
    entries = []
    if rng.random() < 0.85:
        at = rng.uniform(0.2, measure_s - 0.4)
        entries.append({
            "kind": "replica-chaos",
            "chaos": rng.choice(["crash", "partition", "flap"]),
            "at_s": _r(at, 2),
            "restore_s": _r(at + rng.uniform(0.3, 1.5)
                            * intensity["duration"], 2)})
    if rng.random() < 0.6:
        entries.append(_sample_syn_ramp(rng, intensity))
    params = {"replicas": rng.choice([1, 2, 3]),
              "adaptive": rng.random() < 0.5,
              "retry": rng.random() < 0.7, "victim": 0,
              "clients": 8, "document": "/doc-1k",
              "warmup_s": 0.4, "measure_s": measure_s}
    return {"entries": entries, "params": params}


# ----------------------------------------------------------------------
# The public sampler
# ----------------------------------------------------------------------
def sample_case(target: str, seed: int,
                intensity: Optional[Dict[str, float]] = None) -> Dict:
    """Draw one case — a pure function of ``(target, seed, intensity)``."""
    if target not in TARGETS:
        raise ValueError(f"unknown target {target!r} "
                         f"(known: {', '.join(TARGETS)})")
    eff = dict(_DEFAULT_INTENSITY)
    eff.update(intensity or {})
    eff = {k: _r(v) for k, v in eff.items()}
    rng = random.Random(f"ESCORP/{target}/{seed}")
    if target == "chaos":
        scenario = rng.choice(list(_CHAOS_SCENARIOS))
        body = {"entries": _sample_chaos_entries(rng, eff, scenario),
                "params": {"scenario": scenario, "rollback": False}}
    elif target == "defense":
        body = _sample_defense_case(rng, eff)
    else:
        body = _sample_cluster_case(rng, eff)
    return {"target": target, "seed": seed, "intensity": eff, **body}


class FaultSpace:
    """A seeded generator over one target's fault space.

    ``intensity`` sets the *base* per-dimension multipliers; each sampled
    case additionally jitters them (from its own seed) over roughly
    [0.6x, 2x], so a campaign covers mild through harsh schedules without
    the caller tuning anything.
    """

    def __init__(self, target: str,
                 intensity: Optional[Dict[str, float]] = None):
        if target not in TARGETS:
            raise ValueError(f"unknown target {target!r} "
                             f"(known: {', '.join(TARGETS)})")
        self.target = target
        self.intensity = dict(_DEFAULT_INTENSITY)
        self.intensity.update(intensity or {})

    def sample(self, seed: int) -> Dict:
        jitter = random.Random(f"ESCORP-intensity/{self.target}/{seed}")
        eff = {dim: base * jitter.uniform(0.6, 2.0)
               for dim, base in sorted(self.intensity.items())}
        return sample_case(self.target, seed, eff)


# ----------------------------------------------------------------------
# Case -> replayable run spec
# ----------------------------------------------------------------------
def _first(entries: Sequence[Dict], kind: str) -> Optional[Dict]:
    for entry in entries:
        if entry.get("kind") == kind:
            return entry
    return None


def case_to_spec(case: Dict) -> Dict:
    """Map a case onto the run spec its target executes."""
    target = case["target"]
    params = case["params"]
    entries = case["entries"]
    if target == "chaos":
        return {"run": "chaos", "scenario": params["scenario"],
                "seed": case["seed"],
                "rollback": bool(params.get("rollback", False)),
                "schedule": {"seed": case["seed"], "events": list(entries)}}

    syn = _first(entries, "syn-ramp")
    if target == "defense":
        cgi = _first(entries, "cgi-runaway")
        attack = ("mixed" if syn and cgi else "synflood" if syn
                  else "runaway-cgi" if cgi else "none")
        return {"run": "defense", "attack": attack,
                "adaptive": bool(params["adaptive"]), "seed": case["seed"],
                "config": "accounting",
                "clients": params["clients"],
                "document": params["document"],
                "syn_rate": syn["rate"] if syn else 0,
                "syn_ramp_to": syn["ramp_to"] if syn else 0,
                "syn_ramp_s": syn["ramp_s"] if syn else 1.0,
                "spoof_hosts": syn["spoof_hosts"] if syn else 0,
                "cgi_attackers": cgi["attackers"] if cgi else 0,
                "untrusted_cap": params["untrusted_cap"],
                "warmup_s": params["warmup_s"],
                "measure_s": params["measure_s"]}

    hit = _first(entries, "replica-chaos")
    return {"run": "cluster",
            "chaos": hit["chaos"] if hit else "none",
            "replicas": params["replicas"],
            "adaptive": bool(params["adaptive"]), "seed": case["seed"],
            "clients": params["clients"], "document": params["document"],
            "retry": bool(params["retry"]),
            "syn_rate": syn["rate"] if syn else 0,
            "syn_ramp_to": syn["ramp_to"] if syn else 0,
            "syn_ramp_s": syn["ramp_s"] if syn else 1.0,
            "spoof_hosts": syn["spoof_hosts"] if syn else 0,
            "victim": params["victim"],
            "chaos_at_s": hit["at_s"] if hit else 0.5,
            "chaos_restore_s": hit["restore_s"] if hit else 1.7,
            "warmup_s": params["warmup_s"],
            "measure_s": params["measure_s"]}


def case_with_entries(case: Dict, entries: List[Dict]) -> Dict:
    """A copy of ``case`` with its entry list replaced (minimizer hook)."""
    out = dict(case)
    out["entries"] = list(entries)
    return out
