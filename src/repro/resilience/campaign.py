"""The campaign driver: sample, fan out, grade, minimize, bank.

:func:`explore` samples ``budget`` cases from a :class:`FaultSpace`,
executes them over the shared sweep pool (:mod:`repro.perf.pool` — the
same shared-nothing workers the figure sweeps use, so serial and
``--workers N`` campaigns are byte-identical), grades each with the
oracle, then serially minimizes every failure and optionally banks the
reproducers into the regression corpus.

Crash-safe resume: with a cache directory, every finished verdict is
persisted to ``resilience-cells.ckpt`` as it lands (the figure9 cell-
cache pattern); a restarted campaign re-runs only the missing cases.
Case keys — ``{target}-s{seed}-{i:04d}`` — are pure functions of the
campaign parameters, so the cache survives restarts byte-for-byte.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.resilience.minimize import Minimizer, replay_fingerprint
from repro.resilience.space import FaultSpace, case_to_spec

_CACHE_KIND = "resilience-cells"
_CACHE_FILE = "resilience-cells.ckpt"


def campaign_cases(target: str, seed: int, budget: int,
                   intensity: Optional[Dict[str, float]] = None
                   ) -> List[Dict]:
    """The campaign's case list — pure function of its arguments.

    Per-case seeds are drawn from one seeded stream (not ``seed + i``)
    so campaigns with different base seeds explore disjoint schedules.
    """
    space = FaultSpace(target, intensity)
    stream = random.Random(f"ESCORP-campaign/{target}/{seed}")
    cases = []
    for i in range(budget):
        case = space.sample(stream.randrange(2**31))
        case["key"] = f"{target}-s{seed}-{i:04d}"
        cases.append(case)
    return cases


@dataclass
class CampaignFailure:
    """One failing case plus (optionally) its minimized reproducer."""

    key: str
    case: Dict
    verdict: Dict
    minimized: Optional[Dict] = None          #: minimized case
    fingerprint: List[str] = field(default_factory=list)
    one_minimal: bool = False
    tests_run: int = 0
    original_entries: int = 0
    minimized_entries: int = 0
    replay: Optional[Dict] = None             #: record/replay fingerprint
    banked_path: Optional[str] = None


@dataclass
class CampaignReport:
    """What one exploration produced."""

    target: str
    seed: int
    budget: int
    verdicts: Dict[str, Dict]                 #: key -> oracle verdict
    failures: List[CampaignFailure]

    @property
    def passed(self) -> int:
        return sum(1 for v in self.verdicts.values() if v["ok"])

    def format(self) -> str:
        lines = [f"resilience campaign: target={self.target} "
                 f"seed={self.seed} budget={self.budget}",
                 f"  {self.passed}/{len(self.verdicts)} cases passed"]
        for failure in self.failures:
            fp = ",".join(failure.verdict["failures"])
            lines.append(f"  FAIL {failure.key}: {fp}")
            if failure.minimized is not None:
                cert = ("1-minimal" if failure.one_minimal
                        else "uncertified")
                lines.append(
                    f"       minimized {failure.original_entries} -> "
                    f"{failure.minimized_entries} entries ({cert}, "
                    f"{failure.tests_run} oracle runs)")
                for entry in failure.minimized["entries"]:
                    lines.append(f"         {entry}")
            if failure.replay is not None:
                if failure.replay["replay_ok"]:
                    lines.append(
                        f"       replay OK: {failure.replay['events']} "
                        f"events, digest "
                        f"{failure.replay['final_digest'][:16]}...")
                else:
                    lines.append(f"       REPLAY DIVERGED: "
                                 f"{failure.replay['divergence']}")
            if failure.banked_path:
                lines.append(f"       banked -> {failure.banked_path}")
        if not self.failures:
            lines.append("  no failures found")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _load_cache(cache_dir: Optional[str]) -> Dict[str, Dict]:
    if not cache_dir:
        return {}
    path = os.path.join(cache_dir, _CACHE_FILE)
    if not os.path.exists(path):
        return {}
    from repro.snapshot.checkpoint import load_checkpoint
    payload = load_checkpoint(path)
    if payload.get("kind") != _CACHE_KIND:
        return {}
    return payload["cells"]


#: Failure fingerprints the in-process oracle cannot reproduce — they
#: name how the *harness* around the run died, not what the run did —
#: so the minimizer (which replays cases through the oracle) skips them.
_UNMINIMIZABLE_PREFIXES = ("supervision:", "cell-")


def _is_minimizable(verdict: Dict) -> bool:
    return not any(f.startswith(_UNMINIMIZABLE_PREFIXES)
                   for f in verdict["failures"])


def explore(target: str = "chaos", seed: int = 7, budget: int = 50, *,
            workers: int = 0,
            intensity: Optional[Dict[str, float]] = None,
            cache_dir: Optional[str] = None,
            minimize: bool = True,
            max_tests: int = 400,
            bank_dir: Optional[str] = None,
            supervised: bool = False,
            supervise_dir: Optional[str] = None,
            log: Optional[Callable[[str], None]] = None
            ) -> CampaignReport:
    """Run one campaign; returns a :class:`CampaignReport`.

    ``bank_dir`` writes each minimized reproducer into the corpus (named
    by its campaign key).  Minimization runs serially in-process after
    the sweep, so its memoized oracle calls stay deterministic.

    ``supervised`` routes every case through a crash-only supervised
    child (:mod:`repro.supervise`): a case that SIGKILLs, hangs or
    crashes its process is retried with resume and — if it keeps dying —
    recorded as a ``supervision:<classification>`` verdict while the
    campaign continues.  ``supervise_dir`` keeps the per-case state
    directories (checkpoints + journals) for post-mortem; by default
    they live under ``cache_dir`` or a temp directory.
    """
    from repro.perf.pool import CellFailure, SweepCell, run_cells

    say = log or (lambda line: None)
    cases = campaign_cases(target, seed, budget, intensity)
    by_key = {c["key"]: c for c in cases}
    cells = [SweepCell(key=c["key"], runner="resilience",
                       params={"spec": case_to_spec(c)}) for c in cases]

    cache = _load_cache(cache_dir)
    if cache:
        hits = sum(1 for c in cells if c.key in cache)
        say(f"resumed {hits}/{len(cells)} cases from cache")

    def persist(cell, verdict):
        cache[cell.key] = verdict
        if cache_dir:
            from repro.snapshot.checkpoint import save_checkpoint
            os.makedirs(cache_dir, exist_ok=True)
            save_checkpoint(os.path.join(cache_dir, _CACHE_FILE),
                            {"kind": _CACHE_KIND, "cells": cache})

    if supervised:
        verdicts = _run_supervised(cells, by_key, cache, persist,
                                   supervise_dir or
                                   (os.path.join(cache_dir, "supervise")
                                    if cache_dir else None), say)
    else:
        verdicts = run_cells(cells, workers=workers, cache=cache,
                             on_cell_done=persist)
        # A worker that died twice running a cell surfaces as a
        # CellFailure value; shape it like a verdict so the campaign
        # degrades to one recorded failure instead of a KeyError.
        verdicts = {
            key: ({"ok": False, "failures": [f"cell-{v.kind}"],
                   "digest": "", "events": 0, "detail": v.error}
                  if isinstance(v, CellFailure) else v)
            for key, v in verdicts.items()}

    failures: List[CampaignFailure] = []
    for key in sorted(k for k, v in verdicts.items() if not v["ok"]):
        failure = CampaignFailure(key=key, case=by_key[key],
                                  verdict=verdicts[key])
        failures.append(failure)
        say(f"FAIL {key}: {','.join(verdicts[key]['failures'])}")
        if not minimize:
            continue
        if not _is_minimizable(verdicts[key]):
            say("  not minimizable: the failure names how the harness "
                "died, not what the run did")
            continue
        minimizer = Minimizer(by_key[key], max_tests=max_tests,
                              log=lambda line: say(f"  {line}"))
        result = minimizer.run()
        failure.minimized = result.case
        failure.fingerprint = result.fingerprint
        failure.one_minimal = result.one_minimal
        failure.tests_run = result.tests_run
        failure.original_entries = result.original_entries
        failure.minimized_entries = result.minimized_entries
        failure.replay = replay_fingerprint(result)
        say(f"  {result.summary()}")
        if bank_dir:
            from repro.resilience.corpus import save_entry
            expected = {"failures": result.fingerprint,
                        "digest": result.verdict["digest"],
                        "events": result.verdict["events"]}
            failure.banked_path = save_entry(
                bank_dir, key, target=target, case=result.case,
                spec=case_to_spec(result.case), expected=expected,
                provenance={"campaign_seed": seed,
                            "budget": budget,
                            "tests_run": result.tests_run,
                            "original_entries": result.original_entries,
                            "one_minimal": result.one_minimal,
                            "replay_ok": (failure.replay or {}).get(
                                "replay_ok")})
            say(f"  banked -> {failure.banked_path}")

    return CampaignReport(target=target, seed=seed, budget=budget,
                          verdicts=dict(verdicts), failures=failures)


def _run_supervised(cells, by_key, cache, persist, state_root, say):
    """Execute campaign cells through supervised child processes.

    Serial by design: each child already is its own process, and the
    per-case state directories (checkpoint + journal + attempt logs)
    under ``state_root`` are the artifact a post-mortem wants.
    """
    import tempfile

    from repro.resilience.space import case_to_spec
    from repro.supervise import Supervisor, supervision_verdict

    if state_root is None:
        state_root = tempfile.mkdtemp(prefix="resilience-supervise-")
    verdicts = {}
    for cell in cells:
        if cell.key in cache:
            verdicts[cell.key] = cache[cell.key]
            continue
        sup = Supervisor(os.path.join(state_root, cell.key))
        sres = sup.run(case_to_spec(by_key[cell.key]), grade=True)
        verdict = supervision_verdict(sres)
        if sres.gave_up:
            say(f"supervision gave up on {cell.key}: "
                f"{sres.classification} after "
                f"{len(sres.attempts)} attempts "
                f"(state kept in {sres.state_dir})")
        verdicts[cell.key] = verdict
        persist(cell, verdict)
    return {c.key: verdicts[c.key] for c in cells}
