"""The participant-address library.

Escort "currently supplies libraries to manage messages, hash tables,
participant addresses, attributes, queues, heaps, and time" (paper section
2.3).  Participant addresses are the x-kernel convention Scout inherited:
an endpoint is a *stack* of per-protocol addresses (e.g. port on top of IP
address on top of a MAC), pushed by each layer as an open call travels
down the graph, and a *participant list* names the endpoints of a session
(remote first, then local).

The TCP module's open calls in this reproduction carry their endpoints as
plain attributes; this library exists for module authors who want the
composable form, and it is what the UDP examples use in tests.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple


class Participant:
    """One endpoint: a stack of (protocol, address) pairs.

    The top of the stack is the most specific address (pushed last) —
    e.g. ``[("eth", mac), ("ip", "10.0.0.80"), ("tcp", 80)]`` reads
    bottom-up.
    """

    def __init__(self, entries: Optional[Sequence[Tuple[str, Any]]] = None):
        self._stack: List[Tuple[str, Any]] = list(entries or [])

    # ------------------------------------------------------------------
    def push(self, protocol: str, address: Any) -> "Participant":
        """Push a layer's address; returns self for chaining."""
        self._stack.append((protocol, address))
        return self

    def pop(self) -> Tuple[str, Any]:
        """Pop the most specific address (raises IndexError when empty)."""
        if not self._stack:
            raise IndexError("participant address stack is empty")
        return self._stack.pop()

    def peek(self) -> Optional[Tuple[str, Any]]:
        """The top entry without removing it (None when empty)."""
        return self._stack[-1] if self._stack else None

    def address_for(self, protocol: str) -> Any:
        """The address pushed by ``protocol`` (KeyError if absent)."""
        for proto, addr in reversed(self._stack):
            if proto == protocol:
                return addr
        raise KeyError(f"no {protocol!r} address in participant")

    def __contains__(self, protocol: str) -> bool:
        return any(proto == protocol for proto, _ in self._stack)

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._stack)

    def copy(self) -> "Participant":
        """An independent copy (opens must not mutate callers' stacks)."""
        return Participant(self._stack)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Participant) and \
            other._stack == self._stack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = "/".join(f"{p}:{a}" for p, a in self._stack)
        return f"<Participant {inner}>"


class ParticipantList:
    """The endpoints of a session: remote first, then local, then extras.

    This mirrors the x-kernel calling convention for ``open``: the first
    participant names who you are talking *to*, the second (optional) who
    you are talking *as*.
    """

    def __init__(self, remote: Participant,
                 local: Optional[Participant] = None,
                 *extras: Participant):
        self.participants: List[Participant] = [remote]
        if local is not None:
            self.participants.append(local)
        self.participants.extend(extras)

    @property
    def remote(self) -> Participant:
        """The peer endpoint."""
        return self.participants[0]

    @property
    def local(self) -> Optional[Participant]:
        """Our endpoint, when specified."""
        return self.participants[1] if len(self.participants) > 1 else None

    def __len__(self) -> int:
        return len(self.participants)

    def __iter__(self) -> Iterator[Participant]:
        return iter(self.participants)

    @classmethod
    def for_tcp(cls, remote_ip: str, remote_port: int,
                local_ip: str = "", local_port: int = 0) -> "ParticipantList":
        """Convenience constructor for the common TCP/IP endpoint shape."""
        remote = Participant().push("ip", remote_ip).push("tcp", remote_port)
        if local_ip or local_port:
            local = Participant().push("ip", local_ip).push("tcp",
                                                            local_port)
            return cls(remote, local)
        return cls(remote)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ParticipantList {self.participants!r}>"
