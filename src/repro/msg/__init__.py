"""The message library (Mosberger, TR97-19) — one of Escort's trusted
libraries, mapped into all protection domains."""

from repro.msg.message import Message
from repro.msg.participants import Participant, ParticipantList

__all__ = ["Message", "Participant", "ParticipantList"]
