"""Messages over IOBuffers.

The message library "is used to efficiently manage the IOBuffer and offer a
simple user interface tailored for manipulating network messages" (paper
section 3.3).  Two properties from the paper are implemented here:

* header push/pop without copying — protocol modules prepend and strip
  headers by adjusting message metadata, never touching the payload;
* a second, user-level layer of reference counting on top of the kernel's
  IOBuffer locks, so each protection domain holds at most one kernel lock
  per buffer no matter how many messages alias it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.kernel.errors import InvalidOperationError
from repro.kernel.iobuffer import IOBuffer, IOBufferCache
from repro.kernel.owner import Owner


class Message:
    """A network message: stacked headers plus an optional IOBuffer body."""

    def __init__(self, body_len: int = 0,
                 iobuf: Optional[IOBuffer] = None,
                 payload: Any = None):
        if body_len < 0:
            raise ValueError("body_len must be >= 0")
        self.body_len = body_len
        self.iobuf = iobuf
        self.payload = payload
        self._headers: List[Tuple[str, int]] = []
        # User-level reference counts per owner: {owner: count}.
        self._refs = {}
        self._kernel_locked_by = set()

    # ------------------------------------------------------------------
    # Headers
    # ------------------------------------------------------------------
    def push(self, name: str, size: int) -> None:
        """Prepend a header (no copy: metadata only)."""
        if size < 0:
            raise ValueError("header size must be >= 0")
        self._headers.append((name, size))

    def pop(self) -> Tuple[str, int]:
        """Strip the outermost header."""
        if not self._headers:
            raise InvalidOperationError("pop on message with no headers")
        return self._headers.pop()

    def peek(self) -> Optional[Tuple[str, int]]:
        return self._headers[-1] if self._headers else None

    @property
    def header_len(self) -> int:
        return sum(size for _, size in self._headers)

    @property
    def total_len(self) -> int:
        return self.header_len + self.body_len

    # ------------------------------------------------------------------
    # User-level reference counting over kernel locks
    # ------------------------------------------------------------------
    def add_ref(self, owner: Owner, iobufs: Optional[IOBufferCache] = None) -> None:
        """Take a user-level reference for ``owner``.

        The first reference per owner takes the single kernel lock the
        library is allowed; later ones are pure library bookkeeping —
        "each protection domain holds at most one kernel lock on any
        IOBuffer, reducing the number of kernel calls".
        """
        count = self._refs.get(owner, 0)
        if count == 0 and self.iobuf is not None and iobufs is not None:
            iobufs.lock(self.iobuf, owner)
            self._kernel_locked_by.add(owner)
        self._refs[owner] = count + 1

    def release(self, owner: Owner, iobufs: Optional[IOBufferCache] = None) -> None:
        """Drop a reference; the last one per owner drops the kernel lock."""
        count = self._refs.get(owner, 0)
        if count == 0:
            raise InvalidOperationError(
                f"{owner.name} holds no reference on this message")
        count -= 1
        if count == 0:
            del self._refs[owner]
            if owner in self._kernel_locked_by and iobufs is not None:
                iobufs.unlock(self.iobuf, owner)
                self._kernel_locked_by.discard(owner)
        else:
            self._refs[owner] = count

    def refs_of(self, owner: Owner) -> int:
        return self._refs.get(owner, 0)

    def kernel_locks(self) -> int:
        return len(self._kernel_locked_by)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hdrs = "+".join(name for name, _ in reversed(self._headers))
        return f"<Message [{hdrs}] body={self.body_len}>"
