"""Domain-level snapshots and rollback (the watchdog's middle rung).

The chaos watchdog's only containment tool so far has been teardown:
destroy the wedged protection domain and every path crossing it.  Rollback
is gentler — :class:`DomainSnapshotter` periodically records *which kernel
objects a healthy domain owns* (paths, threads, events, semaphores, heap
allocations), and on a fault the watchdog can reclaim exactly the objects
created **after** the last good snapshot, preserving everything that
predates it.

Two rules keep this sound inside the accounting story:

* **Cycle counters never rewind.**  The paper's ledger is monotonic — the
  sum over owners must equal the wall clock — so rollback reclaims
  objects, not history.  The invariant checker stays green across a
  rollback precisely because no charge is ever un-charged.
* **A snapshot is only taken of a domain that looks healthy** (the
  watchdog skips domains consuming over half their cycle budget in the
  current window), so a wedged state is never captured as "good".  A
  domain whose wedge predates every snapshot yields an empty rollback,
  which the watchdog treats as failure and escalates to teardown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["DomainSnapshot", "DomainSnapshotter", "RollbackReport"]


@dataclass
class DomainSnapshot:
    """Identity sets of the objects a domain owned at snapshot time."""

    domain: str
    tick: int
    paths: Set = field(default_factory=set)
    threads: Set = field(default_factory=set)
    events: Set = field(default_factory=set)
    semaphores: Set = field(default_factory=set)
    allocations: Set = field(default_factory=set)
    cycles: int = 0


@dataclass
class RollbackReport:
    """What one rollback reclaimed."""

    domain: str
    snapshot_tick: int
    rollback_tick: int
    paths_killed: List[str] = field(default_factory=list)
    threads_killed: int = 0
    events_cancelled: int = 0
    semaphores_destroyed: int = 0
    heap_allocs_freed: int = 0
    cycles_preserved: int = 0

    @property
    def reclaimed_anything(self) -> bool:
        return bool(self.paths_killed or self.threads_killed
                    or self.events_cancelled or self.semaphores_destroyed
                    or self.heap_allocs_freed)

    @property
    def snapshot_age_ticks(self) -> int:
        return self.rollback_tick - self.snapshot_tick


class DomainSnapshotter:
    """Takes and applies per-domain object snapshots."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.snapshots: Dict[str, DomainSnapshot] = {}
        self.taken = 0
        self.rollbacks = 0
        self.reports: List[RollbackReport] = []

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def snapshot_domain(self, pd) -> Optional[DomainSnapshot]:
        """Record what ``pd`` owns right now (None if it is dead)."""
        if pd.destroyed:
            self.snapshots.pop(pd.name, None)
            return None
        snap = DomainSnapshot(
            domain=pd.name,
            tick=self.kernel.sim.now,
            paths=set(pd.crossing_paths),
            threads=set(pd.thread_list),
            events=set(pd.event_list),
            semaphores=set(pd.semaphore_list),
            allocations=set(pd._allocations),
            cycles=pd.usage.cycles,
        )
        self.snapshots[pd.name] = snap
        self.taken += 1
        return snap

    def observe(self, skip=()) -> int:
        """Snapshot every live unprivileged domain not named in ``skip``.

        The watchdog calls this each scan with the currently-suspect
        domains in ``skip``, so only healthy-looking states are captured.
        Returns the number of snapshots taken.
        """
        count = 0
        for pd in sorted(self.kernel.domains, key=lambda d: d.name):
            if pd.privileged or pd.destroyed or pd.name in skip:
                continue
            if self.snapshot_domain(pd) is not None:
                count += 1
        return count

    def can_rollback(self, pd) -> bool:
        return not pd.destroyed and pd.name in self.snapshots

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self, pd) -> Optional[RollbackReport]:
        """Reclaim everything ``pd`` gained since its last good snapshot.

        Kills post-snapshot paths, threads, events, semaphores, and
        domain-charged heap allocations — in that order, each set iterated
        in a deterministic sort — and leaves pre-snapshot state and all
        cycle accounting untouched.  Returns None when no snapshot exists.
        """
        snap = self.snapshots.get(pd.name)
        if snap is None or pd.destroyed:
            return None
        report = RollbackReport(domain=pd.name,
                                snapshot_tick=snap.tick,
                                rollback_tick=self.kernel.sim.now,
                                cycles_preserved=pd.usage.cycles)

        new_paths = sorted((p for p in pd.crossing_paths
                            if p not in snap.paths and not p.destroyed),
                           key=lambda p: p.name)
        for path in new_paths:
            self.kernel.kill_owner(path)
            report.paths_killed.append(path.name)

        new_threads = sorted((t for t in pd.thread_list
                              if t not in snap.threads and t.alive),
                             key=lambda t: t.name)
        for thread in new_threads:
            thread.kill()
            report.threads_killed += 1

        new_events = sorted((e for e in pd.event_list
                             if e not in snap.events and not e.cancelled),
                            key=lambda e: e.event_id)
        for event in new_events:
            event.cancel()
            report.events_cancelled += 1

        new_semas = sorted((s for s in pd.semaphore_list
                            if s not in snap.semaphores and not s.destroyed),
                           key=lambda s: s.sema_id)
        for sema in new_semas:
            sema.destroy()
            report.semaphores_destroyed += 1

        # Path-charged allocations went away with their paths above; what
        # remains to reclaim is post-snapshot memory charged to the domain
        # itself (the slow-leak case the oom scenario exercises).
        new_allocs = sorted((a for a in pd._allocations
                             if a not in snap.allocations
                             and a.charged_to is pd),
                            key=lambda a: a.alloc_id)
        for alloc in new_allocs:
            pd.heap_free(alloc)
            report.heap_allocs_freed += 1

        self.rollbacks += 1
        self.reports.append(report)
        # The applied snapshot stays valid: the domain is back at (a
        # superset-free version of) that state, and a second fault may
        # still roll back to it if the watchdog's per-domain limit allows.
        return report

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """Digest-friendly view (object identities reduced to counts)."""
        return {
            "taken": self.taken,
            "rollbacks": self.rollbacks,
            "domains": {
                name: {"tick": snap.tick,
                       "paths": len(snap.paths),
                       "threads": len(snap.threads),
                       "events": len(snap.events),
                       "semaphores": len(snap.semaphores),
                       "allocations": len(snap.allocations)}
                for name, snap in sorted(self.snapshots.items())},
        }
