"""The write-ahead run journal (format ``ESCJRNL 1``).

Checkpoints are coarse: a run killed between two checkpoint cuts loses
everything since the last one.  The journal closes that gap with a much
cheaper record — every time the run crosses a *milestone* (boot, start
load, open/close the measurement window, a chaos action), the driver
appends one fsync'd line pinning where execution stood (tick, scheduler
sequence, events executed, milestones done) and what the machine hashed
to (the full state digest).  A run SIGKILLed at *any* byte boundary then
resumes from ``last checkpoint + journal fast-forward``: rebuild from the
spec (or the checkpoint), deterministically re-execute to the furthest
journaled position, verify the digest bit for bit, and continue.

File layout — append-only, line-oriented, human-greppable::

    ESCJRNL 1\\n
    <crc32 hex8> {"kind":"spec","spec":{...}}\\n
    <crc32 hex8> {"kind":"milestone","tick":...,"seq":...,...}\\n
    ...

Each record line carries the CRC-32 of its own JSON text, so the reader
can tell a torn tail (the writer died mid-``write``) from corruption.
The scan is crash-only: the first line that is incomplete, fails its CRC
or fails to parse ends the readable prefix — everything before it is
trusted, everything after it is ignored.  Appends are flushed and
fsync'd before the writer moves on, which is what makes the journal
*write-ahead*: a milestone is either durably journaled or it never
happened.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

JOURNAL_MAGIC = b"ESCJRNL"
JOURNAL_VERSION = 1
_HEADER_LINE = JOURNAL_MAGIC + b" " + str(JOURNAL_VERSION).encode() + b"\n"

__all__ = ["JournalError", "JournalScan", "RunJournal", "scan_journal",
           "JOURNAL_HEADER_LINE", "encode_record", "decode_record"]


class JournalError(Exception):
    """The journal file exists but cannot be used (wrong magic/version)."""


@dataclass
class JournalScan:
    """Everything a reader recovered from a journal file."""

    #: The run spec recorded in the header record (None if absent).
    spec: Optional[Dict] = None
    #: Milestone records, in append order (each a plain dict).
    milestones: List[Dict] = field(default_factory=list)
    #: True when the file ends in an unreadable record (torn write).
    torn_tail: bool = False
    #: Total records successfully read (spec record included).
    records: int = 0

    @property
    def last(self) -> Optional[Dict]:
        """The furthest durably journaled milestone, if any."""
        return self.milestones[-1] if self.milestones else None


def _encode(record: Dict) -> bytes:
    """One dict -> CRC-framed record line (``<crc32 hex8> <json>\\n``)."""
    body = json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode()
    return format(zlib.crc32(body), "08x").encode() + b" " + body + b"\n"


def _decode(line: bytes) -> Optional[Dict]:
    """One record line -> dict, or None if torn/corrupt."""
    if not line.endswith(b"\n"):
        return None  # torn: the writer died mid-write
    sep = line.find(b" ")
    if sep != 8:
        return None
    body = line[9:-1]
    try:
        if int(line[:8], 16) != zlib.crc32(body):
            return None
        record = json.loads(body)
    except (ValueError, TypeError):
        return None
    return record if isinstance(record, dict) else None


#: The reusable ESCJRNL framing, also used by the observability flight
#: recorder (:mod:`repro.obs.recorder`) for its telemetry sidecar: the
#: same header line, the same per-line ``<crc32 hex8> <json>\n`` records,
#: the same crash-only torn-tail semantics.
JOURNAL_HEADER_LINE = _HEADER_LINE
encode_record = _encode
decode_record = _decode


def scan_journal(path: str) -> JournalScan:
    """Read the trustworthy prefix of a journal file.

    Raises :class:`JournalError` only when the file exists but is not a
    journal at all (bad magic or version) — a torn or empty file is a
    normal crash residue and yields an empty scan instead.
    """
    scan = JournalScan()
    try:
        with open(path, "rb") as fh:
            lines = fh.readlines()
    except OSError:
        return scan
    if not lines:
        return scan
    if lines[0] != _HEADER_LINE:
        raise JournalError(
            f"{path}: not a run journal (bad header {lines[0][:24]!r})")
    for line in lines[1:]:
        record = _decode(line)
        if record is None:
            scan.torn_tail = True
            break
        scan.records += 1
        kind = record.get("kind")
        if kind == "spec" and scan.spec is None:
            scan.spec = record.get("spec")
        elif kind == "milestone":
            scan.milestones.append(record)
    return scan


class RunJournal:
    """Append-only writer; every append is durable before it returns."""

    def __init__(self, path: str, spec: Optional[Dict] = None):
        self.path = path
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            scan_journal(path)  # validates magic/version; raises if alien
        self._fh = open(path, "ab")
        if fresh:
            self._fh.write(_HEADER_LINE)
            if spec is not None:
                self._fh.write(_encode({"kind": "spec", "spec": spec}))
            self._sync()
            directory = os.path.dirname(path) or "."
            try:
                fd = os.open(directory, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            except OSError:  # pragma: no cover - exotic filesystems
                pass

    # ------------------------------------------------------------------
    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, record: Dict) -> None:
        """Durably append one record (write + flush + fsync)."""
        self._fh.write(_encode(record))
        self._sync()

    def milestone(self, driver) -> None:
        """Journal a :class:`~repro.snapshot.driver.RunDriver` position.

        Called by the driver immediately after performing a milestone;
        the digest makes the record self-verifying at resume time.
        """
        self.append({
            "kind": "milestone",
            "tick": driver.sim.now,
            "seq": driver.sim.seq,
            "events": driver.sim.events_processed,
            "milestones_done": driver.milestones_done,
            "digest": driver.run.digest(),
        })

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
