"""Whole-machine checkpoint/restore, deterministic replay, rollback.

The subsystem in one paragraph: a machine state is *named* by its run spec
plus its position on the virtual clock, *summarized* canonically
(:mod:`~repro.snapshot.digest`), *persisted* as a versioned checkpoint
file (:mod:`~repro.snapshot.checkpoint`), *restored* by digest-verified
deterministic re-execution (:mod:`~repro.snapshot.driver`), *verified* at
per-event granularity by lockstep replay (:mod:`~repro.snapshot.replay`),
and *partially rewound* at domain granularity for the chaos watchdog
(:mod:`~repro.snapshot.rollback`).
"""

from repro.snapshot.checkpoint import (CheckpointError, CheckpointFormatError,
                                       CheckpointVersionError, FORMAT_VERSION,
                                       load_checkpoint, save_checkpoint)
from repro.snapshot.digest import (canonical_json, light_state,
                                   machine_digest, machine_summary,
                                   summary_diff)
from repro.snapshot.driver import RestoreMismatchError, RunDriver
from repro.snapshot.journal import (JournalError, JournalScan, RunJournal,
                                    scan_journal)
from repro.snapshot.replay import (Divergence, Recording, ReplayReport,
                                   record, replay)
from repro.snapshot.rollback import (DomainSnapshot, DomainSnapshotter,
                                     RollbackReport)
from repro.snapshot.runs import (ExperimentRun, ReplayableRun, reset_ids,
                                 run_from_spec)

__all__ = [
    "CheckpointError", "CheckpointFormatError", "CheckpointVersionError",
    "FORMAT_VERSION", "load_checkpoint", "save_checkpoint",
    "canonical_json", "light_state", "machine_digest", "machine_summary",
    "summary_diff",
    "RestoreMismatchError", "RunDriver",
    "JournalError", "JournalScan", "RunJournal", "scan_journal",
    "Divergence", "Recording", "ReplayReport", "record", "replay",
    "DomainSnapshot", "DomainSnapshotter", "RollbackReport",
    "ExperimentRun", "ReplayableRun", "reset_ids", "run_from_spec",
]
