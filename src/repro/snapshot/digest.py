"""Canonical state summaries and digests of a simulated machine.

The snapshot subsystem never serializes live Python objects (thread bodies
are suspended generator frames — unserializable by construction).  Instead
it reduces the machine to a *canonical summary*: a nested dict of plain
ints/strings covering everything the paper's accounting story cares about —
the virtual clock, the event heap's shape, per-owner cycle/page/object
counters, the page pool, the softclock wheel, TCP demux state, workload
statistics.  Two machine states are considered identical exactly when
their summaries are identical; the :func:`machine_digest` SHA-256 of the
canonical JSON is what checkpoints pin and what replay compares.

Summaries deliberately exclude anything tied to the host process — object
ids, memory addresses, wall-clock time — and iterate every collection in a
sorted order, so the digest of a machine rebuilt in a fresh interpreter
matches the original bit for bit (that property *is* the determinism
guarantee, and :mod:`repro.snapshot.replay` turns any breach of it into a
pinpointed divergence).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

__all__ = [
    "machine_summary",
    "machine_digest",
    "light_state",
    "summary_diff",
    "canonical_json",
]


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=_fallback)


def _fallback(obj):
    # Last-resort encoder: enums and simple value objects stringify;
    # anything address-dependent must never reach here.
    return str(obj)


def machine_digest(bed) -> str:
    """SHA-256 digest of the canonical machine summary."""
    return hashlib.sha256(
        canonical_json(machine_summary(bed)).encode()).hexdigest()


def light_state(sim, kernel=None) -> List[int]:
    """A cheap per-event fingerprint: ``[now, seq, busy, idle, intr, free]``.

    Computed after *every* event during recording, so it must cost a few
    attribute reads, not a tree walk.  The six counters move on virtually
    every kind of event, which makes the first divergent event visible at
    exact event granularity; the full digest at journal boundaries catches
    anything these six miss.
    """
    out = [sim.now, sim.seq]
    if kernel is not None:
        cpu = kernel.cpu
        out += [cpu.busy_cycles, cpu.idle_cycles, cpu.interrupt_cycles,
                kernel.allocator.free_pages]
    else:
        out += [0, 0, 0, 0]
    return out


# ----------------------------------------------------------------------
# Summary builders
# ----------------------------------------------------------------------
def machine_summary(bed) -> Dict:
    """Canonical summary of a whole testbed (server + sim + workload).

    A clustered testbed (anything with a ``replicas`` list) gets the
    cluster-shaped summary instead: the same per-server sections repeated
    per replica, plus dispatcher, health-monitor and cluster-defense
    state.
    """
    if getattr(bed, "replicas", None) is not None:
        return _cluster_summary(bed)
    sim = bed.sim
    out: Dict = {
        "sim": _sim_summary(sim),
        "stats": _stats_summary(getattr(bed, "stats", None)),
    }
    server = getattr(bed, "server", None)
    kernel = getattr(server, "kernel", None)
    if kernel is not None:
        out["kernel"] = _kernel_summary(kernel)
        out["owners"] = _owners_summary(server, kernel)
        out["paths"] = _path_manager_summary(server)
        out["tcp"] = _tcp_summary(server)
    if bed.syn_attacker is not None:
        out["syn_attacker"] = {"sent": bed.syn_attacker.sent}
    defense = getattr(server, "defense", None)
    if defense is not None:
        out["defense"] = _defense_summary(defense)
    out["clients"] = len(getattr(bed, "clients", ()))
    return out


def _cluster_summary(bed) -> Dict:
    """Canonical summary of a clustered testbed (dispatcher + N replicas)."""
    out: Dict = {
        "sim": _sim_summary(bed.sim),
        "stats": _stats_summary(getattr(bed, "stats", None)),
        "dispatcher": bed.dispatcher.summary(),
        "health": bed.health.summary(),
        "replicas": [],
    }
    for replica in bed.replicas:
        server = replica.server
        kernel = server.kernel
        entry = {
            "index": replica.index,
            "link_up": replica.link_up,
            "crashes": replica.crashes,
            "restores": replica.restores,
            "flushed_paths": replica.flushed_paths,
            "gate": replica.gate.stats(),
            "kernel": _kernel_summary(kernel),
            "owners": _owners_summary(server, kernel),
            "paths": _path_manager_summary(server),
            "tcp": _tcp_summary(server),
        }
        defense = getattr(server, "defense", None)
        if defense is not None:
            entry["defense"] = _defense_summary(defense)
        out["replicas"].append(entry)
    if bed.syn_attacker is not None:
        out["syn_attacker"] = {"sent": bed.syn_attacker.sent}
    if getattr(bed, "defense", None) is not None:
        out["cluster_defense"] = bed.defense.summary()
    out["clients"] = len(getattr(bed, "clients", ()))
    return out


def _defense_summary(defense) -> Dict:
    return {
        "scans": defense.scans,
        "absorbed": defense.absorbed,
        "transitions": [[a.at_s, a.kind, a.rung] for a in defense.log],
        "rungs": {r: bool(v) for r, v in sorted(defense.rung_active.items())},
        "buckets": sorted(defense.buckets),
        "degrade_level": defense.server.http.degrade_level,
    }


def _sim_summary(sim) -> Dict:
    return {
        "now": sim.now,
        "seq": sim.seq,
        "events_processed": sim.events_processed,
        "live_events": [list(t) for t in sim.live_events()],
    }


def _stats_summary(stats) -> Dict:
    if stats is None:
        return {}
    out = {
        "completions": {cls: len(ticks)
                        for cls, ticks in sorted(stats._completions.items())},
        "last_completion": {cls: (ticks[-1] if ticks else 0)
                            for cls, ticks in
                            sorted(stats._completions.items())},
        "failures": dict(sorted(stats.failures.items())),
    }
    outcomes = getattr(stats, "_outcomes", None)
    if outcomes:
        out["outcomes"] = {f"{cls}/{kind}": len(ticks)
                           for (cls, kind), ticks in
                           sorted(outcomes.items())}
    return out


def _kernel_summary(kernel) -> Dict:
    cpu = kernel.cpu
    return {
        "cpu": {
            "busy": cpu.busy_cycles,
            "idle": cpu.idle_cycles,
            "interrupt": cpu.interrupt_cycles,
            "current": getattr(cpu.current, "name", ""),
            "free_at": cpu._free_at,
        },
        "allocator": {
            "free": kernel.allocator.free_pages,
            "allocated": len(kernel.allocator.allocated),
        },
        "softclock": {
            "ticks": kernel.softclock.ticks,
            "wheel": kernel.softclock.entries(),
        },
        "counters": {
            "runaway_traps": kernel.runaway_traps,
            "fault_traps": kernel.fault_traps,
            "uncontained_faults": kernel.uncontained_faults,
            "sheds": kernel.sheds,
            "shedding": kernel.shedding,
            "kills": len(kernel.kill_reports),
        },
        "domains": sorted(d.name for d in kernel.domains),
    }


def _iter_owners(server, kernel):
    seen = set()
    roots = [kernel.kernel_owner, kernel.idle_owner]
    roots += list(kernel.domains)
    manager = getattr(server, "path_manager", None)
    if manager is not None:
        roots += list(getattr(manager, "paths", ()))
    for owner in roots:
        if id(owner) in seen:
            continue
        seen.add(id(owner))
        yield owner


def _owners_summary(server, kernel) -> List[Dict]:
    out = []
    for owner in _iter_owners(server, kernel):
        u = owner.usage
        out.append({
            "name": owner.name,
            "type": owner.type.value,
            "destroyed": owner.destroyed,
            "cycles": u.cycles,
            "pages": u.pages,
            "kmem": u.kmem,
            "heap_bytes": u.heap_bytes,
            "stacks": u.stacks,
            "events": u.events,
            "semaphores": u.semaphores,
            "threads": len(owner.thread_list),
            "live_threads": sum(1 for t in owner.thread_list
                                if t.sim_thread.alive),
            "iobuf_locks": len(owner.iobuffer_locks),
            "heap_allocations": len(owner.heap_allocations),
        })
    out.sort(key=lambda o: (o["name"], o["type"]))
    return out


def _path_manager_summary(server) -> Dict:
    manager = getattr(server, "path_manager", None)
    if manager is None:
        return {}
    return {
        "created": manager.paths_created,
        "destroyed": manager.paths_destroyed,
        "killed": manager.paths_killed,
        "rejected": manager.paths_rejected,
        "live": sorted(p.name for p in getattr(manager, "paths", ())
                       if not p.destroyed),
    }


def _tcp_summary(server) -> Dict:
    tcp = getattr(server, "tcp", None)
    if tcp is None:
        return {}
    out: Dict = {
        "demux_drops": dict(sorted(getattr(tcp, "demux_drops", {}).items())),
    }
    listeners = getattr(tcp, "listeners", None)
    if listeners is not None:
        try:
            out["listeners"] = sorted(str(k) for k in listeners)
        except TypeError:  # pragma: no cover - defensive
            out["listeners"] = len(listeners)
    if getattr(tcp, "syncookies_sent", 0) or getattr(tcp, "syn_arrivals",
                                                     None):
        out["syncookies"] = {"sent": tcp.syncookies_sent,
                             "accepted": tcp.syncookies_accepted,
                             "on": tcp.syncookies}
        out["syn_arrivals"] = dict(sorted(tcp.syn_arrivals.items()))
    return out


# ----------------------------------------------------------------------
# Diffing (for divergence reports)
# ----------------------------------------------------------------------
def summary_diff(expected, actual, prefix: str = "",
                 limit: int = 40) -> List[str]:
    """Human-readable list of leaf paths where two summaries differ."""
    diffs: List[str] = []
    _diff(expected, actual, prefix, diffs, limit)
    return diffs


def _diff(a, b, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(f"{sub}: only in actual ({_short(b[key])})")
            elif key not in b:
                out.append(f"{sub}: only in expected ({_short(a[key])})")
            else:
                _diff(a[key], b[key], sub, out, limit)
            if len(out) >= limit:
                return
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _diff(x, y, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
    elif a != b:
        out.append(f"{path}: expected {_short(a)} != actual {_short(b)}")


def _short(value, width: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= width else text[:width - 3] + "..."
