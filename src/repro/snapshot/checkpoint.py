"""Versioned on-disk checkpoint files.

A checkpoint is the durable form of a machine state: a small, gzip-
compressed JSON document pinning *how to rebuild the machine* (the run
spec), *where execution stood* (tick, events processed, milestones done),
and *what the state must hash to* (the full canonical summary and its
SHA-256 digest, plus the digest journal accumulated so far).  Restoring is
verified deterministic re-execution — see :mod:`repro.snapshot.driver` —
so a checkpoint stays valid across interpreter restarts and machines, and
a corrupt or version-skewed file fails loudly before any work happens.

File layout::

    ESCKPT <format-version>\\n      (uncompressed ASCII header line)
    <gzip-compressed canonical JSON payload>

The header is outside the compressed payload so version checks never
depend on being able to parse the payload they are versioning.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from typing import Dict

MAGIC = b"ESCKPT"
FORMAT_VERSION = 1

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointVersionError",
    "save_checkpoint",
    "load_checkpoint",
]


class CheckpointError(Exception):
    """Base class for checkpoint load/save failures."""


class CheckpointFormatError(CheckpointError):
    """The file is not a checkpoint, or its payload is corrupt."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by an incompatible format version."""

    def __init__(self, path: str, found, expected: int = FORMAT_VERSION):
        self.found = found
        self.expected = expected
        super().__init__(
            f"{path}: checkpoint format version {found!r} is not supported "
            f"by this build (expected {expected}); re-create the checkpoint "
            f"with the current code, or run it with the build that wrote it")


def save_checkpoint(path: str, payload: Dict) -> None:
    """Write ``payload`` as a versioned checkpoint at ``path`` (atomic)."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()
    # mtime=0 keeps the gzip container byte-reproducible: the same machine
    # state always writes the same file.
    data = (MAGIC + b" " + str(FORMAT_VERSION).encode() + b"\n"
            + gzip.compress(body, mtime=0))
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Dict:
    """Read and validate a checkpoint; raises :class:`CheckpointError`."""
    try:
        with open(path, "rb") as fh:
            header = fh.readline()
            blob = fh.read()
    except OSError as exc:
        raise CheckpointFormatError(f"{path}: cannot read ({exc})") from exc
    parts = header.strip().split()
    if len(parts) != 2 or parts[0] != MAGIC:
        raise CheckpointFormatError(
            f"{path}: not a checkpoint file (bad header {header[:32]!r})")
    try:
        version = int(parts[1])
    except ValueError:
        raise CheckpointVersionError(path, parts[1].decode("ascii",
                                                           "replace"))
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(path, version)
    try:
        return json.loads(gzip.decompress(blob).decode())
    except (OSError, EOFError, ValueError, zlib.error) as exc:
        raise CheckpointFormatError(
            f"{path}: corrupt checkpoint payload ({exc})") from exc
