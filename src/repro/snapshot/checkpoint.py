"""Versioned on-disk checkpoint files.

A checkpoint is the durable form of a machine state: a small, gzip-
compressed JSON document pinning *how to rebuild the machine* (the run
spec), *where execution stood* (tick, events processed, milestones done),
and *what the state must hash to* (the full canonical summary and its
SHA-256 digest, plus the digest journal accumulated so far).  Restoring is
verified deterministic re-execution — see :mod:`repro.snapshot.driver` —
so a checkpoint stays valid across interpreter restarts and machines, and
a corrupt or version-skewed file fails loudly before any work happens.

File layout (format 2)::

    ESCKPT <format-version>\\n      (uncompressed ASCII header line)
    <gzip-compressed canonical JSON payload>
    CRC:<8 hex digits>             (12-byte trailer)

The header is outside the compressed payload so version checks never
depend on being able to parse the payload they are versioning.  The
trailing CRC-32 covers *everything before it* — header included — so a
file chopped at any byte (a run SIGKILLed mid-write whose partial temp
file somehow survived, a truncated copy, a corrupted tail) is rejected
before the gzip layer ever sees it: there is no byte prefix of a valid
checkpoint that is itself a valid checkpoint.  Writes are crash-only:
temp file, flush, fsync, atomic rename, directory fsync.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from typing import Dict

MAGIC = b"ESCKPT"
FORMAT_VERSION = 2

#: Fixed-size trailer: ``CRC:`` + 8 lowercase hex digits of the CRC-32.
_TRAILER_TAG = b"CRC:"
_TRAILER_LEN = len(_TRAILER_TAG) + 8

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointVersionError",
    "save_checkpoint",
    "load_checkpoint",
]


class CheckpointError(Exception):
    """Base class for checkpoint load/save failures."""


class CheckpointFormatError(CheckpointError):
    """The file is not a checkpoint, or its payload is corrupt."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by an incompatible format version."""

    def __init__(self, path: str, found, expected: int = FORMAT_VERSION):
        self.found = found
        self.expected = expected
        super().__init__(
            f"{path}: checkpoint format version {found!r} is not supported "
            f"by this build (expected {expected}); re-create the checkpoint "
            f"with the current code, or run it with the build that wrote it")


def save_checkpoint(path: str, payload: Dict) -> None:
    """Write ``payload`` as a versioned checkpoint at ``path``.

    Crash-only: the bytes land in a temp file that is flushed, fsync'd
    and atomically renamed over ``path``, and the containing directory is
    fsync'd so the rename itself survives a power cut.  A writer killed
    at any instant leaves either the old file or the new one, never a
    half-written hybrid — and the trailing CRC catches the residue if a
    partial temp file is ever mistaken for the real thing.
    """
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()
    # mtime=0 keeps the gzip container byte-reproducible: the same machine
    # state always writes the same file.
    data = (MAGIC + b" " + str(FORMAT_VERSION).encode() + b"\n"
            + gzip.compress(body, mtime=0))
    data += _TRAILER_TAG + format(zlib.crc32(data), "08x").encode()
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def _fsync_dir(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all dirs are fsync-able
        pass
    finally:
        os.close(fd)


def load_checkpoint(path: str) -> Dict:
    """Read and validate a checkpoint; raises :class:`CheckpointError`."""
    try:
        with open(path, "rb") as fh:
            header = fh.readline()
            blob = fh.read()
    except OSError as exc:
        raise CheckpointFormatError(f"{path}: cannot read ({exc})") from exc
    parts = header.strip().split()
    if len(parts) != 2 or parts[0] != MAGIC:
        raise CheckpointFormatError(
            f"{path}: not a checkpoint file (bad header {header[:32]!r})")
    try:
        version = int(parts[1])
    except ValueError:
        raise CheckpointVersionError(path, parts[1].decode("ascii",
                                                           "replace"))
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(path, version)
    if len(blob) < _TRAILER_LEN or blob[-_TRAILER_LEN:-8] != _TRAILER_TAG:
        raise CheckpointFormatError(
            f"{path}: truncated checkpoint (missing CRC trailer — "
            f"the writer was interrupted or the file was chopped)")
    body, trailer = blob[:-_TRAILER_LEN], blob[-8:]
    try:
        expected = int(trailer, 16)
    except ValueError:
        raise CheckpointFormatError(
            f"{path}: corrupt checkpoint trailer {trailer!r}")
    actual = zlib.crc32(header + body)
    if actual != expected:
        raise CheckpointFormatError(
            f"{path}: corrupt checkpoint payload (CRC mismatch: "
            f"recorded {expected:08x}, computed {actual:08x})")
    try:
        return json.loads(gzip.decompress(body).decode())
    except (OSError, EOFError, ValueError, zlib.error) as exc:
        raise CheckpointFormatError(
            f"{path}: corrupt checkpoint payload ({exc})") from exc
