"""Deterministic replay with divergence pinpointing.

:func:`record` executes a run one event at a time, journaling a cheap
six-counter fingerprint (:func:`~repro.snapshot.digest.light_state`) after
*every* event plus a full state digest every ``every_events`` events and at
the end.  :func:`replay` re-executes the same spec in lockstep against the
recording and stops at the **first** event whose fingerprint differs,
reporting its event index, tick and server-cycle number plus which counters
moved wrong — the rr-style bisection primitive the chaos suite uses to
localize nondeterminism.

The fingerprint sees the clock, the scheduler sequence counter, the three
CPU cycle accumulators and the free-page count, which between them move on
virtually every kind of event; state drift invisible to all six (e.g. two
owners swapping equal charges) is caught by the periodic full digests and
localized to that journal window with a field-level diff.
"""

from __future__ import annotations

import base64
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.clock import ticks_to_server_cycles
from repro.snapshot.checkpoint import (CheckpointFormatError, load_checkpoint,
                                       save_checkpoint)
from repro.snapshot.digest import light_state, summary_diff
from repro.snapshot.driver import RunDriver
from repro.snapshot.runs import ReplayableRun, run_from_spec

__all__ = ["Recording", "Divergence", "ReplayReport", "record", "replay"]

#: Names of the :func:`light_state` fields, for divergence reports.
LIGHT_FIELDS = ("tick", "seq", "busy_cycles", "idle_cycles",
                "interrupt_cycles", "free_pages")
LIGHT_WIDTH = len(LIGHT_FIELDS)


class Recording:
    """Everything :func:`replay` needs to verify a re-execution."""

    def __init__(self, spec: Dict, every_events: int):
        self.spec = spec
        self.every_events = every_events
        #: ``[events, tick, digest]`` rows at journal boundaries.
        self.entries: List[List] = []
        #: Full summaries matching ``entries`` rows (for window diffs).
        self.summaries: List[Dict] = []
        #: Flat int64 array, LIGHT_WIDTH values per executed event.
        self.light = array("q")
        self.final_digest = ""
        self.final_summary: Dict = {}
        self.events_total = 0
        self.end_tick = 0

    # ------------------------------------------------------------------
    def light_at(self, index: int) -> List[int]:
        """Fingerprint recorded after event ``index`` (0-based)."""
        base = index * LIGHT_WIDTH
        return list(self.light[base:base + LIGHT_WIDTH])

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        save_checkpoint(path, {
            "kind": "recording",
            "spec": self.spec,
            "every_events": self.every_events,
            "entries": self.entries,
            "summaries": self.summaries,
            "light": base64.b64encode(self.light.tobytes()).decode("ascii"),
            "final_digest": self.final_digest,
            "final_summary": self.final_summary,
            "events_total": self.events_total,
            "end_tick": self.end_tick,
        })

    @classmethod
    def load(cls, path: str) -> "Recording":
        payload = load_checkpoint(path)
        if payload.get("kind") != "recording":
            raise CheckpointFormatError(
                f"{path}: file is a {payload.get('kind')!r}, not a recording")
        rec = cls(payload["spec"], payload["every_events"])
        rec.entries = payload["entries"]
        rec.summaries = payload["summaries"]
        rec.light = array("q")
        rec.light.frombytes(base64.b64decode(payload["light"]))
        rec.final_digest = payload["final_digest"]
        rec.final_summary = payload["final_summary"]
        rec.events_total = payload["events_total"]
        rec.end_tick = payload["end_tick"]
        return rec


@dataclass
class Divergence:
    """The first point where a replay left the recorded trajectory."""

    kind: str              # "event" | "digest" | "tail" | "final"
    events: int            # 1-based index of the first divergent event
    tick: int
    details: List[str] = field(default_factory=list)

    @property
    def cycle(self) -> int:
        """Server-cycle number of the divergence (the paper's clock unit)."""
        return ticks_to_server_cycles(self.tick)

    def describe(self) -> str:
        head = (f"first divergence at event #{self.events}, "
                f"tick {self.tick} (server cycle {self.cycle}), "
                f"kind={self.kind}")
        return head + "".join(f"\n  {d}" for d in self.details[:25])


@dataclass
class ReplayReport:
    ok: bool
    events_replayed: int
    divergence: Optional[Divergence] = None
    result: object = None


# ----------------------------------------------------------------------
def record(run: ReplayableRun, *, every_events: int = 2000):
    """Execute ``run`` to completion, journaling as it goes.

    Returns ``(result, recording)``.  ``every_events`` trades journal size
    against digest-window width for divergences the light fingerprint
    cannot see; 1 gives full digests at every event (short runs only).
    """
    driver = RunDriver(run)
    rec = Recording(run.spec(), every_events)
    kernel = getattr(run.bed.server, "kernel", None)
    while True:
        kind = driver.step()
        if kind is None:
            break
        if kind != "event":
            continue
        rec.light.extend(light_state(driver.sim, kernel))
        n = driver.sim.events_processed
        if n % every_events == 0:
            rec.entries.append([n, driver.sim.now, run.digest()])
            rec.summaries.append(run.summary())
    rec.events_total = driver.sim.events_processed
    rec.end_tick = driver.sim.now
    rec.final_digest = run.digest()
    rec.final_summary = run.summary()
    return run.result(), rec


def replay(recording: Recording) -> ReplayReport:
    """Re-execute a recording's spec in lockstep and compare."""
    run = run_from_spec(recording.spec)
    driver = RunDriver(run)
    kernel = getattr(run.bed.server, "kernel", None)
    entry_idx = 0
    n = 0
    while True:
        kind = driver.step()
        if kind is None:
            break
        if kind != "event":
            continue
        n += 1
        actual = light_state(driver.sim, kernel)
        if n > recording.events_total:
            return ReplayReport(False, n, Divergence(
                "tail", n, actual[0],
                [f"replay executed extra events beyond the recorded "
                 f"{recording.events_total}"]))
        expected = recording.light_at(n - 1)
        if actual != expected:
            details = [
                f"{name}: expected {e} != actual {a}"
                for name, e, a in zip(LIGHT_FIELDS, expected, actual)
                if e != a]
            return ReplayReport(False, n, Divergence(
                "event", n, actual[0], details))
        if (entry_idx < len(recording.entries)
                and n == recording.entries[entry_idx][0]):
            ev_n, tick, digest = recording.entries[entry_idx]
            if run.digest() != digest:
                lo = (recording.entries[entry_idx - 1][0]
                      if entry_idx else 0)
                details = ([f"state digest mismatch in event window "
                            f"({lo}, {ev_n}] — counters agreed but "
                            f"distribution of state differs:"]
                           + summary_diff(recording.summaries[entry_idx],
                                          run.summary()))
                return ReplayReport(False, n, Divergence(
                    "digest", ev_n, tick, details))
            entry_idx += 1
    if n < recording.events_total:
        return ReplayReport(False, n, Divergence(
            "tail", n + 1, driver.sim.now,
            [f"replay ended after {n} events; recording has "
             f"{recording.events_total}"]))
    if run.digest() != recording.final_digest:
        return ReplayReport(False, n, Divergence(
            "final", n, driver.sim.now,
            ["final state digest mismatch:"]
            + summary_diff(recording.final_summary, run.summary())))
    return ReplayReport(True, n, None, run.result())
