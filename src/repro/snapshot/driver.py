"""RunDriver: milestone-by-milestone execution, checkpointing, restore.

The driver owns the equivalence that makes lightweight checkpoints sound::

    sim.run(until=T1); sim.run(until=T2)   ==   sim.run(until=T2)

so executing a run in any number of slices — including stopping to write a
checkpoint after each slice, or stepping one event at a time for replay —
produces the same machine as one uninterrupted run.  A checkpoint is the
run's spec plus the position (tick, events, milestones done) plus the
state digest; *restore* rebuilds the machine from the spec in a fresh
process, fast-forwards to the recorded tick, and refuses to continue
unless the digest matches bit for bit (:class:`RestoreMismatchError`
carries the field-level diff when it does not).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.snapshot.checkpoint import (CheckpointFormatError, load_checkpoint,
                                       save_checkpoint)
from repro.snapshot.digest import summary_diff
from repro.snapshot.runs import ReplayableRun, reset_ids, run_from_spec

__all__ = ["RunDriver", "RestoreMismatchError"]


class RestoreMismatchError(Exception):
    """Re-execution did not reproduce the checkpointed state.

    Raised by :meth:`RunDriver.resume` when the rebuilt machine's digest at
    the checkpoint tick differs from the recorded one — meaning the code,
    the spec handling, or the determinism guarantee changed since the
    checkpoint was written.  ``diffs`` lists the divergent summary leaves.
    """

    def __init__(self, message: str, diffs: Optional[List[str]] = None):
        self.diffs = diffs or []
        detail = "".join(f"\n  {d}" for d in self.diffs[:20])
        super().__init__(message + detail)


class RunDriver:
    """Executes a :class:`ReplayableRun` against the simulated clock."""

    def __init__(self, run: ReplayableRun, *, build: bool = True):
        self.run = run
        #: Optional write-ahead journal (:class:`~repro.snapshot.journal.
        #: RunJournal`); when attached, every performed milestone appends
        #: one durable position+digest record before execution continues.
        self.journal = None
        #: Optional :class:`~repro.obs.session.ObsSession` — a pure
        #: observer notified after each performed milestone.  It never
        #: schedules events or charges cycles, so attaching one leaves
        #: event order, ``sim.seq`` and every digest untouched.
        self.obs = None
        if build:
            reset_ids()
            run.build()
        self._milestones: List[Tuple[int, str]] = list(run.milestones())
        self._ms_done = 0

    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.run.bed.sim

    @property
    def end_tick(self) -> int:
        """Tick of the final milestone (the run's natural end)."""
        return self._milestones[-1][0] if self._milestones else 0

    @property
    def milestones_done(self) -> int:
        return self._ms_done

    @property
    def done(self) -> bool:
        return self._ms_done >= len(self._milestones)

    # ------------------------------------------------------------------
    # Coarse execution
    # ------------------------------------------------------------------
    def run_to(self, tick: int) -> None:
        """Advance the machine to exactly ``tick``.

        Performs every milestone due at or before ``tick``, interleaved
        with event execution, exactly as an unsliced run would.
        """
        while (self._ms_done < len(self._milestones)
               and self._milestones[self._ms_done][0] <= tick):
            due, name = self._milestones[self._ms_done]
            self.sim.run(until=due)
            self.run.perform(name)
            self._ms_done += 1
            if self.journal is not None:
                self.journal.milestone(self)
            if self.obs is not None:
                self.obs.on_milestone(self, name)
        self.sim.run(until=tick)

    def run_all(self):
        """Run to the final milestone and return the run's result."""
        self.run_to(self.end_tick)
        return self.run.result()

    # ------------------------------------------------------------------
    # Fine-grained execution (replay)
    # ------------------------------------------------------------------
    def step(self) -> Optional[str]:
        """Execute exactly one unit of work: one event or one milestone.

        Returns ``"event"`` or ``"milestone"`` for what ran, or ``None``
        when the run is complete.  A step-loop is observationally identical
        to :meth:`run_all` — that is the property replay relies on to
        interpose a fingerprint check after every single event.
        """
        if self._ms_done < len(self._milestones):
            due, name = self._milestones[self._ms_done]
            if self.sim.step_until(due):
                return "event"
            self.sim.finish_until(due)
            self.run.perform(name)
            self._ms_done += 1
            if self.journal is not None:
                self.journal.milestone(self)
            if self.obs is not None:
                self.obs.on_milestone(self, name)
            return "milestone"
        return None

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint_payload(self) -> Dict:
        return {
            "kind": "checkpoint",
            "spec": self.run.spec(),
            "tick": self.sim.now,
            "seq": self.sim.seq,
            "events": self.sim.events_processed,
            "milestones_done": self._ms_done,
            "digest": self.run.digest(),
            "summary": self.run.summary(),
        }

    def checkpoint(self, path: str) -> Dict:
        """Write the current position+digest as a checkpoint file."""
        payload = self.checkpoint_payload()
        save_checkpoint(path, payload)
        return payload

    def run_with_checkpoints(self, every_s: float, directory: str,
                             stem: str = "run"):
        """Run to completion, checkpointing every ``every_s`` sim-seconds.

        Writes ``<stem>-t<tick>.ckpt`` files plus a ``<stem>-latest.ckpt``
        alias (what ``--resume`` normally points at).  Returns
        ``(result, written_paths)``.
        """
        from repro.sim.clock import seconds_to_ticks

        os.makedirs(directory, exist_ok=True)
        every = max(1, seconds_to_ticks(every_s))
        written: List[str] = []
        tick = self.sim.now
        while not self.done:
            tick = min(tick + every, self.end_tick)
            self.run_to(tick)
            if self.done:
                break
            path = os.path.join(directory, f"{stem}-t{tick}.ckpt")
            payload = self.checkpoint(path)
            save_checkpoint(os.path.join(directory, f"{stem}-latest.ckpt"),
                            payload)
            written.append(path)
        return self.run.result(), written

    @classmethod
    def resume(cls, ckpt_path: str,
               progress=None) -> Tuple["RunDriver", Dict]:
        """Restore a checkpoint into a fresh machine, digest-verified.

        Rebuilds the machine from the recorded spec, fast-forwards to the
        recorded tick, and checks events-processed, scheduler sequence and
        the full state digest before handing the driver back.  Raises
        :class:`RestoreMismatchError` if re-execution diverged.

        ``progress`` (optional, zero-argument) is invoked out-of-band
        every ~1000 re-executed events so a supervising parent can tell a
        long deterministic fast-forward from a hang; it must not touch
        simulated state.
        """
        payload = load_checkpoint(ckpt_path)
        if payload.get("kind") != "checkpoint":
            raise CheckpointFormatError(
                f"{ckpt_path}: file is a {payload.get('kind')!r}, "
                f"not a checkpoint")
        driver = cls(run_from_spec(payload["spec"]))
        if progress is not None:
            driver.sim.set_progress_hook(progress, every_events=1000)
        # Step to the recorded position by *counts*, not by clock: event
        # and milestone order is deterministic, so matching both counters
        # lands on the exact cut point even when a milestone sits on the
        # checkpoint tick.  The trailing finish_until restores the clock
        # across any idle gap before the cut.
        target_events = payload["events"]
        target_ms = payload["milestones_done"]
        try:
            while (driver.sim.events_processed < target_events
                   or driver._ms_done < target_ms):
                if driver.sim.events_processed > target_events:
                    break  # diverged; let verification report it
                if driver.step() is None:
                    break
            driver.sim.finish_until(payload["tick"])
        finally:
            if progress is not None:
                driver.sim.clear_progress_hook()
        mismatches: List[str] = []
        if driver.sim.events_processed != payload["events"]:
            mismatches.append(
                f"events_processed: expected {payload['events']} "
                f"!= actual {driver.sim.events_processed}")
        if driver.sim.seq != payload["seq"]:
            mismatches.append(f"seq: expected {payload['seq']} "
                              f"!= actual {driver.sim.seq}")
        digest = driver.run.digest()
        if digest != payload["digest"]:
            mismatches += summary_diff(payload["summary"],
                                       driver.run.summary())
        if mismatches:
            raise RestoreMismatchError(
                f"{ckpt_path}: machine rebuilt from this checkpoint does "
                f"not match the recorded state at tick {payload['tick']} "
                f"(code drift or nondeterminism)", mismatches)
        return driver, payload
