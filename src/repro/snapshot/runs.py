"""Replayable run specifications.

Whole-machine checkpointing in this codebase cannot serialize the live
object graph: kernel threads are suspended Python generator frames, which
no pure-Python mechanism can persist.  What *is* serializable — and what
the simulator's determinism guarantee makes sufficient — is the run's
**specification**: how to build the machine at t=0 plus a timeline of
named actions (boot, start load, arm chaos, open the measurement window)
at fixed ticks.  Re-executing a spec reproduces the machine bit for bit;
the digest machinery (:mod:`repro.snapshot.digest`) verifies it did.

:class:`ReplayableRun` is the contract: ``spec()`` returns a JSON-able
description, ``build()`` constructs the machine fresh, ``milestones()``
lists ``(tick, action)`` pairs, and ``perform(action)`` executes one.
:class:`ExperimentRun` covers the paper's figure-style measurements (the
Figure-9 SYN-flood cell is one spec); the chaos scenarios provide their
own :class:`~repro.chaos.scenarios.ChaosRun`.

:func:`reset_ids` re-seeds every global object-id counter, so a machine
built in a long-lived process digests identically to one built in a fresh
interpreter — in-process replay, lockstep comparison, and cross-process
restore all depend on it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import seconds_to_ticks

__all__ = ["ReplayableRun", "ExperimentRun", "reset_ids", "run_from_spec"]

#: Module-init settle time used by every driver-based run (the harness has
#: always waited this long after boot so passive paths exist before SYNs).
SETTLE_S = 0.01


def reset_ids() -> None:
    """Reset every global object-id counter to its boot value.

    Deterministic names and ids (``thread-7``, ``event-12``) come from
    class-level counters; two builds in one process would otherwise number
    their objects differently and digest differently.  Call before
    building any machine that will be digest-compared or checkpointed —
    :class:`~repro.snapshot.driver.RunDriver` does it automatically.
    """
    from repro.sim.cpu import SimThread
    from repro.kernel.owner import Owner
    from repro.kernel.domain import HeapAllocation
    from repro.kernel.memory import Page
    from repro.kernel.iobuffer import IOBuffer
    from repro.kernel.events import KernelEvent, Semaphore

    for cls in (SimThread, Owner, HeapAllocation, Page, IOBuffer,
                KernelEvent, Semaphore):
        cls._next_id = 1


def rng_fingerprint(rng) -> str:
    """Stable fingerprint of a ``random.Random``'s internal state."""
    return hashlib.sha256(repr(rng.getstate()).encode()).hexdigest()[:16]


class ReplayableRun:
    """One deterministic run: a build recipe plus a timeline of actions."""

    #: Set by build(); every run drives exactly one testbed.
    bed = None

    # -- the spec contract ---------------------------------------------
    def spec(self) -> Dict:
        """JSON-able description sufficient to rebuild this run."""
        raise NotImplementedError

    def build(self) -> None:
        """Construct the machine at t=0 (idempotence not required)."""
        raise NotImplementedError

    def milestones(self) -> List[Tuple[int, str]]:
        """``(absolute_tick, action_name)`` pairs, sorted by tick."""
        raise NotImplementedError

    def result(self):
        """The run's product, available after the final milestone."""
        raise NotImplementedError

    # -- execution ------------------------------------------------------
    def perform(self, action: str) -> None:
        """Execute one timeline action (dispatches to ``ms_<action>``)."""
        getattr(self, f"ms_{action}")()

    # -- digests --------------------------------------------------------
    def extra_summary(self) -> Dict:
        """Run-level state folded into the machine summary (RNGs etc.)."""
        return {}

    def summary(self) -> Dict:
        from repro.snapshot.digest import machine_summary
        out = machine_summary(self.bed)
        extra = self.extra_summary()
        if extra:
            out["run"] = extra
        return out

    def digest(self) -> str:
        from repro.snapshot.digest import canonical_json
        return hashlib.sha256(
            canonical_json(self.summary()).encode()).hexdigest()


class ExperimentRun(ReplayableRun):
    """One figure-style measurement cell as a replayable spec.

    Mirrors :meth:`repro.experiments.harness.Testbed.run` exactly —
    boot, settle, start load, warm up, measure — but expressed as fixed-
    tick milestones, so the run can be checkpointed mid-flight and
    restored in a fresh process.  ``config='accounting'`` with a SYN
    attacker is one cell of Figure 9; ``cgi_attackers`` gives Figure 10's
    shape.
    """

    KIND = "experiment"

    def __init__(self, config: str = "accounting", *,
                 clients: int = 4, document: str = "/doc-1k",
                 syn_rate: int = 0, untrusted_cap: Optional[int] = None,
                 cgi_attackers: int = 0, cgi_script: str = "loop",
                 qos: bool = False,
                 warmup_s: float = 1.0, measure_s: float = 5.0):
        self.config = config
        self.clients = clients
        self.document = document
        self.syn_rate = syn_rate
        self.untrusted_cap = untrusted_cap
        self.cgi_attackers = cgi_attackers
        self.cgi_script = cgi_script
        self.qos = qos
        self.warmup_s = warmup_s
        self.measure_s = measure_s
        self.run_result = None
        self._window_start = None

    # ------------------------------------------------------------------
    def spec(self) -> Dict:
        return {
            "run": self.KIND,
            "config": self.config,
            "clients": self.clients,
            "document": self.document,
            "syn_rate": self.syn_rate,
            "untrusted_cap": self.untrusted_cap,
            "cgi_attackers": self.cgi_attackers,
            "cgi_script": self.cgi_script,
            "qos": self.qos,
            "warmup_s": self.warmup_s,
            "measure_s": self.measure_s,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "ExperimentRun":
        fields = {k: v for k, v in spec.items() if k != "run"}
        return cls(fields.pop("config"), **fields)

    # ------------------------------------------------------------------
    def build(self) -> None:
        from repro.experiments.harness import TRUSTED_SUBNET, Testbed
        from repro.policy.synflood import SynFloodPolicy

        policies = []
        if self.untrusted_cap is not None:
            policies.append(SynFloodPolicy(TRUSTED_SUBNET,
                                           untrusted_cap=self.untrusted_cap))
        self.bed = Testbed.by_name(self.config, policies=policies or None)
        self.bed.add_clients(self.clients, document=self.document)
        if self.cgi_attackers:
            self.bed.add_cgi_attackers(self.cgi_attackers,
                                       script=self.cgi_script)
        if self.syn_rate:
            self.bed.add_syn_attacker(self.syn_rate)
        if self.qos:
            self.bed.add_qos_receiver()

    def milestones(self) -> List[Tuple[int, str]]:
        settle = seconds_to_ticks(SETTLE_S)
        warm_end = settle + seconds_to_ticks(self.warmup_s)
        measure_end = warm_end + seconds_to_ticks(self.measure_s)
        return [
            (0, "boot"),
            (settle, "start_load"),
            (warm_end, "begin_window"),
            (measure_end, "end_window"),
        ]

    def result(self):
        return self.run_result

    # -- timeline actions ----------------------------------------------
    def ms_boot(self) -> None:
        self.bed.server.boot()

    def ms_start_load(self) -> None:
        self.bed.start_load()

    def ms_begin_window(self) -> None:
        self._window_start = self.bed.begin_window()

    def ms_end_window(self) -> None:
        self.run_result = self.bed.end_window(self._window_start)

    def extra_summary(self) -> Dict:
        return {"window_start": self._window_start or 0}


def run_from_spec(spec: Dict) -> ReplayableRun:
    """Rebuild the run object a spec describes (fresh, unbuilt)."""
    kind = spec.get("run")
    if kind == ExperimentRun.KIND:
        return ExperimentRun.from_spec(spec)
    if kind == "chaos":
        from repro.chaos.scenarios import ChaosRun
        return ChaosRun.from_spec(spec)
    if kind == "defense":
        from repro.defense.run import DefenseRun
        return DefenseRun.from_spec(spec)
    if kind == "cluster":
        from repro.cluster.run import ClusterRun
        return ClusterRun.from_spec(spec)
    raise ValueError(f"unknown run spec kind: {kind!r}")
