"""Deterministic crash-injection selftest for the supervision stack.

The crash-only contract is falsifiable, so this module falsifies it on
demand: for each run kind it first executes a small *reference* run
in-process (digest, event count, replay fingerprint), then re-runs the
same spec under the :class:`~repro.supervise.supervisor.Supervisor`
with seeded faults injected into the child —

* **kill points**: SIGKILL after K executed events, K drawn from a
  seeded LCG over the reference run's event count, so the kill lands at
  a different (but reproducible) point for every seed;
* **hang**: the child stops executing events but stays alive, proving
  wall-clock heartbeat detection and the ``hang`` classification;
* **kill-always** (gave-up case): the fault fires on *every* attempt,
  proving the retry budget bounds the damage and the failure is
  *recorded* (``supervision:signal:SIGKILL``) instead of raised.

Every recovered case is gated on **byte-identical digest and replay
fingerprint** against the reference — resume that merely "works" but
lands on a different machine state is a failure, not a pass.  The
resilience campaign and CI run this via ``python -m repro supervise
--selftest``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.supervise.supervisor import (Supervisor, SupervisedResult,
                                        supervision_verdict)

__all__ = ["SelftestCase", "SelftestReport", "crash_injection_selftest",
           "selftest_spec", "reference_outcome"]

#: Small-but-real specs, one per run kind: each boots the full machine,
#: takes attack traffic where the kind has any, and finishes in seconds.
_SELFTEST_SPECS: Dict[str, Dict] = {
    "experiment": {
        "run": "experiment", "config": "accounting", "clients": 3,
        "document": "/doc-1k", "syn_rate": 100, "untrusted_cap": 16,
        "cgi_attackers": 0, "cgi_script": "loop", "qos": False,
        "warmup_s": 0.2, "measure_s": 0.5,
    },
    "chaos": {
        "run": "chaos", "scenario": "domain-crash", "seed": 3,
        "rollback": False,
    },
    "defense": {
        "run": "defense", "attack": "synflood", "adaptive": True,
        "seed": 2, "config": "accounting", "clients": 6,
        "document": "/doc-1k", "syn_rate": 150, "syn_ramp_to": 600,
        "syn_ramp_s": 0.5, "spoof_hosts": 100, "cgi_attackers": 4,
        "untrusted_cap": 16, "warmup_s": 0.3, "measure_s": 0.8,
    },
    "cluster": {
        "run": "cluster", "chaos": "crash", "replicas": 2,
        "adaptive": True, "seed": 2, "clients": 6, "document": "/doc-1k",
        "retry": True, "syn_rate": 0, "syn_ramp_to": 4000,
        "syn_ramp_s": 1.5, "spoof_hosts": 100, "victim": 0,
        "chaos_at_s": 0.4, "chaos_restore_s": 1.0,
        "warmup_s": 0.3, "measure_s": 1.2,
    },
}


def selftest_spec(kind: str) -> Dict:
    """The selftest's reference spec for one run kind (a copy)."""
    return dict(_SELFTEST_SPECS[kind])


def reference_outcome(spec: Dict) -> Dict:
    """Execute ``spec`` in-process; the ground truth a resume must hit."""
    from repro.snapshot.digest import light_state
    from repro.snapshot.driver import RunDriver
    from repro.snapshot.runs import run_from_spec

    driver = RunDriver(run_from_spec(spec))
    driver.run_all()
    server = getattr(driver.run.bed, "server", None)
    kernel = getattr(server, "kernel", None) if server is not None else None
    return {
        "digest": driver.run.digest(),
        "events": driver.sim.events_processed,
        "fingerprint": light_state(driver.sim, kernel),
    }


def _seeded_kill_points(seed: int, kind: str, n: int,
                        total_events: int) -> List[int]:
    """``n`` distinct kill points in [10%, 90%] of the run, LCG-seeded."""
    import zlib

    x = (zlib.crc32(f"{seed}/{kind}".encode()) & 0x7fffffff) or 1
    points = set()
    while len(points) < n:
        x = (1103515245 * x + 12345) % (1 << 31)
        frac = 0.10 + 0.80 * (x / float(1 << 31))
        points.add(max(1, int(total_events * frac)))
    return sorted(points)


@dataclass
class SelftestCase:
    """One injected fault and what supervision made of it."""

    name: str                    # e.g. "chaos/kill@8123"
    kind: str
    mode: str                    # kill | hang | kill-always
    after_events: int
    passed: bool = False
    classifications: List[str] = field(default_factory=list)
    digest_ok: bool = False
    fingerprint_ok: bool = False
    resumed_events: int = 0
    detail: str = ""

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        extra = f" ({self.detail})" if self.detail else ""
        return (f"  [{status}] {self.name}: "
                f"{' -> '.join(self.classifications) or 'no attempts'}, "
                f"resumed at event {self.resumed_events}{extra}")


@dataclass
class SelftestReport:
    """All selftest cases plus the per-kind references they ran against."""

    cases: List[SelftestCase] = field(default_factory=list)
    references: Dict[str, Dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.cases) and all(c.passed for c in self.cases)

    @property
    def failed(self) -> List[SelftestCase]:
        return [c for c in self.cases if not c.passed]

    def summary(self) -> str:
        lines = [f"crash-injection selftest: "
                 f"{sum(c.passed for c in self.cases)}/{len(self.cases)} "
                 f"cases passed"]
        for kind, ref in sorted(self.references.items()):
            lines.append(f"  reference {kind}: {ref['events']} events, "
                         f"digest {ref['digest'][:12]}...")
        lines += [c.line() for c in self.cases]
        return "\n".join(lines)


def _check_recovery(case: SelftestCase, sres: SupervisedResult,
                    ref: Dict, first_expected: str) -> None:
    """Gate a recovered case on classification + digest + fingerprint."""
    case.classifications = [a.classification for a in sres.attempts]
    problems = []
    if not sres.attempts:
        problems.append("no attempts recorded")
    elif sres.attempts[0].classification != first_expected:
        problems.append(f"first attempt classified "
                        f"{sres.attempts[0].classification!r}, "
                        f"expected {first_expected!r}")
    if not sres.ok:
        problems.append(f"did not recover (final: {sres.classification})")
    else:
        case.digest_ok = sres.digest == ref["digest"]
        case.fingerprint_ok = sres.fingerprint == ref["fingerprint"]
        case.resumed_events = (sres.result.get("resume", {})
                               .get("resumed_events", 0))
        if not case.digest_ok:
            problems.append(f"digest drifted: {sres.digest[:12]}... != "
                            f"reference {ref['digest'][:12]}...")
        if not case.fingerprint_ok:
            problems.append(f"fingerprint drifted: {sres.fingerprint} != "
                            f"{ref['fingerprint']}")
        if sres.result["events"] != ref["events"]:
            problems.append(f"event count drifted: "
                            f"{sres.result['events']} != {ref['events']}")
    case.passed = not problems
    case.detail = "; ".join(problems)


def crash_injection_selftest(
        base_dir: str, *,
        kinds: Tuple[str, ...] = ("experiment", "chaos", "defense",
                                  "cluster"),
        kill_points: int = 3,
        hang: bool = True,
        gave_up: bool = True,
        seed: int = 990417,
        hang_timeout_s: float = 2.0,
        log=None) -> SelftestReport:
    """Run the full crash-injection matrix; returns the gated report.

    ``kinds`` picks which run kinds to exercise, ``kill_points`` how many
    seeded SIGKILL positions per kind.  ``hang`` adds one hang injection
    (against the first kind) and ``gave_up`` one kill-on-every-attempt
    case proving bounded retries.  ``log`` (e.g. ``print``) narrates.
    """
    say = log or (lambda _msg: None)
    report = SelftestReport()
    for kind in kinds:
        spec = selftest_spec(kind)
        say(f"reference run: {kind} ...")
        ref = reference_outcome(spec)
        report.references[kind] = ref
        say(f"  {ref['events']} events, digest {ref['digest'][:12]}...")
        for k in _seeded_kill_points(seed, kind, kill_points,
                                     ref["events"]):
            case = SelftestCase(name=f"{kind}/kill@{k}", kind=kind,
                                mode="kill", after_events=k)
            report.cases.append(case)
            sup = Supervisor(
                os.path.join(base_dir, f"{kind}-kill{k}"),
                max_attempts=2, backoff_base_s=0.01,
                heartbeat_every_events=100,
                checkpoint_every_events=max(200, ref["events"] // 4))
            sres = sup.run(spec, inject={
                "mode": "kill", "after_events": k, "on_attempt": 1})
            _check_recovery(case, sres, ref, "signal:SIGKILL")
            say(case.line())

    if hang and kinds:
        kind = kinds[0]
        ref = report.references[kind]
        k = max(1, ref["events"] // 2)
        case = SelftestCase(name=f"{kind}/hang@{k}", kind=kind,
                            mode="hang", after_events=k)
        report.cases.append(case)
        sup = Supervisor(
            os.path.join(base_dir, f"{kind}-hang{k}"),
            max_attempts=2, backoff_base_s=0.01,
            heartbeat_timeout_s=hang_timeout_s,
            heartbeat_every_events=100,
            checkpoint_every_events=max(200, ref["events"] // 4))
        sres = sup.run(selftest_spec(kind), inject={
            "mode": "hang", "after_events": k, "on_attempt": 1})
        _check_recovery(case, sres, ref, "hang")
        say(case.line())

    if gave_up and kinds:
        kind = kinds[0]
        ref = report.references[kind]
        k = max(1, ref["events"] // 3)
        case = SelftestCase(name=f"{kind}/kill-always@{k}", kind=kind,
                            mode="kill-always", after_events=k)
        report.cases.append(case)
        sup = Supervisor(
            os.path.join(base_dir, f"{kind}-killalways"),
            max_attempts=2, backoff_base_s=0.01,
            heartbeat_every_events=100,
            checkpoint_every_events=max(200, ref["events"] // 4))
        sres = sup.run(selftest_spec(kind), inject={
            "mode": "kill", "after_events": k, "on_attempt": 0})
        case.classifications = [a.classification for a in sres.attempts]
        verdict = supervision_verdict(sres)
        problems = []
        if sres.ok:
            problems.append("expected the retry budget to be exhausted")
        if len(sres.attempts) != 2:
            problems.append(f"expected 2 attempts, got {len(sres.attempts)}")
        if any(a.classification != "signal:SIGKILL" for a in sres.attempts):
            problems.append("expected every attempt to die by SIGKILL")
        if verdict["failures"] != ["supervision:signal:SIGKILL"]:
            problems.append(f"verdict fingerprint {verdict['failures']}")
        case.passed = not problems
        case.detail = "; ".join(problems)
        say(case.line())

    return report
