"""Crash-only execution: supervised run processes that survive SIGKILL.

Escort's thesis is that a service under attack must degrade and recover
rather than die; this package applies the same philosophy to the harness
that *runs* the simulations.  Any replayable run kind (chaos / defense /
cluster / experiment / a resilience-campaign cell) can be executed in a
supervised child process that:

* heartbeats over a pipe as it executes events, so a hung child is
  detected by missed heartbeats within a wall-clock timeout, SIGKILLed,
  and classified as ``hang``;
* checkpoints periodically and write-ahead-journals every milestone
  (:mod:`repro.snapshot.journal`), so a child killed at *any* instant —
  SIGKILL included — resumes from last-checkpoint + journal fast-forward
  and still produces the byte-identical final digest;
* classifies every exit (ok / signal / exception / hang / oracle
  fingerprint) and retries transient failures with exponential backoff
  plus deterministic jitter, bounded by a retry budget;
* degrades gracefully: a run that exhausts its budget is *recorded* as
  failed and the campaign around it continues instead of aborting.

The deterministic crash-injection harness (:mod:`repro.supervise.
harness`) proves the contract: seeded SIGKILL points and hang injections
against reference runs, hard-gating on digest and replay-fingerprint
identity after resume.  ``python -m repro supervise`` is the CLI;
``--supervised`` on figure9 and resilience campaigns routes their cells
through the same machinery.
"""

from repro.supervise.state import (JournalMismatchError, RunState,
                                   resume_driver)
from repro.supervise.supervisor import (AttemptReport, SupervisedResult,
                                        Supervisor, supervision_verdict)
from repro.supervise.harness import (SelftestCase, SelftestReport,
                                     crash_injection_selftest)

__all__ = [
    "JournalMismatchError", "RunState", "resume_driver",
    "AttemptReport", "SupervisedResult", "Supervisor",
    "supervision_verdict",
    "SelftestCase", "SelftestReport", "crash_injection_selftest",
]
