"""The on-disk state of one supervised run, and SIGKILL-anywhere resume.

A supervised run owns one *state directory*; everything the parent and
the child exchange — and everything a resume needs — lives there as
crash-only files (atomic renames, fsync'd appends, self-verifying
formats)::

    state_dir/
      job.json       what to run (spec + options + per-attempt injection)
      run.ckpt       latest periodic checkpoint   (ESCKPT, atomic + CRC)
      run.journal    write-ahead milestone journal (ESCJRNL, fsync'd)
      result.json    final result, digest, fingerprint   (atomic)
      error.json     exception record when the run raised (atomic)
      attempt-N.log  child stdout/stderr per attempt

:func:`resume_driver` is the heart of the crash-only contract: given the
directory of a run killed at *any* instant, it rebuilds the machine from
the spec, restores through the last durable checkpoint (digest-verified
by :meth:`~repro.snapshot.driver.RunDriver.resume`), then fast-forwards
deterministic re-execution to the furthest journaled milestone and
refuses to continue unless that record's digest matches bit for bit.
Torn files — a checkpoint missing its CRC trailer, a journal line cut
mid-write — are normal crash residue and silently shorten the resume
horizon; *mismatching* digests mean code drift or nondeterminism and
raise loudly.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

JOB_FILE = "job.json"
CKPT_FILE = "run.ckpt"
JOURNAL_FILE = "run.journal"
RESULT_FILE = "result.json"
ERROR_FILE = "error.json"

__all__ = ["RunState", "JournalMismatchError", "resume_driver",
           "write_json_atomic", "read_json"]


class JournalMismatchError(Exception):
    """Re-execution did not reproduce a journaled milestone digest."""


def write_json_atomic(path: str, payload: Dict) -> None:
    """Crash-only JSON write: temp file + flush + fsync + atomic rename."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_json(path: str) -> Optional[Dict]:
    """Read a JSON file; None when absent or unreadable (crash residue)."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


class RunState:
    """Path arithmetic plus typed accessors for one state directory."""

    def __init__(self, directory: str):
        self.directory = directory

    # -- paths ----------------------------------------------------------
    @property
    def job_path(self) -> str:
        return os.path.join(self.directory, JOB_FILE)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, CKPT_FILE)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, JOURNAL_FILE)

    @property
    def result_path(self) -> str:
        return os.path.join(self.directory, RESULT_FILE)

    @property
    def error_path(self) -> str:
        return os.path.join(self.directory, ERROR_FILE)

    def attempt_log_path(self, attempt: int) -> str:
        return os.path.join(self.directory, f"attempt-{attempt}.log")

    # -- typed accessors ------------------------------------------------
    def ensure(self) -> "RunState":
        os.makedirs(self.directory, exist_ok=True)
        return self

    def write_job(self, job: Dict) -> None:
        write_json_atomic(self.job_path, job)

    def read_job(self) -> Optional[Dict]:
        return read_json(self.job_path)

    def read_result(self) -> Optional[Dict]:
        return read_json(self.result_path)

    def read_error(self) -> Optional[Dict]:
        return read_json(self.error_path)

    def write_result(self, payload: Dict) -> None:
        write_json_atomic(self.result_path, payload)

    def write_error(self, payload: Dict) -> None:
        write_json_atomic(self.error_path, payload)

    def clear_outcome(self) -> None:
        """Drop result/error markers before a (re-)attempt."""
        for path in (self.result_path, self.error_path):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
def resume_driver(state: RunState, spec: Dict,
                  progress=None) -> Tuple["object", Dict]:
    """Rebuild a run killed at any point; returns ``(driver, info)``.

    ``info`` records how far the resume reached and through which
    mechanism: ``{"resumed_events": int, "resumed_milestones": int,
    "from_checkpoint": bool, "journal_records": int,
    "journal_torn_tail": bool}``.  With no usable checkpoint or journal
    the driver starts fresh at t=0 (``resumed_events == 0``).

    Raises :class:`JournalMismatchError` when deterministic re-execution
    fails to reproduce a journaled digest, and propagates
    :class:`~repro.snapshot.driver.RestoreMismatchError` for the same
    breach at the checkpoint layer — both mean the code or the spec
    handling changed under a live run, never a normal crash.
    """
    from repro.snapshot.checkpoint import CheckpointError
    from repro.snapshot.driver import RunDriver
    from repro.snapshot.journal import scan_journal
    from repro.snapshot.runs import run_from_spec

    scan = scan_journal(state.journal_path)
    if scan.spec is not None and scan.spec != spec:
        raise JournalMismatchError(
            f"{state.journal_path}: journal belongs to a different run "
            f"spec; refusing to graft histories")

    driver = None
    from_checkpoint = False
    if os.path.exists(state.checkpoint_path):
        try:
            driver, _payload = RunDriver.resume(state.checkpoint_path,
                                                progress=progress)
            from_checkpoint = True
        except CheckpointError:
            # Torn or half-written checkpoint: normal crash residue.
            # The journal (or a fresh build) covers for it.
            driver = None
    if driver is None:
        driver = RunDriver(run_from_spec(spec))

    last = scan.last
    if last is not None and (
            (last["events"], last["milestones_done"])
            > (driver.sim.events_processed, driver.milestones_done)):
        target_events = last["events"]
        target_ms = last["milestones_done"]
        if progress is not None:
            driver.sim.set_progress_hook(progress, every_events=1000)
        try:
            while (driver.sim.events_processed < target_events
                   or driver.milestones_done < target_ms):
                if driver.sim.events_processed > target_events:
                    break  # diverged; let the digest check report it
                if driver.step() is None:
                    break
            driver.sim.finish_until(last["tick"])
        finally:
            if progress is not None:
                driver.sim.clear_progress_hook()
        problems = []
        if driver.sim.events_processed != target_events:
            problems.append(f"events: journal {target_events} != "
                            f"replayed {driver.sim.events_processed}")
        if driver.sim.seq != last["seq"]:
            problems.append(f"seq: journal {last['seq']} != "
                            f"replayed {driver.sim.seq}")
        digest = driver.run.digest()
        if digest != last["digest"]:
            problems.append(f"digest: journal {last['digest'][:16]}... != "
                            f"replayed {digest[:16]}...")
        if problems:
            raise JournalMismatchError(
                f"{state.journal_path}: fast-forward to the last journaled "
                f"milestone (tick {last['tick']}) did not reproduce the "
                f"recorded state: " + "; ".join(problems))
    info = {
        "resumed_events": driver.sim.events_processed,
        "resumed_milestones": driver.milestones_done,
        "from_checkpoint": from_checkpoint,
        "journal_records": scan.records,
        "journal_torn_tail": scan.torn_tail,
    }
    return driver, info
